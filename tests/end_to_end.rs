//! End-to-end integration tests: graph substrate → accelerator → report,
//! validated against exact oracles, across all four paper algorithms.

#![allow(clippy::unwrap_used)]
use gaasx::baselines::reference;
use gaasx::core::algorithms::{Bfs, CollaborativeFiltering, PageRank, Sssp};
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::bipartite::BipartiteGraph;
use gaasx::graph::generators::{self, RmatConfig};
use gaasx::graph::VertexId;

fn accel() -> GaasX {
    GaasX::new(GaasXConfig::small())
}

#[test]
fn pagerank_tracks_oracle_on_scale_free_graph() {
    let graph = generators::rmat(&RmatConfig::new(1 << 8, 3000).with_seed(42)).unwrap();
    let out = accel().run(&PageRank::fixed_iterations(8), &graph).unwrap();
    let oracle = reference::pagerank(&graph, 0.85, 8);
    let mean_err: f64 = out
        .result
        .iter()
        .zip(&oracle)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / oracle.len() as f64;
    assert!(mean_err < 0.02, "mean error {mean_err}");
    assert_eq!(out.report.iterations, 8);
    assert!(out.report.elapsed_ns.ns() > 0.0);
}

#[test]
fn sssp_is_exact_on_integer_weights() {
    let graph = generators::rmat(&RmatConfig::new(1 << 8, 3000).with_seed(43)).unwrap();
    let src = VertexId::new(0);
    let out = accel().run(&Sssp::from_source(src), &graph).unwrap();
    assert_eq!(out.result, reference::dijkstra(&graph, src));
}

#[test]
fn bfs_is_exact() {
    let graph = generators::rmat(&RmatConfig::new(1 << 8, 3000).with_seed(44)).unwrap();
    let src = VertexId::new(5);
    let out = accel().run(&Bfs::from_source(src), &graph).unwrap();
    assert_eq!(out.result, reference::bfs(&graph, src));
}

#[test]
fn cf_trains_on_device() {
    let ratings = BipartiteGraph::synthetic(40, 15, 300, 7).unwrap();
    let cf = CollaborativeFiltering {
        features: 8,
        epochs: 4,
        learning_rate: 0.02,
        regularization: 0.02,
        seed: 1,
    };
    let untrained = accel()
        .run(
            &CollaborativeFiltering {
                epochs: 0,
                ..cf.clone()
            },
            &ratings,
        )
        .unwrap();
    let trained = accel().run(&cf, &ratings).unwrap();
    let before = untrained.result.rmse(&ratings).unwrap();
    let after = trained.result.rmse(&ratings).unwrap();
    assert!(after < before, "rmse {before} -> {after}");
    assert_eq!(trained.report.iterations, 4);
}

#[test]
fn quantized_fidelity_still_tracks_oracle() {
    // Bit-sliced ADC-saturating periphery on realistic inputs: PageRank on
    // a modest graph stays close to the oracle because per-burst partials
    // remain within the 6-bit ADC range for ≤16-row accumulations.
    let graph = generators::rmat(&RmatConfig::new(1 << 7, 1200).with_seed(9)).unwrap();
    let mut accel = GaasX::new(GaasXConfig {
        fidelity: gaasx::xbar::Fidelity::Quantized,
        ..GaasXConfig::small()
    });
    let out = accel.run(&PageRank::fixed_iterations(6), &graph).unwrap();
    let oracle = reference::pagerank(&graph, 0.85, 6);
    let mean_err: f64 = out
        .result
        .iter()
        .zip(&oracle)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / oracle.len() as f64;
    assert!(mean_err < 0.05, "mean error {mean_err}");
}

#[test]
fn report_components_are_consistent() {
    let graph = generators::rmat(&RmatConfig::new(1 << 7, 1500).with_seed(11)).unwrap();
    let out = accel().run(&PageRank::fixed_iterations(3), &graph).unwrap();
    let r = &out.report;
    // Energy components sum to the total.
    let sum: f64 = r.energy.components().iter().map(|(_, v)| v.nj()).sum();
    assert!((sum - r.energy.total_nj().nj()).abs() < 1e-6);
    // Every edge is gathered exactly once per iteration.
    assert_eq!(r.ops.compute_items, 3 * graph.num_edges() as u64);
    // The rows-per-MAC histogram covers every MAC burst.
    assert_eq!(r.rows_per_mac.total(), r.ops.mac_ops);
    // Throughput derivation is coherent.
    assert!(r.edges_per_second() > 0.0);
}

#[test]
fn dangling_vertices_and_disconnected_components_are_handled() {
    // Vertices 6..10 are isolated; vertex 5 dangles (no out-edges).
    let graph = gaasx::graph::GraphBuilder::new(10)
        .edge(0, 1, 2.0)
        .edge(1, 2, 2.0)
        .edge(2, 5, 1.0)
        .build()
        .unwrap();
    let pr = accel().run(&PageRank::fixed_iterations(5), &graph).unwrap();
    assert!((pr.result[9] - 0.15).abs() < 1e-3, "isolated vertex rank");
    let sssp = accel()
        .run(&Sssp::from_source(VertexId::new(0)), &graph)
        .unwrap();
    assert_eq!(sssp.result[5], 5.0);
    assert!(sssp.result[9].is_infinite());
}

#[test]
fn io_roundtrip_feeds_the_accelerator() {
    // Serialize a graph through both formats and run on the result.
    let graph = generators::rmat(&RmatConfig::new(1 << 6, 400).with_seed(3)).unwrap();
    let mut text = Vec::new();
    gaasx::graph::io::write_edge_list(&mut text, &graph).unwrap();
    let from_text = gaasx::graph::io::read_edge_list(text.as_slice()).unwrap();
    let from_binary = gaasx::graph::io::from_binary(gaasx::graph::io::to_binary(&graph)).unwrap();

    let src = VertexId::new(0);
    let direct = accel().run(&Bfs::from_source(src), &graph).unwrap().result;
    // The text roundtrip may shrink num_vertices if trailing vertices are
    // isolated; compare the common prefix.
    let via_text = accel()
        .run(&Bfs::from_source(src), &from_text)
        .unwrap()
        .result;
    let via_binary = accel()
        .run(&Bfs::from_source(src), &from_binary)
        .unwrap()
        .result;
    assert_eq!(via_binary, direct);
    assert_eq!(via_text[..], direct[..via_text.len()]);
}
