//! Property-based integration tests over randomly generated workloads.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use gaasx::baselines::reference;
use gaasx::core::algorithms::{Bfs, PageRank, Sssp};
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::generators::{self, RmatConfig};
use gaasx::graph::partition::{GridPartition, TraversalOrder};
use gaasx::graph::{CooGraph, Csr, Edge, VertexId};

/// Strategy: a small random weighted digraph plus a valid source vertex.
fn graph_and_source() -> impl Strategy<Value = (CooGraph, VertexId)> {
    (2u32..60, 1usize..150, any::<u64>()).prop_flat_map(|(n, m, seed)| {
        let g = generators::rmat(&RmatConfig::new(n, m).with_seed(seed).with_max_weight(12))
            .expect("valid rmat config");
        let verts = g.num_vertices();
        (Just(g), (0..verts).prop_map(VertexId::new))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn device_sssp_always_matches_dijkstra((graph, src) in graph_and_source()) {
        let out = GaasX::new(GaasXConfig::small())
            .run(&Sssp::from_source(src), &graph)
            .unwrap();
        prop_assert_eq!(out.result, reference::dijkstra(&graph, src));
    }

    #[test]
    fn device_bfs_always_matches_queue_bfs((graph, src) in graph_and_source()) {
        let out = GaasX::new(GaasXConfig::small())
            .run(&Bfs::from_source(src), &graph)
            .unwrap();
        prop_assert_eq!(out.result, reference::bfs(&graph, src));
    }

    #[test]
    fn device_pagerank_tracks_oracle((graph, _src) in graph_and_source()) {
        let out = GaasX::new(GaasXConfig::small())
            .run(&PageRank::fixed_iterations(5), &graph)
            .unwrap();
        let oracle = reference::pagerank(&graph, 0.85, 5);
        for (a, b) in out.result.iter().zip(&oracle) {
            // Absolute tolerance scaled to the rank magnitude.
            prop_assert!((a - b).abs() < 0.05 * b.max(1.0), "{} vs {}", a, b);
        }
    }

    #[test]
    fn partition_preserves_every_edge((graph, _src) in graph_and_source()) {
        let grid = GridPartition::with_num_intervals(&graph, 8).unwrap();
        prop_assert_eq!(grid.total_edges(), graph.num_edges());
        let mut collected: Vec<Edge> = grid
            .stream(TraversalOrder::RowMajor)
            .flat_map(|s| s.edges().iter().copied())
            .collect();
        let key = |e: &Edge| (e.src.raw(), e.dst.raw(), e.weight.to_bits());
        collected.sort_by_key(key);
        let mut original = graph.edges().to_vec();
        original.sort_by_key(key);
        prop_assert_eq!(collected, original);
    }

    #[test]
    fn csr_and_transpose_are_consistent((graph, _src) in graph_and_source()) {
        let csr = Csr::from_coo(&graph);
        let tr = Csr::from_coo(&graph.transposed());
        // Out-degree of v in G equals in-degree of v in Gᵀ.
        for v in VertexId::all(graph.num_vertices()) {
            prop_assert_eq!(csr.degree(v), graph.out_degrees()[v.index()] as usize);
        }
        prop_assert_eq!(tr.num_edges(), csr.num_edges());
    }

    #[test]
    fn sssp_distances_satisfy_triangle_inequality((graph, src) in graph_and_source()) {
        // For every edge (u, v, w): dist(v) ≤ dist(u) + w.
        let dist = reference::dijkstra(&graph, src);
        for e in graph.iter() {
            let du = dist[e.src.index()];
            let dv = dist[e.dst.index()];
            if du.is_finite() {
                prop_assert!(dv <= du + f64::from(e.weight) + 1e-9);
            }
        }
    }

    #[test]
    fn report_energy_is_monotone_in_iterations((graph, _src) in graph_and_source()) {
        let mut accel = GaasX::new(GaasXConfig::small());
        let short = accel.run(&PageRank::fixed_iterations(2), &graph).unwrap().report;
        let long = accel.run(&PageRank::fixed_iterations(6), &graph).unwrap().report;
        prop_assert!(long.energy.total_nj() > short.energy.total_nj());
        prop_assert!(long.elapsed_ns > short.elapsed_ns);
    }
}
