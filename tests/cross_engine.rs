//! Cross-engine integration tests: every engine (GaaS-X, GraphR, the CPU
//! kernels, the GPU model) agrees functionally, and the cost relationships
//! the paper claims hold in the right direction.

#![allow(clippy::unwrap_used)]
use gaasx::baselines::cpu::{GapbsCpu, GridGraphCpu};
use gaasx::baselines::gram::GramModel;
use gaasx::baselines::reference;
use gaasx::baselines::{GraphR, GraphRConfig};
use gaasx::core::algorithms::{PageRank, Sssp};
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::datasets::PaperDataset;
use gaasx::graph::{CooGraph, VertexId};

fn workload() -> CooGraph {
    PaperDataset::WikiVote.instantiate_graph(0.2).unwrap()
}

#[test]
fn all_engines_agree_on_sssp() {
    let g = workload();
    let src = VertexId::new(0);
    let oracle = reference::dijkstra(&g, src);

    let gx = GaasX::new(GaasXConfig::small())
        .run(&Sssp::from_source(src), &g)
        .unwrap();
    assert_eq!(gx.result, oracle, "gaasx");

    let gr = GraphR::new(GraphRConfig::small()).sssp(&g, src).unwrap();
    assert_eq!(gr.result, oracle, "graphr");

    let cpu = GridGraphCpu::with_threads(4).sssp(&g, src).unwrap();
    assert_eq!(cpu.result, oracle, "gridgraph");

    let gap = GapbsCpu::with_threads(2).sssp(&g, src).unwrap();
    assert_eq!(gap.result, oracle, "gapbs");
}

#[test]
fn all_engines_agree_on_pagerank() {
    let g = workload();
    let oracle = reference::pagerank(&g, 0.85, 6);

    let gx = GaasX::new(GaasXConfig::small())
        .run(&PageRank::fixed_iterations(6), &g)
        .unwrap();
    let mean_err: f64 = gx
        .result
        .iter()
        .zip(&oracle)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / oracle.len() as f64;
    assert!(mean_err < 0.05, "gaasx mean err {mean_err}");

    let gr = GraphR::new(GraphRConfig::small())
        .pagerank(&g, 0.85, 6)
        .unwrap();
    for (a, b) in gr.result.iter().zip(&oracle) {
        assert!((a - b).abs() < 1e-9, "graphr exactness");
    }

    let cpu = GridGraphCpu::with_threads(4).pagerank(&g, 0.85, 6).unwrap();
    for (a, b) in cpu.result.iter().zip(&oracle) {
        assert!((a - b).abs() < 1e-9, "gridgraph exactness");
    }
}

#[test]
fn sparse_mapping_beats_dense_mapping_on_scale_free_data() {
    // The paper's core claim, at matched unit counts on a community-local
    // scale-free graph: GaaS-X programs far fewer cells and wins time and
    // energy.
    let g = workload();
    let units = 64;
    let mut gx = GaasX::new(GaasXConfig {
        num_banks: units,
        ..GaasXConfig::paper()
    });
    let mut gr = GraphR::new(GraphRConfig {
        num_pe: units,
        ..GraphRConfig::paper()
    });
    let a = gx.run(&PageRank::fixed_iterations(5), &g).unwrap().report;
    let b = gr.pagerank(&g, 0.85, 5).unwrap().report;

    // Raw cell counts are not comparable across array types (a CAM entry
    // burns 256 cheap binary devices, a dense tile 2048 expensive MLC
    // programs); the write *energy* is the meaningful aggregate.
    assert!(
        b.energy.write_nj > 5.0 * a.energy.write_nj,
        "dense write energy {} vs sparse {}",
        b.energy.write_nj,
        a.energy.write_nj
    );
    assert!(
        b.ops.compute_items > 3 * a.ops.compute_items,
        "dense computed {} vs sparse {}",
        b.ops.compute_items,
        a.ops.compute_items
    );
    assert!(a.speedup_over(&b) > 1.5, "speedup {}", a.speedup_over(&b));
    assert!(
        a.energy_savings_over(&b) > 3.0,
        "energy savings {}",
        a.energy_savings_over(&b)
    );
}

#[test]
fn dense_mapping_is_fine_on_dense_data() {
    // Crossover check: on a complete graph the sparse advantage should
    // shrink dramatically (no redundancy to exploit).
    let dense_graph = gaasx::graph::generators::complete_graph(64);
    let sparse_graph = workload();
    let units = 64;
    let run = |g: &CooGraph| {
        let mut gx = GaasX::new(GaasXConfig {
            num_banks: units,
            ..GaasXConfig::paper()
        });
        let mut gr = GraphR::new(GraphRConfig {
            num_pe: units,
            ..GraphRConfig::paper()
        });
        let a = gx.run(&PageRank::fixed_iterations(3), g).unwrap().report;
        let b = gr.pagerank(g, 0.85, 3).unwrap().report;
        a.energy_savings_over(&b)
    };
    let on_dense = run(&dense_graph);
    let on_sparse = run(&sparse_graph);
    assert!(
        on_sparse > 2.0 * on_dense,
        "sparse-data advantage {on_sparse} should dwarf dense-data {on_dense}"
    );
}

#[test]
fn gram_sits_between_gaasx_and_graphr() {
    let g = workload();
    let units = 64;
    let mut gx = GaasX::new(GaasXConfig {
        num_banks: units,
        ..GaasXConfig::paper()
    });
    let mut gr = GraphR::new(GraphRConfig {
        num_pe: units,
        ..GraphRConfig::paper()
    });
    let a = gx.run(&PageRank::fixed_iterations(5), &g).unwrap().report;
    let b = gr.pagerank(&g, 0.85, 5).unwrap().report;
    let gram = GramModel::for_algorithm("pagerank")
        .expect("GRAM publishes pagerank ratios")
        .report_from_graphr(&b);
    assert!(gram.elapsed_ns < b.elapsed_ns, "gram faster than graphr");
    assert!(
        a.speedup_over(&gram) < a.speedup_over(&b),
        "gaasx-vs-gram speedup below gaasx-vs-graphr"
    );
}

#[test]
fn gpu_model_is_faster_than_measured_cpu_per_edge() {
    // Sanity on the Table III ordering: a Titan-V-class part moves edges
    // faster than the streaming CPU kernels.
    let g = PaperDataset::Slashdot.instantiate_graph(0.2).unwrap();
    let gpu = gaasx::baselines::gpu::GpuModel::titan_v().pagerank(&g, 10);
    let cpu = GridGraphCpu::new().pagerank(&g, 0.85, 10).unwrap();
    assert!(
        gpu.elapsed_ns < cpu.report.elapsed_ns,
        "gpu {} vs cpu {}",
        gpu.elapsed_ns,
        cpu.report.elapsed_ns
    );
}
