//! Shape tests for the paper's headline claims, at test-friendly scale.
//!
//! These do not assert the paper's absolute numbers (our substrate is a
//! simulator with calibrated constants — see DESIGN.md §4b); they assert
//! the *shape*: who wins, the direction of every ratio, and the qualitative
//! structure of the distributions.

#![allow(clippy::unwrap_used)]
use gaasx::baselines::redundancy;
use gaasx::baselines::{GraphR, GraphRConfig};
use gaasx::core::algorithms::{Bfs, PageRank, Sssp};
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::datasets::PaperDataset;
use gaasx::sim::RunReport;

const CAP: usize = 30_000;

fn scaled(ds: PaperDataset) -> (gaasx::graph::CooGraph, usize) {
    let scale = (CAP as f64 / ds.full_edges() as f64).min(1.0);
    let graph = ds.instantiate_graph(scale).unwrap();
    let units = ((2048.0 * scale) as usize).clamp(4, 2048);
    (graph, units)
}

fn hub(graph: &gaasx::graph::CooGraph) -> gaasx::graph::VertexId {
    let deg = graph.out_degrees();
    let v = deg
        .iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .map_or(0, |(i, _)| i as u32);
    gaasx::graph::VertexId::new(v)
}

fn pair(ds: PaperDataset, algo: &str) -> (RunReport, RunReport) {
    let (graph, units) = scaled(ds);
    let src = hub(&graph);
    let mut gx = GaasX::new(GaasXConfig {
        num_banks: units,
        ..GaasXConfig::paper()
    });
    let mut gr = GraphR::new(GraphRConfig {
        num_pe: units,
        ..GraphRConfig::paper()
    });
    match algo {
        "pagerank" => (
            gx.run(&PageRank::fixed_iterations(5), &graph)
                .unwrap()
                .report,
            gr.pagerank(&graph, 0.85, 5).unwrap().report,
        ),
        "bfs" => (
            gx.run(&Bfs::from_source(src), &graph).unwrap().report,
            gr.bfs(&graph, src).unwrap().report,
        ),
        _ => (
            gx.run(&Sssp::from_source(src), &graph).unwrap().report,
            gr.sssp(&graph, src).unwrap().report,
        ),
    }
}

/// Abstract: "GaaS-X achieves 7.7× ... performance and 22× ... energy
/// savings ... over [GraphR]". Shape: clearly >1 on every algorithm.
#[test]
fn gaasx_beats_graphr_on_every_algorithm() {
    for algo in ["pagerank", "bfs", "sssp"] {
        let (a, b) = pair(PaperDataset::WikiVote, algo);
        let speedup = a.speedup_over(&b);
        let energy = a.energy_savings_over(&b);
        assert!(speedup > 1.5, "{algo}: speedup {speedup}");
        assert!(energy > 3.0, "{algo}: energy savings {energy}");
    }
}

/// §II-C / Fig 5: dense mapping incurs an order of magnitude of redundant
/// writes and computations on sparse real-world-like graphs.
#[test]
fn fig5_redundancy_is_an_order_of_magnitude() {
    let (graph, _) = scaled(PaperDataset::Slashdot);
    let r = redundancy::analyze(&graph, 16, hub(&graph)).unwrap();
    assert!(r.write_ratio() > 10.0, "writes {}", r.write_ratio());
    assert!(r.pr_compute_ratio() > 10.0, "pr {}", r.pr_compute_ratio());
    assert!(
        r.sssp_compute_ratio() > 3.0,
        "sssp {}",
        r.sssp_compute_ratio()
    );
}

/// Fig 13: the rows-per-MAC distribution is dominated by small bursts —
/// single-row accumulations are the mode and the mean stays low.
#[test]
fn fig13_mac_bursts_are_mostly_small() {
    let (graph, units) = scaled(PaperDataset::Slashdot);
    let mut gx = GaasX::new(GaasXConfig {
        num_banks: units,
        ..GaasXConfig::paper()
    });
    let r = gx
        .run(&PageRank::fixed_iterations(3), &graph)
        .unwrap()
        .report;
    let hist = &r.rows_per_mac;
    let pmf = hist.pmf();
    let mode = pmf
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    assert_eq!(mode, 0, "1-row bursts must be the mode");
    assert!(hist.mean() < 4.0, "mean rows/MAC {}", hist.mean());
    assert!(
        hist.fraction_at_most(6) > 0.6,
        "≤6-row fraction {}",
        hist.fraction_at_most(6)
    );
}

/// §V-B: GraphR's PageRank parallelism is relatively better than its
/// traversal parallelism, so GaaS-X's advantage on BFS/SSSP is at least
/// in the same class as PageRank's (the paper has traversal clearly ahead).
#[test]
fn traversal_advantage_is_at_least_pagerank_class() {
    let (pr_a, pr_b) = pair(PaperDataset::Slashdot, "pagerank");
    let (bfs_a, bfs_b) = pair(PaperDataset::Slashdot, "bfs");
    let pr_speedup = pr_a.speedup_over(&pr_b);
    let bfs_speedup = bfs_a.speedup_over(&bfs_b);
    assert!(
        bfs_speedup > 0.8 * pr_speedup,
        "bfs {bfs_speedup} vs pr {pr_speedup}"
    );
}

/// Table I: area ≈ 2.69 mm², power ≈ 1.66 W.
#[test]
fn table1_totals() {
    assert!((gaasx::core::config::table1_total_area_mm2() - 2.69).abs() < 0.02);
    assert!((gaasx::core::config::table1_total_power_w() - 1.66).abs() < 0.01);
}

/// The accelerator's modeled power envelope: average power of a run
/// (energy / time) stays within a small factor of the 1.66 W budget.
#[test]
fn average_power_is_near_the_budget() {
    let (graph, units) = scaled(PaperDataset::WikiVote);
    let mut gx = GaasX::new(GaasXConfig {
        num_banks: units,
        ..GaasXConfig::paper()
    });
    let r = gx
        .run(&PageRank::fixed_iterations(5), &graph)
        .unwrap()
        .report;
    let avg_w = r.energy.total_nj().nj() / r.elapsed_ns.ns(); // nJ/ns = W
    assert!(
        avg_w > 0.05 && avg_w < 40.0,
        "average power {avg_w} W implausible vs the 1.66 W design"
    );
}
