//! `gaasx-cli` — run graph analytics on the simulated GaaS-X accelerator
//! from the command line.
//!
//! ```text
//! gaasx-cli generate rmat --vertices 4096 --edges 40000 --out g.txt
//! gaasx-cli info g.txt
//! gaasx-cli pagerank g.txt --iters 10 --top 5
//! gaasx-cli sssp g.txt --source 0
//! gaasx-cli bfs g.txt --source 0
//! gaasx-cli cc g.txt
//! gaasx-cli compare g.txt --iters 10    # GaaS-X vs GraphR
//! ```
//!
//! Graphs are text edge lists (`src dst [weight]`, `#` comments) or the
//! library's binary format (`.bin`).

#![allow(clippy::unwrap_used)]
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

use gaasx::baselines::{GraphR, GraphRConfig};
use gaasx::core::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use gaasx::core::{GaasX, GaasXConfig, SearchMode};
use gaasx::graph::generators::{erdos_renyi, rmat, ErdosRenyiConfig, RmatConfig};
use gaasx::graph::stats::{GraphSummary, TileDensityProfile};
use gaasx::graph::{io as gio, CooGraph, VertexId};
use gaasx::sim::RunReport;

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") => cmd_info(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("pagerank") => cmd_pagerank(&args[1..]),
        Some("sssp") => cmd_traversal(&args[1..], false),
        Some("bfs") => cmd_traversal(&args[1..], true),
        Some("cc") => cmd_cc(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'; try 'gaasx-cli help'").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "gaasx-cli — graph analytics on the simulated GaaS-X accelerator\n\n\
         USAGE:\n  gaasx-cli <command> [args]\n\n\
         COMMANDS:\n\
         \x20 info <file>                         graph statistics and tile sparsity\n\
         \x20 generate <rmat|er> --vertices N --edges M [--seed S] [--out FILE]\n\
         \x20 pagerank <file> [--iters N] [--top K]\n\
         \x20 sssp <file> --source V\n\
         \x20 bfs <file> --source V\n\
         \x20 cc <file>                           weakly connected components\n\
         \x20 compare <file> [--iters N]          GaaS-X vs GraphR on PageRank\n\n\
         OPTIONS (pagerank/sssp/bfs/cc/compare):\n\
         \x20 --search-mode linear|indexed|auto   host hit-vector algorithm (default\n\
         \x20                                     auto: a per-block cost model picks\n\
         \x20                                     the faster mode; reports are\n\
         \x20                                     bit-identical in all modes)\n"
    );
}

/// Parses `--flag value` pairs from an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value '{v}' for {name}")),
    }
}

/// Builds the accelerator config from the shared CLI flags
/// (`--search-mode linear|indexed|auto`, defaulting to auto — all modes
/// produce bit-identical reports; linear keeps the O(rows) reference
/// scan for cross-checking, auto resolves per block via the cost model).
fn cli_config(args: &[String]) -> Result<GaasXConfig, String> {
    let mut config = GaasXConfig::paper();
    config.search_mode = match flag(args, "--search-mode") {
        None => SearchMode::default(),
        Some(v) => v.parse::<SearchMode>()?,
    };
    Ok(config)
}

fn positional(args: &[String]) -> Result<&str, String> {
    args.iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .ok_or_else(|| "missing <file> argument".to_string())
}

fn load(path: &str) -> Result<CooGraph, Box<dyn std::error::Error>> {
    let file = File::open(path)?;
    if path.ends_with(".bin") {
        let mut bytes = Vec::new();
        BufReader::new(file).read_to_end(&mut bytes)?;
        Ok(gio::from_binary(bytes.into())?)
    } else {
        Ok(gio::read_edge_list(BufReader::new(file))?)
    }
}

fn report_line(r: &RunReport) {
    println!(
        "engine={} algorithm={} iterations={} time={:.3}ms energy={:.3}mJ \
         mac_ops={} cam_searches={} cells_written={}",
        r.engine,
        r.algorithm,
        r.iterations,
        r.time_ms(),
        r.energy_mj(),
        r.ops.mac_ops,
        r.ops.cam_searches,
        r.ops.cells_written,
    );
}

fn cmd_info(args: &[String]) -> CliResult {
    let graph = load(positional(args)?)?;
    let summary = GraphSummary::compute(&graph)?;
    println!(
        "vertices: {}\nedges: {}\ndensity: {:.3e}",
        summary.num_vertices, summary.num_edges, summary.density
    );
    println!(
        "out-degree: min {} max {} mean {:.2} (skew {:.1})",
        summary.out_degrees.min,
        summary.out_degrees.max,
        summary.out_degrees.mean,
        summary.out_degrees.skew()
    );
    let profile = TileDensityProfile::compute(&graph, 16)?;
    println!(
        "16x16 tiles: {} non-empty of {} ({:.1}% under 10% density, mean nnz/tile {:.2})",
        profile.nonzero_tiles,
        profile.total_tiles,
        100.0 * profile.fraction_below(0.10),
        summary.num_edges as f64 / profile.nonzero_tiles.max(1) as f64,
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> CliResult {
    let kind = args
        .first()
        .map(String::as_str)
        .ok_or("generate requires a kind: rmat | er")?;
    let n: u32 = flag_parse(args, "--vertices", 1024)?;
    let m: usize = flag_parse(args, "--edges", 10_000)?;
    let seed: u64 = flag_parse(args, "--seed", 1)?;
    let graph = match kind {
        "rmat" => rmat(&RmatConfig::new(n, m).with_seed(seed))?,
        "er" => erdos_renyi(&ErdosRenyiConfig::new(n, m).with_seed(seed))?,
        other => return Err(format!("unknown generator '{other}' (rmat | er)").into()),
    };
    match flag(args, "--out") {
        Some(path) if path.ends_with(".bin") => {
            let mut w = BufWriter::new(File::create(&path)?);
            w.write_all(&gio::to_binary(&graph))?;
            println!("wrote {} edges to {path} (binary)", graph.num_edges());
        }
        Some(path) => {
            gio::write_edge_list(BufWriter::new(File::create(&path)?), &graph)?;
            println!("wrote {} edges to {path}", graph.num_edges());
        }
        None => gio::write_edge_list(std::io::stdout().lock(), &graph)?,
    }
    Ok(())
}

fn cmd_pagerank(args: &[String]) -> CliResult {
    let graph = load(positional(args)?)?;
    let iters: u32 = flag_parse(args, "--iters", 20)?;
    let top: usize = flag_parse(args, "--top", 10)?;
    let mut accel = GaasX::new(cli_config(args)?);
    let out = accel.run(&PageRank::fixed_iterations(iters), &graph)?;
    report_line(&out.report);
    let mut ranked: Vec<(usize, f64)> = out.result.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (v, r) in ranked.iter().take(top) {
        println!("v{v}\t{r:.6}");
    }
    Ok(())
}

fn cmd_traversal(args: &[String], bfs: bool) -> CliResult {
    let graph = load(positional(args)?)?;
    let source: u32 = flag_parse(args, "--source", 0)?;
    let src = VertexId::new(source);
    let mut accel = GaasX::new(cli_config(args)?);
    let (report, dist) = if bfs {
        let out = accel.run(&Bfs::from_source(src), &graph)?;
        (out.report, out.result)
    } else {
        let out = accel.run(&Sssp::from_source(src), &graph)?;
        (out.report, out.result)
    };
    report_line(&report);
    let reached = dist.iter().filter(|d| d.is_finite()).count();
    let max = dist
        .iter()
        .filter(|d| d.is_finite())
        .fold(0.0f64, |m, &d| m.max(d));
    println!(
        "reached {} of {} vertices; eccentricity {}",
        reached,
        graph.num_vertices(),
        max
    );
    Ok(())
}

fn cmd_cc(args: &[String]) -> CliResult {
    let graph = load(positional(args)?)?.symmetrized();
    let mut accel = GaasX::new(cli_config(args)?);
    let out = accel.run(&ConnectedComponents::new(), &graph)?;
    report_line(&out.report);
    let mut labels = out.result;
    labels.sort_unstable();
    labels.dedup();
    println!("{} weakly connected components", labels.len());
    Ok(())
}

fn cmd_compare(args: &[String]) -> CliResult {
    let graph = load(positional(args)?)?;
    let iters: u32 = flag_parse(args, "--iters", 10)?;
    let mut accel = GaasX::new(cli_config(args)?);
    let a = accel
        .run(&PageRank::fixed_iterations(iters), &graph)?
        .report;
    let mut dense = GraphR::new(GraphRConfig::paper());
    let b = dense.pagerank(&graph, 0.85, iters)?.report;
    report_line(&a);
    report_line(&b);
    println!(
        "GaaS-X vs GraphR: {:.2}x speedup, {:.2}x energy savings",
        a.speedup_over(&b),
        a.energy_savings_over(&b)
    );
    Ok(())
}
