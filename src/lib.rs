//! # GaaS-X — facade crate
//!
//! A faithful, open reproduction of *GaaS-X: Graph Analytics Accelerator
//! Supporting Sparse Data Representation using Crossbar Architectures*
//! (ISCA 2020). This crate re-exports the workspace members so downstream
//! users, the examples, and the integration tests see one coherent API:
//!
//! * [`graph`] — sparse graph substrate (COO/CSR/CSC, shards, generators),
//! * [`xbar`] — ReRAM crossbar device models (MAC + CAM arrays),
//! * [`sim`] — cycle-level time/energy accounting kernel,
//! * [`core`] — the GaaS-X accelerator and its algorithm mappings,
//! * [`baselines`] — GraphR, GRAM, CPU and GPU comparators plus oracles.
//!
//! ## Quickstart
//!
//! ```
//! use gaasx::core::{GaasX, GaasXConfig};
//! use gaasx::core::algorithms::PageRank;
//! use gaasx::graph::generators::{rmat, RmatConfig};
//!
//! let graph = rmat(&RmatConfig::new(1 << 8, 2048).with_seed(1))?;
//! let mut accel = GaasX::new(GaasXConfig::paper());
//! let outcome = accel.run(&PageRank::default(), &graph)?;
//! println!("PageRank finished in {:.3} ms, {:.3} mJ",
//!          outcome.report.time_ms(), outcome.report.energy_mj());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub use gaasx_baselines as baselines;
pub use gaasx_core as core;
pub use gaasx_graph as graph;
pub use gaasx_sim as sim;
pub use gaasx_xbar as xbar;
