#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the tier-1 test suite.
#
# The build is fully offline (path-shimmed external deps, see shims/),
# so every cargo invocation passes --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> gaasx-lint (in-tree invariant checker + suppression ratchet)"
# --baseline is a one-way ratchet on per-rule suppression counts: paying
# debt down never touches the baseline; growing it fails here until
# results/lint_baseline.json is regenerated (and reviewed) with
#   cargo run -q --offline -p gaasx-lint -- . --json > results/lint_baseline.json
cargo run -q --offline -p gaasx-lint -- . --baseline results/lint_baseline.json

echo "==> miri (gated): unsafe-free memory-model check of gaasx-xbar"
# The offline image ships no miri component. When a toolchain with miri
# is available the bit-level crate (hit vectors, small-row packing) runs
# under it; otherwise this step degrades to a visible skip rather than a
# hidden hole. Known-skipped under miri by design (would be filtered via
# GAASX_MIRI_SKIP if ever enabled): none today — the crate is #![forbid(unsafe_code)]
# and file-I/O-free, so the whole suite is miri-eligible.
if cargo miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-strict-provenance" cargo miri test -q --offline -p gaasx-xbar
else
    echo "    skipped: cargo miri not installed in this toolchain"
fi

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --offline --workspace

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release --offline
cargo test -q --offline

echo "==> workspace tests"
cargo test -q --workspace --offline

echo "==> sharded execution: parallel path vs serial (bit-identity gate)"
GAASX_CAP_EDGES=20000 cargo run -q --release --offline -p gaasx-bench \
    --bin jobs_scaling -- --jobs 4

echo "==> fault campaign smoke: recovery bit-identity + graceful degradation"
cargo run -q --release --offline -p gaasx-bench --bin fault_campaign -- --smoke

echo "==> serving soak smoke: typed degradation + exact per-tenant billing"
cargo run -q --release --offline -p gaasx-bench --bin serve_soak -- --smoke

echo "==> search-mode smoke: Linear vs Indexed vs Auto + scalar-kernel bit-identity"
cargo run -q --release --offline -p gaasx-bench --bin bench_snapshot -- --smoke

echo "==> packed-vs-scalar identity matrix: PR/SSSP/BFS/CC x banks x fault x jobs"
# The workspace test pass above already runs this in the dev profile;
# re-running it under --release also covers the packed kernel with its
# debug_assertions cross-check compiled out — the exact binary shape the
# perf gate below times.
cargo test -q --release --offline -p gaasx-core --test kernel_equivalence

echo "==> trace-export smoke: Chrome-trace JSON well-formedness"
GAASX_CAP_EDGES=8000 GAASX_PR_ITERS=3 cargo run -q --release --offline -p gaasx-bench \
    --bin trace_export -- results/ci_trace.json --check
rm -f results/ci_trace.json

echo "==> perf-gate: search-mode speedups vs results/BENCH_08.json + Auto/packed floors"
# A reduced matrix keeps the gate fast; speedup *ratios* (not wall clocks)
# are compared, so the smaller workload still guards the wins. The
# baseline must be BENCH_08, not the pre-packed BENCH_06/07 snapshots:
# the packed kernel made the Linear scan 2-2.6x faster on deep banks, so
# Indexed-over-Linear ratios shrank legitimately (4.3x -> ~1.5x on deep
# fault rows) and only same-kernel baselines are comparable. The run
# writes its artifact to a scratch path (--out) so the committed baseline
# is never overwritten mid-gate, asserts every Auto row stays within
# 0.95x of the better fixed mode (default --auto-floor), and every
# deep-bank row at or above scalar parity (default --packed-floor 1.0).
GAASX_CAP_EDGES=60000 GAASX_PR_ITERS=5 cargo run -q --release --offline -p gaasx-bench \
    --bin bench_snapshot -- --baseline results/BENCH_08.json --tolerance 0.6 \
    --out target/ci_bench_snapshot.json

echo "CI gate passed."
