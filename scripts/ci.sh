#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the tier-1 test suite.
#
# The build is fully offline (path-shimmed external deps, see shims/),
# so every cargo invocation passes --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> gaasx-lint (in-tree invariant checker)"
cargo run -q --offline -p gaasx-lint -- .

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --offline --workspace

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release --offline
cargo test -q --offline

echo "==> workspace tests"
cargo test -q --workspace --offline

echo "==> sharded execution: parallel path vs serial (bit-identity gate)"
GAASX_CAP_EDGES=20000 cargo run -q --release --offline -p gaasx-bench \
    --bin jobs_scaling -- --jobs 4

echo "==> fault campaign smoke: recovery bit-identity + graceful degradation"
cargo run -q --release --offline -p gaasx-bench --bin fault_campaign -- --smoke

echo "==> search-mode smoke: Linear vs Indexed report bit-identity"
cargo run -q --release --offline -p gaasx-bench --bin bench_snapshot -- --smoke

echo "CI gate passed."
