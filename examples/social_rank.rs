//! Social-network influence ranking: PageRank on a scaled LiveJournal-class
//! graph, with GaaS-X compared against the GraphR dense-mapping baseline
//! and validated against an exact oracle.
//!
//! ```sh
//! cargo run --release --example social_rank
//! ```

#![allow(clippy::unwrap_used)]
use gaasx::baselines::reference;
use gaasx::baselines::{GraphR, GraphRConfig};
use gaasx::core::algorithms::PageRank;
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::datasets::PaperDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A LiveJournal-style scale-free social graph at 1/500 scale
    // (~138 K edges) — R-MAT with community locality, like the paper's
    // crawled datasets.
    let graph = PaperDataset::LiveJournal.instantiate_graph(1.0 / 500.0)?;
    println!(
        "LiveJournal @ 1/500 scale: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let iters = 10;
    let mut accel = GaasX::new(GaasXConfig::paper());
    let gaasx = accel.run_labeled(&PageRank::fixed_iterations(iters), &graph, "LJ")?;

    let mut graphr = GraphR::new(GraphRConfig::paper());
    let dense = graphr.pagerank(&graph, 0.85, iters)?;

    // Validate both engines against the exact recurrence.
    let oracle = reference::pagerank(&graph, 0.85, iters);
    let worst = gaasx
        .result
        .iter()
        .zip(&oracle)
        .map(|(a, b)| (a - b).abs() / b.max(1.0))
        .fold(0.0f64, f64::max);
    println!("max relative error vs oracle = {worst:.2e} (16-bit fixed-point device)");

    // Who are the influencers?
    let mut top: Vec<(usize, f64)> = gaasx.result.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-5 ranked vertices:");
    for (v, r) in top.iter().take(5) {
        println!("  v{v}: {r:.3}");
    }

    println!(
        "\nGaaS-X: {:.2} ms, {:.2} mJ  |  GraphR: {:.2} ms, {:.2} mJ",
        gaasx.report.time_ms(),
        gaasx.report.energy_mj(),
        dense.report.time_ms(),
        dense.report.energy_mj(),
    );
    println!(
        "sparse mapping wins: {:.1}× faster, {:.1}× less energy \
         ({} cells programmed vs {})",
        gaasx.report.speedup_over(&dense.report),
        gaasx.report.energy_savings_over(&dense.report),
        gaasx.report.ops.cells_written,
        dense.report.ops.cells_written,
    );
    Ok(())
}
