//! Movie recommender: collaborative filtering (matrix factorization SGD)
//! on a Netflix-style rating set, trained in-situ on GaaS-X's crossbars and
//! compared against the GraphChi-style CPU trainer.
//!
//! ```sh
//! cargo run --release --example recommender
//! ```

#![allow(clippy::unwrap_used)]
use gaasx::baselines::cpu::GraphChiCpu;
use gaasx::core::algorithms::CollaborativeFiltering;
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::bipartite::BipartiteGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small Netflix-like rating set: Zipf item popularity, 1–5 stars.
    let ratings = BipartiteGraph::synthetic(400, 80, 6_000, 42)?;
    println!(
        "ratings: {} users × {} movies, {} ratings (mean {:.2} stars)",
        ratings.num_users(),
        ratings.num_items(),
        ratings.num_ratings(),
        ratings.mean_rating().unwrap_or(0.0),
    );

    let cf = CollaborativeFiltering {
        features: 16,
        epochs: 6,
        learning_rate: 0.02,
        regularization: 0.02,
        seed: 42,
    };

    let mut accel = GaasX::new(GaasXConfig::paper());
    let device = accel.run_labeled(&cf, &ratings, "NF-mini")?;
    let device_rmse = device.result.rmse(&ratings).expect("non-empty ratings");

    let cpu = GraphChiCpu::new().cf(
        &ratings,
        cf.features,
        cf.epochs,
        cf.learning_rate,
        cf.regularization,
        cf.seed,
    )?;
    let cpu_rmse = cpu.result.rmse(&ratings).expect("non-empty ratings");

    println!(
        "training RMSE — GaaS-X (16-bit dual-rail crossbars): {device_rmse:.4}, \
         GraphChi (f32 CPU): {cpu_rmse:.4}"
    );
    println!(
        "GaaS-X modeled: {:.2} ms, {:.3} mJ | GraphChi measured: {:.2} ms",
        device.report.time_ms(),
        device.report.energy_mj(),
        cpu.report.time_ms(),
    );

    // Recommend: for user 0, the unrated movie with the highest prediction.
    let user = 0u32;
    let rated: Vec<u32> = ratings
        .iter()
        .filter(|r| r.user == user)
        .map(|r| r.item)
        .collect();
    let best = (0..ratings.num_items())
        .filter(|i| !rated.contains(i))
        .map(|i| (i, device.result.predict(user, i)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("some unrated movie exists");
    println!(
        "recommendation for user {user}: movie {} (predicted {:.2} stars)",
        best.0, best.1
    );
    Ok(())
}
