//! Design-space exploration: sweep the accelerator's key microarchitecture
//! parameters — MAC accumulation cap, bank count, device noise — and watch
//! their effect on runtime, energy, and result fidelity.
//!
//! This is the kind of study the library's separation of *function*
//! (crossbar models) from *cost* (energy/latency constants) makes cheap.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

#![allow(clippy::unwrap_used)]
use gaasx::baselines::reference;
use gaasx::core::algorithms::PageRank;
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::datasets::PaperDataset;
use gaasx::sim::table::Table;
use gaasx::xbar::Fidelity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = PaperDataset::Slashdot.instantiate_graph(0.1)?;
    let oracle = reference::pagerank(&graph, 0.85, 8);
    let pr = PageRank::fixed_iterations(8);
    println!(
        "workload: Slashdot @ 0.1 scale ({} edges), PageRank × 8\n",
        graph.num_edges()
    );

    // Sweep 1: the ≤16-row accumulation cap. Fewer rows per burst means a
    // cheaper ADC but more MAC bursts per gather.
    let mut t = Table::new(&["max rows/MAC", "MAC bursts", "time (ms)", "energy (mJ)"]);
    for cap in [4, 8, 16, 32] {
        let mut config = GaasXConfig::paper();
        config.mac_geometry.max_active_rows = cap;
        let mut accel = GaasX::new(config);
        let out = accel.run(&pr, &graph)?;
        t.row_owned(vec![
            cap.to_string(),
            out.report.ops.mac_ops.to_string(),
            format!("{:.3}", out.report.time_ms()),
            format!("{:.3}", out.report.energy_mj()),
        ]);
    }
    println!("accumulation-cap sweep:\n{t}");

    // Sweep 2: bank count — the parallelism knob.
    let mut t = Table::new(&["banks", "time (ms)", "energy (mJ)"]);
    for banks in [256, 512, 1024, 2048, 4096] {
        let mut accel = GaasX::new(GaasXConfig {
            num_banks: banks,
            ..GaasXConfig::paper()
        });
        let out = accel.run(&pr, &graph)?;
        t.row_owned(vec![
            banks.to_string(),
            format!("{:.3}", out.report.time_ms()),
            format!("{:.3}", out.report.energy_mj()),
        ]);
    }
    println!("bank-count sweep:\n{t}");

    // Sweep 3: analog device noise under quantized periphery — how much
    // conductance variation can PageRank absorb?
    let mut t = Table::new(&["noise σ", "mean |err| vs oracle"]);
    for sigma in [0.0, 0.02, 0.05, 0.10] {
        let mut accel = GaasX::new(GaasXConfig {
            fidelity: Fidelity::Quantized,
            noise_sigma: sigma,
            noise_seed: 99,
            ..GaasXConfig::paper()
        });
        let out = accel.run(&pr, &graph)?;
        let err: f64 = out
            .result
            .iter()
            .zip(&oracle)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / oracle.len() as f64;
        t.row_owned(vec![format!("{sigma:.2}"), format!("{err:.4}")]);
    }
    println!("device-noise sweep:\n{t}");
    Ok(())
}
