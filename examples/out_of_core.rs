//! Out-of-core workflow: persist a graph as the paper's Fig 2 on-disk
//! sub-shard layout, stream it back in destination-interval order, and run
//! the accelerator on the reloaded graph.
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

#![allow(clippy::unwrap_used)]
use gaasx::core::algorithms::PageRank;
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::disk::ShardStore;
use gaasx::graph::generators::{rmat, RmatConfig};
use gaasx::graph::partition::{GridPartition, TraversalOrder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = rmat(&RmatConfig::new(1 << 11, 30_000).with_seed(5))?;
    let grid = GridPartition::with_num_intervals(&graph, 8)?;
    println!(
        "graph: {} vertices, {} edges over {} non-empty sub-shards (8×8 grid)",
        graph.num_vertices(),
        graph.num_edges(),
        grid.num_nonempty_shards()
    );

    // Persist as one contiguous file per sub-shard + manifest (Fig 2).
    let dir = std::env::temp_dir().join(format!("gaasx-out-of-core-{}", std::process::id()));
    let store = ShardStore::save(&grid, &dir)?;
    let bytes: u64 = std::fs::read_dir(&dir)?
        .filter_map(Result::ok)
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    println!(
        "persisted {} shard files ({} KiB) under {}",
        store.num_shards(),
        bytes / 1024,
        dir.display()
    );

    // Stream back column-major — strictly sequential reads, destinations
    // grouped the way the PageRank gather wants them.
    let mut streamed_edges = 0usize;
    for item in store.stream(TraversalOrder::ColumnMajor) {
        let (_, shard) = item?;
        streamed_edges += shard.num_edges();
    }
    println!("streamed {streamed_edges} edges in destination-interval order");

    // Reassemble and run on the accelerator.
    let reloaded = store.reassemble()?;
    let mut accel = GaasX::new(GaasXConfig::paper());
    let out = accel.run(&PageRank::fixed_iterations(10), &reloaded)?;
    println!(
        "PageRank on the reloaded graph: {:.2} µs, {:.2} µJ, {} iterations",
        out.report.elapsed_ns / 1e3,
        out.report.energy.total_nj() / 1e3,
        out.report.iterations
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
