//! Quickstart: run PageRank on the paper's worked-example graph and read
//! the timing/energy report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

#![allow(clippy::unwrap_used)]
use gaasx::core::algorithms::PageRank;
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 5-vertex weighted graph of Fig 7(a)/Fig 9(a) in the paper.
    let graph = generators::paper_fig7_graph();
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // A GaaS-X accelerator at the paper's Table I configuration:
    // 2048 CAM+MAC crossbar bank pairs, 30 ns MAC / 4 ns CAM operations.
    let mut accel = GaasX::new(GaasXConfig::paper());

    let outcome = accel.run(&PageRank::default(), &graph)?;
    println!(
        "pagerank converged in {} iterations, {:.3} µs, {:.3} µJ",
        outcome.report.iterations,
        outcome.report.elapsed_ns / 1e3,
        outcome.report.energy.total_nj() / 1e3,
    );
    for (v, rank) in outcome.result.iter().enumerate() {
        println!("  vertex {v}: rank {rank:.4}");
    }

    // Where did the energy go? The breakdown mirrors the architecture:
    // MAC bursts, CAM searches, cell programming, SFU, buffers, static.
    for (component, nj) in outcome.report.energy.components() {
        println!("  energy[{component}] = {nj:.2} nJ");
    }
    println!(
        "device ops: {} CAM searches, {} MAC bursts, {} cells programmed",
        outcome.report.ops.cam_searches,
        outcome.report.ops.mac_ops,
        outcome.report.ops.cells_written,
    );
    Ok(())
}
