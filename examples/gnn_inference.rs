//! Graph neural network inference on GaaS-X — the paper's deferred
//! "emerging algorithms" mapping (§V-B) made concrete: a two-layer GCN
//! classifying vertices of a community-structured graph.
//!
//! ```sh
//! cargo run --release --example gnn_inference
//! ```

#![allow(clippy::unwrap_used)]
use gaasx::core::algorithms::{GcnInput, GcnLayer};
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::generators::{localize, rmat, LocalityConfig, RmatConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A community-structured graph: two-hop neighborhoods are informative.
    let raw = rmat(&RmatConfig::new(1 << 9, 4_000).with_seed(17))?;
    let graph = localize(&raw, &LocalityConfig::new(0.7))?;
    let n = graph.num_vertices();
    println!("graph: {} vertices, {} edges", n, graph.num_edges());

    // Input features: an 8-dim one-hot-ish signal derived from the vertex's
    // community window (what a real pipeline would get from embeddings).
    let f_in = 8;
    let mut rng = SmallRng::seed_from_u64(3);
    let features: Vec<Vec<f32>> = (0..n)
        .map(|v| {
            let mut f = vec![0.0f32; f_in];
            f[(v as usize / 256) % f_in] = 1.0;
            f.iter_mut().for_each(|x| *x += rng.gen_range(0.0f32..0.1));
            f
        })
        .collect();

    // Random (untrained) weights — this example demonstrates the *mapping*
    // and its cost profile, not a training pipeline.
    let mut w = |fi: usize, fo: usize| -> Vec<Vec<f32>> {
        (0..fi)
            .map(|_| (0..fo).map(|_| rng.gen_range(-0.5..0.5)).collect())
            .collect()
    };
    let layer1 = GcnLayer::new(w(f_in, 16));
    let mut layer2 = GcnLayer::new(w(16, 4));
    layer2.relu = false; // final linear logits

    let mut accel = GaasX::new(GaasXConfig::paper());

    let input1 = GcnInput {
        graph: graph.clone(),
        features,
    };
    let hidden = accel.run_labeled(&layer1, &input1, "gcn-l1")?;
    println!(
        "layer 1 (8→16): {:.2} µs, {:.2} µJ, {} MAC bursts",
        hidden.report.elapsed_ns / 1e3,
        hidden.report.energy.total_nj() / 1e3,
        hidden.report.ops.mac_ops,
    );

    let input2 = GcnInput {
        graph,
        features: hidden
            .result
            .iter()
            .map(|r| r.iter().map(|&v| v as f32).collect())
            .collect(),
    };
    let logits = accel.run_labeled(&layer2, &input2, "gcn-l2")?;
    println!(
        "layer 2 (16→4): {:.2} µs, {:.2} µJ",
        logits.report.elapsed_ns / 1e3,
        logits.report.energy.total_nj() / 1e3,
    );

    // Argmax classification summary.
    let mut class_counts = [0usize; 4];
    for row in &logits.result {
        let c = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        class_counts[c] += 1;
    }
    println!("predicted class distribution: {class_counts:?}");
    Ok(())
}
