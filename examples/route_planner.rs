//! Route planning: single-source shortest paths on a weighted road-style
//! grid, exercising the SpMV-add mapping (CAM search by source + transposed
//! MAC), plus BFS hop counts on the same network.
//!
//! ```sh
//! cargo run --release --example route_planner
//! ```

#![allow(clippy::unwrap_used)]
use gaasx::baselines::reference;
use gaasx::core::algorithms::{Bfs, Sssp};
use gaasx::core::{GaasX, GaasXConfig};
use gaasx::graph::{generators, CooGraph, Edge, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A city-like road network: a 2-D grid with randomized travel times plus a
/// few express "highways" that skip across town.
fn road_network(rows: u32, cols: u32, seed: u64) -> CooGraph {
    let grid = generators::grid_graph(rows, cols).symmetrized();
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = grid.num_vertices();
    let mut edges: Vec<Edge> = grid
        .iter()
        .map(|e| Edge::new(e.src.raw(), e.dst.raw(), rng.gen_range(1..=9) as f32))
        .collect();
    for _ in 0..(n / 10) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push(Edge::new(a, b, 2.0)); // highway: fast long hop
            edges.push(Edge::new(b, a, 2.0));
        }
    }
    CooGraph::from_edges(n, edges).expect("grid ids are in range")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (rows, cols) = (40, 40);
    let network = road_network(rows, cols, 7);
    let depot = VertexId::new(0);
    println!(
        "road network: {}×{} grid + highways = {} intersections, {} road segments",
        rows,
        cols,
        network.num_vertices(),
        network.num_edges()
    );

    let mut accel = GaasX::new(GaasXConfig::paper());

    // Travel times from the depot.
    let sssp = accel.run(&Sssp::from_source(depot), &network)?;
    let oracle = reference::dijkstra(&network, depot);
    assert_eq!(sssp.result, oracle, "device distances must match Dijkstra");

    // Hop counts (number of turns) from the depot.
    let bfs = accel.run(&Bfs::from_source(depot), &network)?;

    let far = sssp
        .result
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_finite())
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("network is connected");
    println!(
        "farthest reachable intersection: v{} at travel time {} ({} hops)",
        far.0, far.1, bfs.result[far.0]
    );
    println!(
        "corner-to-corner: travel time {}, {} hops",
        sssp.result[network.num_vertices() as usize - 1],
        bfs.result[network.num_vertices() as usize - 1],
    );

    println!(
        "\nSSSP: {} supersteps, {:.2} µs, {:.2} µJ",
        sssp.report.iterations,
        sssp.report.elapsed_ns / 1e3,
        sssp.report.energy.total_nj() / 1e3,
    );
    println!(
        "BFS:  {} supersteps, {:.2} µs, {:.2} µJ \
         (no MAC programming — preset unit weights)",
        bfs.report.iterations,
        bfs.report.elapsed_ns / 1e3,
        bfs.report.energy.total_nj() / 1e3,
    );
    Ok(())
}
