//! Offline stand-in for the subset of `crossbeam` this workspace uses.
//!
//! The build is fully offline, so the real `crossbeam` cannot be fetched.
//! The workspace currently only declares the dependency (parallel sections
//! use `std::thread::scope` directly), so this shim just re-exports the
//! std scoped-thread API under crossbeam's names to keep the dependency
//! resolvable and leave room for future call sites.

#![warn(missing_docs)]

/// Scoped thread support mirroring `crossbeam::thread` on top of std.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// Re-export matching `crossbeam::scope` (std's scoped threads).
pub use std::thread::scope;
