//! Offline stand-in for the subset of `bytes` 1.x this workspace uses.
//!
//! The build is fully offline, so the real `bytes` cannot be fetched. The
//! graph I/O layer only needs a read cursor ([`Bytes`]) and an append
//! builder ([`BytesMut`]) over little-endian integers/floats, so this shim
//! implements exactly that on top of `Vec<u8>`. There is no shared-arc
//! zero-copy machinery: `slice`/`clone` copy, which is fine at the sizes
//! the tests and loaders use.

#![warn(missing_docs)]

use std::ops::{Bound, RangeBounds};

/// Read trait mirroring `bytes::Buf` for the methods the workspace calls.
pub trait Buf {
    /// Number of bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next byte.
    fn get_u8(&mut self) -> u8;

    /// Consumes and returns a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes and returns a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Consumes and returns a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;

    /// Consumes and returns a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

/// Write trait mirroring `bytes::BufMut` for the methods the workspace calls.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable byte buffer with an internal read cursor.
///
/// `get_*` methods consume from the front of the remaining view;
/// `len`/`slice`/indexing also refer to the remaining view, matching how
/// the real `Bytes` advances on reads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes remaining (unconsumed).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Returns a sub-buffer of the remaining bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds of the remaining view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of bounds of remaining {}",
            self.len()
        );
        Bytes {
            data: self.data[self.pos + start..self.pos + end].to_vec(),
            pos: 0,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.len() >= n,
            "buffer underflow: need {n} bytes, have {}",
            self.len()
        );
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// A growable byte builder; `freeze` converts it into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        b.put_u8(7);
        let mut r = b.freeze();
        assert_eq!(r.len(), 4 + 8 + 4 + 8 + 1);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.get_u8(), 7);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_is_relative_to_remaining() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let _ = b.get_u8();
        assert_eq!(b.len(), 5);
        let s = b.slice(1..3);
        assert_eq!(s.to_vec(), vec![2, 3]);
        let full = b.slice(0..b.len() - 1);
        assert_eq!(full.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u32_le();
    }
}
