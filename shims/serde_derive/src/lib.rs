//! Offline no-op stand-in for `serde_derive`.
//!
//! The build environment for this repository is fully offline, so the real
//! `serde_derive` (and its `syn`/`quote` dependency tree) cannot be fetched.
//! Nothing in the workspace actually serializes through serde — the derives
//! are forward-looking API surface — so these macros expand to nothing. The
//! matching `serde` shim provides blanket trait impls, keeping any
//! `T: Serialize` bound satisfiable.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepts (and ignores) `#[serde(...)]`
/// attributes and expands to an empty token stream.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepts (and ignores) `#[serde(...)]`
/// attributes and expands to an empty token stream.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
