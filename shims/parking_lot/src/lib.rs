//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build is fully offline, so the real `parking_lot` cannot be fetched.
//! This shim wraps `std::sync` primitives behind `parking_lot`'s
//! non-poisoning API: `lock()`/`read()`/`write()` return guards directly
//! (a poisoned std lock — a panic while held — recovers the inner guard
//! rather than propagating the poison, matching `parking_lot` semantics).

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (requires `&mut self`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader–writer lock with `parking_lot`'s panic-free `read()`/`write()` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the inner value (requires `&mut self`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1u32]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 5;
        assert_eq!(*m.lock(), 5);
    }
}
