//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build is fully offline, so the real `proptest` cannot be fetched.
//! This shim keeps the property tests running as *randomized tests with
//! deterministic seeds*: each test case draws its inputs from an RNG
//! seeded by the test's module path, name, and case index, so a failure
//! always reproduces on re-run. There is **no shrinking** — a failing
//! case reports the case index (printed by [`proptest!`] on panic) and
//! the raw inputs via the assertion message, not a minimized example.
//!
//! Supported surface:
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   integer and float `Range`/`RangeInclusive`, tuples (arity 2–6),
//!   [`Just`], and [`any`];
//! * [`collection::vec`] with `usize`, `Range<usize>` or
//!   `RangeInclusive<usize>` sizes;
//! * [`ProptestConfig::with_cases`];
//! * the [`proptest!`] macro (`fn name(pat in strategy, ...) { .. }` with
//!   an optional `#![proptest_config(..)]` header) and
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]
//!   (which forward to the std `assert` family).

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::SampleRange;

pub use config::ProptestConfig;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree: strategies generate
/// concrete values directly and nothing shrinks.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut test_runner::TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (full range for integers,
/// unit interval for floats, fair coin for bool).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arbitrary_full_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.gen_unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.gen_unit_f64() as f32
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        rng.sample(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        rng.sample(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.sample(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod config {
    /// Per-block configuration for [`crate::proptest!`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

/// Deterministic per-case RNG.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore, SampleRange, SeedableRng};

    /// RNG handed to [`crate::Strategy::generate`], seeded from the test
    /// name and case index so every run of a test is reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Builds the RNG for case `case` of the test named `name`.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the fully qualified test name, mixed with the
            // case index; any stable hash works.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x1_0000_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ))
        }

        /// Uniform draw from a range (delegates to the rand shim).
        pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            self.0.gen_range(range)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            RngCore::next_u64(&mut self.0)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn gen_unit_f64(&mut self) -> f64 {
            self.0.gen::<f64>()
        }
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::config::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn prop_holds(x in 0u32..100, v in prop::collection::vec(any::<u64>(), 1..9)) {
///         prop_assert!(v.len() < 9);
///     }
/// }
/// ```
///
/// Each test body runs `cases` times with inputs drawn from the listed
/// strategies; the RNG is seeded from the test path and case index, so
/// failures reproduce deterministically.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(test_path, case);
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    #[allow(unused_imports)]
                    use $crate::Strategy as _;
                    let ( $($pat,)+ ) = ( $(($strategy).generate(&mut rng),)+ );
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest shim: {test_path} failed at case {case}/{} \
                         (deterministic seed; rerun reproduces it)",
                        config.cases
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn dependent_pair() -> impl Strategy<Value = (Vec<u32>, usize)> {
        prop::collection::vec(0u32..50, 1..=8).prop_flat_map(|v| {
            let n = v.len();
            (Just(v), 0..n)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_tuples((a, b, c) in (2u32..60, 1usize..150, any::<u64>())) {
            prop_assert!((2..60).contains(&a));
            prop_assert!((1..150).contains(&b));
            // `c` spans the full u64 range; nothing to bound.
            let _ = c;
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(0u32..=0xFFFF, 1..=16)) {
            prop_assert!((1..=16).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x <= 0xFFFF));
        }

        #[test]
        fn flat_map_sees_dependent_state((v, idx) in dependent_pair()) {
            // idx was drawn from 0..v.len(), so indexing is always valid.
            prop_assert!(v[idx] < 50);
        }

        #[test]
        fn map_applies(x in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 21);
        }

        #[test]
        fn exact_size_vec(n in 3usize..6, v in prop::collection::vec(any::<u64>(), 4usize)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!((3..6).contains(&n));
        }

        #[test]
        fn float_ranges(max in 0.5f32..1000.0, unit in 0.0f32..1.0) {
            prop_assert!((0.5..1000.0).contains(&max));
            prop_assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn cases_are_deterministic_but_distinct() {
        let strat = 0u64..u64::MAX;
        let a1 = strat.generate(&mut crate::test_runner::TestRng::deterministic("t", 0));
        let a2 = strat.generate(&mut crate::test_runner::TestRng::deterministic("t", 0));
        let b = strat.generate(&mut crate::test_runner::TestRng::deterministic("t", 1));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
