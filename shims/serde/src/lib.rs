//! Offline stand-in for `serde`.
//!
//! The build is fully offline, so the real `serde` cannot be fetched. The
//! workspace only *derives* `Serialize`/`Deserialize` (no code actually
//! drives a serializer — there is no `serde_json` in the tree), so this shim
//! keeps the API surface compiling:
//!
//! * the derive macros (re-exported from the no-op `serde_derive` shim)
//!   expand to nothing;
//! * [`Serialize`] / [`Deserialize`] are marker traits with blanket impls,
//!   so `T: Serialize` bounds stay satisfiable.
//!
//! In-tree code that needs real serialization (e.g. the JSONL trace sink in
//! `gaasx-sim::obs`) hand-rolls its format instead of going through serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
