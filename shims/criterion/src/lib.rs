//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build is fully offline, so the real `criterion` (and its large
//! dependency tree) cannot be fetched. This shim keeps the `[[bench]]`
//! targets compiling and *measuring*: each benchmark is warmed up, then
//! timed over a batch of iterations sized to fill a small measurement
//! window, and the mean ns/iter (plus throughput, when declared) is
//! printed. There is no statistical analysis, HTML report, or saved
//! baseline — comparisons are done by eye or by scripts over the stdout.
//!
//! Supported surface: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::throughput`] /
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::finish`],
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Throughput::Elements`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`].
//!
//! Command-line flags from cargo's bench/test runners are tolerated:
//! `--test` runs every benchmark once (smoke mode, used by `cargo test
//! --benches`), a bare string argument filters benchmarks by substring,
//! and other flags are ignored.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many "units of work" one iteration represents, for throughput
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration (edges, ops, ...).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver, handed to every function registered with
/// [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, smoke }
    }
}

impl Criterion {
    /// Applies command-line configuration (no-op — parsing happens in
    /// `default()`; kept for API compatibility).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id, 10, None, f);
        self
    }
}

/// A named group of benchmarks sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &id, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (no-op; results are printed as they complete).
    pub fn finish(self) {}
}

/// Timing handle passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    criterion: &Criterion,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    if criterion.smoke {
        let mut b = Bencher {
            iters: 1,
            ..Bencher::default()
        };
        f(&mut b);
        println!("{id}: smoke ok");
        return;
    }

    // Calibrate: grow the batch until one sample takes >= the window.
    let window = Duration::from_millis(20);
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            ..Bencher::default()
        };
        f(&mut b);
        if b.elapsed >= window || iters >= 1 << 20 {
            break;
        }
        iters = if b.elapsed.is_zero() {
            iters * 16
        } else {
            // Aim 50% past the window so the loop usually exits next round.
            let scale = window.as_secs_f64() / b.elapsed.as_secs_f64() * 1.5;
            (iters as f64 * scale).ceil() as u64
        };
    }

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            ..Bencher::default()
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }

    let ns_per_iter = total.as_secs_f64() * 1e9 / total_iters.max(1) as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns_per_iter * 1e-9);
            println!("{id}: {ns_per_iter:.1} ns/iter ({rate:.3e} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns_per_iter * 1e-9);
            println!("{id}: {ns_per_iter:.1} ns/iter ({rate:.3e} B/s)");
        }
        None => println!("{id}: {ns_per_iter:.1} ns/iter"),
    }
}

/// Declares a benchmark group: `criterion_group!(benches, fn_a, fn_b);`
/// expands to a function `benches()` that runs each registered function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_the_requested_iterations() {
        let mut b = Bencher {
            iters: 100,
            ..Bencher::default()
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        assert!(b.elapsed <= Duration::from_secs(1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            filter: None,
            smoke: true,
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        let mut runs = 0u32;
        group.bench_function("touch", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1, "smoke mode runs each benchmark once");
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            smoke: true,
        };
        let mut hit = false;
        c.bench_function("other", |b| b.iter(|| hit = true));
        assert!(!hit);
        c.bench_function("match-me-exactly", |b| b.iter(|| hit = true));
        assert!(hit);
    }
}
