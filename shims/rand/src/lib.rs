//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build is fully offline, so the real `rand` cannot be fetched. This
//! shim implements the exact API surface the repository calls — it is not a
//! general replacement:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded through SplitMix64, matching
//!   the real `SmallRng`'s role as a fast, non-cryptographic generator
//!   (the streams differ from upstream `rand`; all in-tree consumers only
//!   need determinism per seed, not upstream-identical sequences);
//! * [`Rng::gen_range`] over integer and float ranges,
//!   [`Rng::gen`] for uniform primitives, [`Rng::gen_bool`];
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Integer ranges sample via 128-bit widening multiply (Lemire reduction
//! without the rejection loop — bias below 2⁻⁶⁴·span, irrelevant for
//! simulation workloads). Floats sample uniformly in `[lo, hi)` from 53
//! (f64) or 24 (f32) random mantissa bits.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` entry point is what the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// The seed type (32 bytes for xoshiro256++).
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of a primitive type (`f64`/`f32` in
    /// `[0, 1)`, integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Distribution of a primitive type under [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range from which [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps a uniform `u64` onto `[0, span)` via widening multiply.
#[inline]
fn mul_reduce(raw: u64, span: u64) -> u64 {
    ((u128::from(raw) * u128::from(span)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(mul_reduce(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width u64/i64 range: any raw draw is uniform.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(mul_reduce(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding landing exactly on `end`.
                if v >= self.end { self.start } else { v }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (the shim's `SmallRng`).
    ///
    /// Deterministic per seed; streams are *not* identical to upstream
    /// `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point; fall back to a seeded state.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension trait providing in-place shuffling.
    pub trait SliceRandom {
        /// Uniformly shuffles the slice (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&g));
            let h = rng.gen_range(0.0f32..0.25);
            assert!((0.0..0.25).contains(&h));
        }
    }

    #[test]
    fn range_samples_cover_support() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn from_seed_accepts_all_zero() {
        let mut rng = SmallRng::from_seed([0; 32]);
        assert_ne!(rng.gen::<u64>(), rng.gen::<u64>());
    }
}
