//! Fixture-corpus integration tests.
//!
//! Each rule has a passing and a failing mini-tree under
//! `tests/fixtures/<rule>/{pass,fail}/`; the failing trees encode the
//! historical bugs the rules exist for, so reintroducing one fails CI.

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::Command;

use gaasx_lint::{json, run_lint, LintReport};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> LintReport {
    run_lint(&fixture(name)).unwrap_or_else(|e| panic!("lint {name}: {e}"))
}

/// `(fixture dir, rule id every finding in `fail/` must carry)`.
const CASES: &[(&str, &str)] = &[
    ("stat-wipe", "no-stat-wipe"),
    ("accounting", "unchecked-accounting"),
    ("alloc-hot", "alloc-in-hot"),
    ("panic", "panic-in-lib"),
    ("conservation", "summary-conservation"),
    ("threads", "thread-containment"),
    ("seeded-rng", "seeded-rng"),
    ("wall-clock", "wall-clock"),
    ("units-mixed", "mixed-units"),
    ("units-sig", "unit-ambiguous-sig"),
    ("units-cast", "unit-cast"),
    ("hot-alloc", "hot-reachable-alloc"),
    ("hot-panic", "hot-reachable-panic"),
    ("unbounded-queue", "unbounded-queue"),
    ("directive", "directive"),
];

#[test]
fn passing_fixtures_are_clean() {
    for (dir, _) in CASES {
        let report = lint(&format!("{dir}/pass"));
        assert!(report.is_clean(), "{dir}/pass:\n{}", report.render_human());
    }
}

#[test]
fn failing_fixtures_report_only_their_rule() {
    for (dir, rule) in CASES {
        let report = lint(&format!("{dir}/fail"));
        assert!(!report.is_clean(), "{dir}/fail should have findings");
        for f in &report.findings {
            assert_eq!(f.rule, *rule, "{dir}/fail reported a foreign rule: {f:?}");
        }
    }
}

#[test]
fn historical_bugs_are_pinned() {
    // Near-miss: `preset_mac` (an op method whose name merely *contains*
    // "reset") wiping device stats mid-run.
    let wipe = lint("stat-wipe/fail");
    assert!(
        wipe.findings
            .iter()
            .any(|f| f.message.contains("preset_mac")),
        "{}",
        wipe.render_human()
    );
    // Shipped bug: bare accumulator arithmetic on the SFU add path —
    // both the `+=` counter bump and the `+` op result must be caught.
    let acc = lint("accounting/fail");
    assert_eq!(acc.findings.len(), 2, "{}", acc.render_human());
    assert!(acc
        .findings
        .iter()
        .all(|f| f.path == "crates/core/src/sfu.rs"));
}

#[test]
fn justified_suppressions_count_but_stay_silent() {
    let report = lint("directive/pass");
    assert!(report.is_clean());
    assert_eq!(report.suppressed, 1);
}

#[test]
fn json_round_trips_for_every_failing_fixture() {
    for (dir, _) in CASES {
        let report = lint(&format!("{dir}/fail"));
        let back = json::from_json(&json::to_json(&report)).expect("parse back");
        assert_eq!(back, report, "{dir}/fail");
    }
}

#[test]
fn binary_exit_codes_and_json_output() {
    let bin = env!("CARGO_BIN_EXE_gaasx-lint");
    let run = |args: &[&str]| Command::new(bin).args(args).output().expect("spawn");

    let clean = run(&[fixture("panic/pass").to_str().unwrap()]);
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");

    let dirty = run(&[fixture("panic/fail").to_str().unwrap(), "--json"]);
    assert_eq!(dirty.status.code(), Some(1), "{dirty:?}");
    let out = String::from_utf8_lossy(&dirty.stdout);
    let report = json::from_json(out.trim()).expect("machine-readable output");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "panic-in-lib");

    let usage = run(&["--definitely-not-a-flag"]);
    assert_eq!(usage.status.code(), Some(2), "{usage:?}");
}

#[test]
fn per_rule_counts_cover_every_rule() {
    let report = lint("hot-panic/fail");
    let ids: Vec<&str> = report.rules.iter().map(|r| r.rule.as_str()).collect();
    for rule in gaasx_lint::rules::RULE_NAMES {
        assert!(ids.contains(rule), "missing per-rule row for `{rule}`");
    }
    assert_eq!(report.suppressed_for("hot-reachable-panic"), 0);
    let row = report
        .rules
        .iter()
        .find(|r| r.rule == "hot-reachable-panic")
        .unwrap();
    assert_eq!(row.findings, report.findings.len());
}

#[test]
fn baseline_ratchet_gates_suppression_growth() {
    let bin = env!("CARGO_BIN_EXE_gaasx-lint");
    let tmp = std::env::temp_dir().join(format!("gaasx_lint_baseline_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let run = |args: &[&str]| Command::new(bin).args(args).output().expect("spawn");

    // `directive/pass` has exactly one justified suppression; snapshot it.
    let root = fixture("directive/pass");
    let snap = run(&[root.to_str().unwrap(), "--json"]);
    assert_eq!(snap.status.code(), Some(0), "{snap:?}");
    let baseline_path = tmp.join("lint_baseline.json");
    std::fs::write(&baseline_path, String::from_utf8_lossy(&snap.stdout).trim()).unwrap();

    // Same tree vs its own snapshot: the ratchet holds.
    let ok = run(&[
        root.to_str().unwrap(),
        "--baseline",
        baseline_path.to_str().unwrap(),
    ]);
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");

    // Zero out the allowance: the same suppression now exceeds it.
    let report = json::from_json(String::from_utf8_lossy(&snap.stdout).trim()).unwrap();
    let mut zeroed = report.clone();
    for r in &mut zeroed.rules {
        r.suppressed = 0;
    }
    std::fs::write(&baseline_path, json::to_json(&zeroed)).unwrap();
    let grown = run(&[
        root.to_str().unwrap(),
        "--baseline",
        baseline_path.to_str().unwrap(),
    ]);
    assert_eq!(grown.status.code(), Some(1), "{grown:?}");
    let err = String::from_utf8_lossy(&grown.stderr);
    assert!(err.contains("exceed the committed baseline"), "{err}");

    // A missing or malformed baseline is an I/O error, not a pass.
    let missing = run(&[
        root.to_str().unwrap(),
        "--baseline",
        tmp.join("nope.json").to_str().unwrap(),
    ]);
    assert_eq!(missing.status.code(), Some(2), "{missing:?}");

    std::fs::remove_dir_all(&tmp).ok();
}
