//! Fixture: dimensionless counts cast freely — `count as f64 * pj` is
//! the canonical billing idiom.

pub fn bill(items: u64, write_pj: f64) -> f64 {
    items as f64 * write_pj
}
