//! Fixture: an `as` cast silently truncating a physical quantity.

pub fn stamp(elapsed_ns: f64) -> u64 {
    elapsed_ns as u64
}
