//! Historical bug: the serving layer buffered arrivals in unbounded
//! queues, so overload was absorbed into memory growth and latency
//! collapse instead of a typed `Overloaded` rejection.

use std::collections::VecDeque;
use std::sync::mpsc;

pub struct JobQueue<T> {
    items: VecDeque<T>,
}

impl<T> JobQueue<T> {
    pub fn new() -> Self {
        Self {
            items: VecDeque::new(),
        }
    }

    pub fn push(&mut self, item: T) {
        self.items.push_back(item);
    }

    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }
}

pub fn dispatch_pipe<T>() -> (mpsc::Sender<T>, mpsc::Receiver<T>) {
    mpsc::channel()
}
