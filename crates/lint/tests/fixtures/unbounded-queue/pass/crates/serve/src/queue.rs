//! Bounded job queue: capacity is fixed at admission time, so overload
//! becomes a typed rejection instead of unbounded memory growth.

use std::collections::VecDeque;

pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            return Err(item);
        }
        self.items.push_back(item);
        Ok(())
    }

    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }
}
