//! Fixture: a justified suppression silences its rule cleanly.

pub fn first(table: &[u64]) -> u64 {
    // gaasx-lint: allow(panic-in-lib) -- fixture: table is non-empty by construction
    table.first().copied().unwrap()
}
