//! Fixture: a suppression without a `-- <why>` justification.

pub fn first(table: &[u64]) -> u64 {
    // gaasx-lint: allow(panic-in-lib)
    table.first().copied().unwrap()
}
