//! Fixture: an `assert!` two hops below the fence aborts a whole sharded
//! run from inside the dispatch loop.

pub fn dispatch() {
    // gaasx-lint: hot
    for chunk in 0..4 {
        stage(chunk);
    }
    // gaasx-lint: end-hot
}

fn stage(chunk: usize) {
    deeper(chunk);
}

fn deeper(chunk: usize) {
    assert!(chunk < 4, "chunk out of range");
}
