//! Fixture: `debug_assert!` is compiled out of release builds (the only
//! builds whose latency the model bills), so hot-reachable helpers may
//! keep their invariant checks.

pub fn dispatch() {
    // gaasx-lint: hot
    for chunk in 0..4 {
        stage(chunk);
    }
    // gaasx-lint: end-hot
}

fn stage(chunk: usize) {
    debug_assert!(chunk < 4, "chunk out of range");
}
