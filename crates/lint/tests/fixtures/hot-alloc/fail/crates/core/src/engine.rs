//! Fixture: the fenced dispatch loop is clean, but a helper it calls
//! allocates per chunk — invisible to the lexical fence rule.

pub fn dispatch() {
    // gaasx-lint: hot
    for chunk in 0..4 {
        stage(chunk);
    }
    // gaasx-lint: end-hot
}

fn stage(chunk: usize) {
    let scratch = vec![chunk; 4];
    drop(scratch);
}
