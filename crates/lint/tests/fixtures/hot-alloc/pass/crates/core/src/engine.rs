//! Fixture: hot-reachable helpers reuse fixed storage; cold helpers may
//! allocate.

pub fn dispatch() {
    // gaasx-lint: hot
    for chunk in 0..4 {
        stage(chunk);
    }
    // gaasx-lint: end-hot
    summarize();
}

fn stage(chunk: usize) {
    let mut scratch = [0usize; 4];
    scratch[0] = chunk;
}

fn summarize() {
    let report = vec![0u64; 8];
    drop(report);
}
