//! Fixture: an elapsed time and a per-op energy meet under `+` — the
//! exact class of silent corruption the typed newtypes exist to stop.

pub fn total(elapsed_ns: f64, op_pj: f64) -> f64 {
    elapsed_ns + op_pj
}
