//! Fixture: like-united quantities may add; products and casts resolve
//! to the product's unit, not a factor's.

pub fn total(busy_ns: f64, idle_ns: f64, reads: u64, read_pj: f64, write_pj: f64) -> f64 {
    let elapsed_ns = busy_ns + idle_ns;
    let energy_pj = reads as f64 * read_pj + reads as f64 * write_pj;
    elapsed_ns.max(energy_pj)
}
