//! Fixture: modeled time comes from block costs, never the host clock.

pub struct Engine {
    elapsed_ns: f64,
}

impl Engine {
    pub fn add_block(&mut self, stream_ns: f64, compute_ns: f64) {
        self.elapsed_ns += stream_ns.max(compute_ns);
    }

    pub fn finish_ns(&self) -> f64 {
        self.elapsed_ns
    }
}

#[cfg(test)]
mod tests {
    // Tests may time themselves with the host clock.
    #[test]
    fn wall_timing_in_tests_is_fine() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 1);
    }
}
