//! Fixture: a host wall-clock read leaked into modeled-time cost code.

pub struct Engine {
    elapsed_ns: f64,
}

impl Engine {
    pub fn finish_ns(&mut self) -> f64 {
        // Mixing the host clock into the modeled time axis: reports stop
        // being bit-identical across sharded replays.
        let started = std::time::Instant::now();
        self.elapsed_ns += started.elapsed().as_nanos() as f64;
        self.elapsed_ns
    }

    pub fn stamp(&self) -> u128 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    }
}
