//! Fixture: library RNGs built from explicit seeds replay bit-for-bit.

pub struct NoiseModel {
    rng: SmallRng,
}

impl NoiseModel {
    pub fn new(seed: u64) -> Self {
        NoiseModel {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    pub fn jitter(&mut self) -> f64 {
        self.rng.gen::<f64>() - 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_use_entropy() {
        // Exempt: test scaffolding can draw real entropy.
        let _throwaway = SmallRng::from_entropy();
        let mut m = NoiseModel::new(7);
        assert!(m.jitter().abs() <= 0.5);
    }
}
