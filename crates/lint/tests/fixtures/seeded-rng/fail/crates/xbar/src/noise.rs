//! Fixture: an OS-entropy RNG makes noisy runs unreproducible.

pub struct NoiseModel {
    rng: SmallRng,
}

impl NoiseModel {
    pub fn new() -> Self {
        NoiseModel {
            rng: SmallRng::from_entropy(),
        }
    }

    pub fn jitter(&mut self) -> f64 {
        thread_rng().gen::<f64>() - 0.5
    }
}
