//! Fixture: library code that stays panic-free (tests may unwrap).

pub fn lookup(table: &[u64], idx: usize) -> Option<u64> {
    table.get(idx).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_entries() {
        assert_eq!(lookup(&[7], 0).unwrap(), 7);
    }
}
