//! Fixture: `.unwrap()` on the library path aborts whole sharded runs.

pub fn lookup(table: &[u64], idx: usize) -> u64 {
    *table.get(idx).unwrap()
}
