//! Fixture: every `OpSummary` counter survives the merge path.

use std::iter::Sum;
use std::ops::AddAssign;

pub struct OpSummary {
    pub mac_ops: u64,
    pub cam_searches: u64,
}

impl OpSummary {
    pub fn zero() -> Self {
        OpSummary {
            mac_ops: 0,
            cam_searches: 0,
        }
    }

    pub fn merge(&mut self, other: &OpSummary) {
        self.mac_ops = self.mac_ops.saturating_add(other.mac_ops);
        self.cam_searches = self.cam_searches.saturating_add(other.cam_searches);
    }
}

impl AddAssign for OpSummary {
    fn add_assign(&mut self, rhs: Self) {
        self.merge(&rhs);
    }
}

impl Sum for OpSummary {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        let mut acc = OpSummary::zero();
        for item in iter {
            acc.merge(&item);
        }
        acc
    }
}
