//! Fixture: ad-hoc spawning outside the sharded execution layer.

pub fn run_rogue(n: usize) {
    let mut handles = Vec::with_capacity(n);
    for _ in 0..n {
        handles.push(std::thread::spawn(|| {}));
    }
    for h in handles {
        let _ = h.join();
    }
}
