//! Fixture: the one sanctioned spawning site.

pub fn run_shards(n: usize) {
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| {});
        }
    });
}
