//! Fixture: the historical bug — an op method wiping counters mid-run.

pub struct Device {
    stats: Stats,
}

pub struct Stats {
    searches: u64,
}

impl Stats {
    pub fn reset_stats(&mut self) {
        self.searches = 0;
    }
}

impl Device {
    /// `preset_mac` contains the substring "reset" but is a steady-state
    /// op method: wiping stats here corrupts the run ledger.
    pub fn preset_mac(&mut self, _row: usize) {
        self.stats.reset_stats();
    }
}
