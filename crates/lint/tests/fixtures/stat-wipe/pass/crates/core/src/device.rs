//! Fixture: `reset_stats()` from sanctioned sites only.

pub struct Device {
    stats: Stats,
}

pub struct Stats {
    searches: u64,
}

impl Stats {
    pub fn reset_stats(&mut self) {
        self.searches = 0;
    }
}

impl Device {
    pub fn new() -> Self {
        let mut d = Device {
            stats: Stats { searches: 0 },
        };
        d.stats.reset_stats();
        d
    }

    pub fn reset(&mut self) {
        self.stats.reset_stats();
    }

    pub fn setup_for_run(&mut self) {
        self.stats.reset_stats();
    }
}
