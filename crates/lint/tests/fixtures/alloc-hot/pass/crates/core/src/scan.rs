//! Fixture: allocations hoisted out of the fenced hot loop.

pub fn search(entries: &[u64], key: u64) -> Vec<usize> {
    let mut hits = Vec::with_capacity(entries.len());
    // gaasx-lint: hot
    for (i, &e) in entries.iter().enumerate() {
        if e == key {
            hits.push(i);
        }
    }
    // gaasx-lint: end-hot
    hits
}
