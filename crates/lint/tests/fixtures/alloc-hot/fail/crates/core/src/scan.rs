//! Fixture: a per-iteration allocation inside the fenced hot loop.

pub fn search(entries: &[u64], key: u64) -> Vec<Vec<usize>> {
    let mut groups = Vec::with_capacity(entries.len());
    // gaasx-lint: hot
    for (i, &e) in entries.iter().enumerate() {
        let mut hits = vec![0usize; 1];
        if e == key {
            hits[0] = i;
        }
        groups.push(hits);
    }
    // gaasx-lint: end-hot
    groups
}
