//! Fixture: a public accounting entry point taking a bare `f64` nobody
//! can tell the unit of at the call site.

pub fn bill(elapsed: f64) -> Option<f64> {
    Some(elapsed)
}
