//! Fixture: unit-suffixed and dimensionless-by-convention params are
//! both unambiguous.

pub fn bill(elapsed_ns: f64, scale: f64, value: f64) -> Option<f64> {
    Some(elapsed_ns.max(scale).max(value))
}
