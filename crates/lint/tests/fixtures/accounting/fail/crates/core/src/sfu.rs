//! Fixture: the historical bug — bare `+=` on a cost counter (overflow
//! wraps the ledger on long runs) and a bare `+` on the op result.

pub struct Sfu {
    adds: u64,
}

impl Sfu {
    pub fn add_u64(&mut self, a: u64, b: u64) -> u64 {
        self.adds += 1;
        a + b
    }
}
