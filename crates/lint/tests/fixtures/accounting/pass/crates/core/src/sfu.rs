//! Fixture: accumulator arithmetic through `saturating_*` only.

pub struct Sfu {
    adds: u64,
}

impl Sfu {
    pub fn add_u64(&mut self, a: u64, b: u64) -> u64 {
        self.adds = self.adds.saturating_add(1);
        a.saturating_add(b)
    }

    pub fn total(&self) -> u64 {
        self.adds
    }
}
