//! A minimal line-oriented Rust lexer.
//!
//! The linter has no `syn` (the offline shim set carries no proc-macro
//! stack), so rules run over a *code view* of each line: comments and the
//! contents of string/char literals are blanked out, which is enough to
//! make naive token scans sound. Comment text is preserved separately —
//! that is where `// gaasx-lint:` directives live.
//!
//! The lexer understands exactly the constructs that would otherwise make
//! a substring scan lie:
//!
//! * line comments (`//`) and *nested* block comments (`/* /* */ */`);
//! * string literals with escapes, raw strings (`r"…"`, `r#"…"#`,
//!   `br#"…"#`), byte strings, and multi-line strings;
//! * char literals vs lifetimes (`'x'` / `'\n'` vs `'a` in `&'a str`).

/// One source line split into its code view and its comment text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LexLine {
    /// The line with comments removed and literal contents blanked to
    /// spaces (quote characters are kept so token boundaries survive).
    pub code: String,
    /// Concatenated text of every comment (segment) on the line.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    CharLit,
}

/// Lexes a whole file into per-line code/comment views.
pub fn lex(src: &str) -> Vec<LexLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut line = LexLine::default();
    let mut state = State::Code;
    let mut prev_code_char = '\n';
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut line));
            if state == State::LineComment {
                state = State::Code;
            }
            prev_code_char = '\n';
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    line.code.push('"');
                    state = State::Str { raw_hashes: None };
                    i += 1;
                    continue;
                }
                // Raw / byte string starts: r"…", r#"…"#, b"…", br#"…"#.
                // Only when the `r`/`b` is not the tail of an identifier.
                if (c == 'r' || c == 'b') && !is_ident_char(prev_code_char) {
                    if let Some(consumed) = raw_string_start(&chars[i..]) {
                        for k in 0..consumed.advance {
                            line.code.push(chars[i + k]);
                        }
                        state = State::Str {
                            raw_hashes: consumed.hashes,
                        };
                        i += consumed.advance;
                        prev_code_char = '"';
                        continue;
                    }
                }
                if c == '\'' && is_char_literal(&chars[i..]) {
                    line.code.push('\'');
                    state = State::CharLit;
                    i += 1;
                    continue;
                }
                line.code.push(c);
                prev_code_char = c;
                i += 1;
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == '\\' {
                        line.code.push(' ');
                        if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                            line.code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '"' {
                        line.code.push('"');
                        state = State::Code;
                        prev_code_char = '"';
                        i += 1;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                Some(n) => {
                    if c == '"' && closes_raw_string(&chars[i..], n) {
                        line.code.push('"');
                        for _ in 0..n {
                            line.code.push('#');
                        }
                        state = State::Code;
                        prev_code_char = '"';
                        i += 1 + n as usize;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
            },
            State::CharLit => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        line.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                    prev_code_char = '\'';
                    i += 1;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // A file ending in `\n` already pushed its last line.
    if !src.is_empty() && !src.ends_with('\n') {
        lines.push(line);
    }
    lines
}

/// Whether `c` can be part of an identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct RawStart {
    /// Characters consumed up to and including the opening quote.
    advance: usize,
    /// `Some(n)` for raw strings with `n` hashes, `None` for plain `b"…"`.
    hashes: Option<u32>,
}

/// Detects `r"`/`r#"`/`b"`/`br#"` at the head of `rest`.
fn raw_string_start(rest: &[char]) -> Option<RawStart> {
    let mut j = 0usize;
    if rest.first() == Some(&'b') {
        j += 1;
    }
    let raw = rest.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    if j == 0 {
        return None; // plain `r`/`b` was not present
    }
    let mut hashes = 0u32;
    while raw && rest.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if rest.get(j) != Some(&'"') {
        return None;
    }
    // `b"…"` is an escaped (non-raw) byte string; model it as a plain
    // string so backslash escapes are honored.
    if !raw {
        return Some(RawStart {
            advance: j + 1,
            hashes: None,
        });
    }
    Some(RawStart {
        advance: j + 1,
        hashes: Some(hashes),
    })
}

fn closes_raw_string(rest: &[char], hashes: u32) -> bool {
    if rest.first() != Some(&'"') {
        return false;
    }
    (0..hashes as usize).all(|k| rest.get(1 + k) == Some(&'#'))
}

/// Distinguishes a char literal from a lifetime at a `'`.
fn is_char_literal(rest: &[char]) -> bool {
    match rest.get(1) {
        Some('\\') => true,
        // `'a'` — but `''` (rest[1] == '\'') is not a literal start.
        Some(&c2) => rest.get(2) == Some(&'\'') && c2 != '\'',
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_comments_but_keeps_text() {
        let lines = lex("let x = 1; // trailing note");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " trailing note");
    }

    #[test]
    fn blanks_string_contents() {
        let lines = code_of(r#"let s = "a // not a comment";"#);
        assert!(!lines[0].contains("not a comment"));
        assert!(lines[0].contains("let s = \""));
        assert!(lines[0].ends_with("\";"));
    }

    #[test]
    fn raw_strings_hide_quotes() {
        let lines = code_of(r##"let s = r#"has "inner" quotes"#;"##);
        assert_eq!(lines[0].matches(';').count(), 1);
        assert!(!lines[0].contains("inner"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = lex("a /* one /* two */ still */ b");
        assert_eq!(lines[0].code, "a  b");
    }

    #[test]
    fn multi_line_block_comment_spans_lines() {
        let lines = lex("before /* x\ny */ after");
        assert_eq!(lines[0].code, "before ");
        assert_eq!(lines[1].code, " after");
        assert_eq!(lines[1].comment, "y ");
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let lines = code_of("fn f<'a>(x: &'a str) -> char { 'x' }");
        // The lifetime survives; the char literal contents are blanked.
        assert!(lines[0].contains("'a>"));
        assert!(lines[0].contains("' '"));
        let esc = code_of(r"let c = '\n'; let d = b'\'';");
        assert!(!esc[0].contains('n'), "{}", esc[0]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let lines = code_of(r#"let s = "a\"b"; let t = 1;"#);
        assert!(lines[0].contains("let t = 1;"));
    }

    #[test]
    fn multi_line_string_blanks_all_lines() {
        let lines = code_of("let s = \"first\nsecond\"; done();");
        assert!(!lines[0].contains("first"));
        assert!(!lines[1].contains("second"));
        assert!(lines[1].contains("done();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let lines = code_of("for x in 0..3 { var\"\"; }");
        // `var` kept; the empty string after it lexes as a string.
        assert!(lines[0].contains("var\"\""));
    }
}
