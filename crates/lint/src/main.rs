//! CLI for `gaasx-lint`.
//!
//! ```text
//! gaasx-lint [ROOT] [--json]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: gaasx-lint [ROOT] [--json]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("gaasx-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => {
                if root.is_some() {
                    eprintln!("gaasx-lint: more than one ROOT given");
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(other));
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    match gaasx_lint::run_lint(&root) {
        Ok(report) => {
            if json {
                println!("{}", gaasx_lint::json::to_json(&report));
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("gaasx-lint: {err}");
            ExitCode::from(2)
        }
    }
}
