//! CLI for `gaasx-lint`.
//!
//! ```text
//! gaasx-lint [ROOT] [--json] [--baseline FILE]
//! ```
//!
//! `--baseline FILE` compares this run's per-rule suppression counts
//! against a committed snapshot (itself produced with `--json`) and fails
//! when any rule's suppression debt *grew* — a one-way ratchet: paying
//! debt down never requires touching the baseline, adding debt does, and
//! the diff review is the approval gate.
//!
//! Exit codes: `0` clean, `1` findings or ratchet violations, `2` usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use gaasx_lint::LintReport;

/// Checks the ratchet; returns violation lines (empty = pass).
fn baseline_violations(report: &LintReport, baseline: &LintReport) -> Vec<String> {
    let mut out = Vec::new();
    for r in &report.rules {
        let allowed = baseline.suppressed_for(&r.rule);
        if r.suppressed > allowed {
            out.push(format!(
                "rule `{}`: {} suppression(s) exceed the committed baseline of {} \
                 (pay down a suppression or update results/lint_baseline.json in review)",
                r.rule, r.suppressed, allowed
            ));
        }
    }
    out
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--baseline" => {
                let Some(path) = args.next() else {
                    eprintln!("gaasx-lint: --baseline needs a FILE argument");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("usage: gaasx-lint [ROOT] [--json] [--baseline FILE]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("gaasx-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => {
                if root.is_some() {
                    eprintln!("gaasx-lint: more than one ROOT given");
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(other));
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let report = match gaasx_lint::run_lint(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("gaasx-lint: {err}");
            return ExitCode::from(2);
        }
    };

    let mut ratchet_failed = false;
    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))
            .and_then(|text| gaasx_lint::json::from_json(&text));
        match baseline {
            Ok(baseline) => {
                for violation in baseline_violations(&report, &baseline) {
                    eprintln!("gaasx-lint: {violation}");
                    ratchet_failed = true;
                }
            }
            Err(err) => {
                eprintln!("gaasx-lint: baseline: {err}");
                return ExitCode::from(2);
            }
        }
    }

    if json {
        println!("{}", gaasx_lint::json::to_json(&report));
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() && !ratchet_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
