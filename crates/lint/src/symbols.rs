//! Cross-file symbol table: per-crate function definitions with parsed
//! signatures and body ranges, plus unit-of-measure inference.
//!
//! This is the first of the two multi-pass foundations (the other is
//! [`crate::callgraph`]): one scan over the lexed workspace recovers
//! every `fn` item — name, visibility, parameter list, return type, and
//! the 0-based body line range — keyed by the crate the file belongs to.
//! The unit model is deliberately small: the five measures the accounting
//! ledger actually mixes up when it goes wrong.
//!
//! Everything here runs on the blanked *code view* from [`crate::lexer`],
//! so string contents and comments cannot fake a definition.

use std::collections::BTreeMap;

use crate::lexer::is_ident_char;
use crate::source::{SourceFile, Workspace};

/// A unit of measure inferred from naming conventions or declared types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Modeled time in nanoseconds (`_ns`, `Nanos`).
    Nanos,
    /// Per-op energy in picojoules (`_pj`, `Picojoules`).
    Picojoules,
    /// Aggregated energy in nanojoules (`_nj`, `Nanojoules`).
    Nanojoules,
    /// Dimensionless event/op counters (`_ops`, `_count`, `_searches`, …).
    Count,
    /// Dimensionless ratios and scale factors (`_ratio`, `_frac`, …).
    Ratio,
}

impl Unit {
    /// Short display name used in findings.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Nanos => "ns",
            Unit::Picojoules => "pJ",
            Unit::Nanojoules => "nJ",
            Unit::Count => "count",
            Unit::Ratio => "ratio",
        }
    }

    /// Whether two units may legally meet under `+`/`-`/comparison.
    pub fn compatible(self, other: Unit) -> bool {
        self == other
    }
}

/// Identifier suffixes that *declare* a unit by convention.
const COUNT_SUFFIXES: &[&str] = &[
    "ops",
    "op",
    "count",
    "counts",
    "searches",
    "reads",
    "writes",
    "items",
    "accesses",
    "edges",
    "rows",
    "cols",
    "len",
    "iters",
    "iterations",
    "hits",
    "misses",
    "lookups",
    "events",
    "spans",
];
const RATIO_SUFFIXES: &[&str] = &[
    "ratio",
    "frac",
    "fraction",
    "share",
    "pct",
    "scale",
    "factor",
    "util",
    "efficiency",
];

/// Suffixes that carry *some* explicit physical unit outside the modeled
/// five — enough for a signature to be unambiguous even though the lint
/// does not track the dimension (bandwidths, powers, sizes, frequencies).
const OTHER_UNIT_SUFFIXES: &[&str] = &[
    "gbps", "mw", "w", "watts", "ghz", "hz", "bytes", "bits", "s", "secs", "us", "ms", "kb", "mb",
    "volts", "mv", "gflops",
];

/// The trailing `_`-separated segment of an identifier (or the whole
/// identifier when it has no `_`).
fn suffix(name: &str) -> &str {
    name.rsplit('_').next().unwrap_or(name)
}

/// Infers a unit from an identifier's suffix convention (`elapsed_ns`,
/// `mac_op_pj`, `cam_searches`, `overlap_ratio`, …).
pub fn unit_of_ident(name: &str) -> Option<Unit> {
    let sfx = suffix(name);
    match sfx {
        "ns" => Some(Unit::Nanos),
        "pj" => Some(Unit::Picojoules),
        "nj" => Some(Unit::Nanojoules),
        _ if COUNT_SUFFIXES.contains(&sfx) => Some(Unit::Count),
        _ if RATIO_SUFFIXES.contains(&sfx) => Some(Unit::Ratio),
        _ => None,
    }
}

/// Whether an identifier's suffix names *any* recognized physical unit —
/// the five modeled ones or the wider explicit set (`_gbps`, `_mw`, …).
pub fn has_declared_unit(name: &str) -> bool {
    unit_of_ident(name).is_some() || OTHER_UNIT_SUFFIXES.contains(&suffix(name))
}

/// Infers a unit from a declared Rust type (after stripping references
/// and one layer of `Vec<…>`/`[…]` containers).
pub fn unit_of_type(ty: &str) -> Option<Unit> {
    let mut t = ty.trim();
    loop {
        if let Some(rest) = t.strip_prefix('&') {
            t = rest
                .trim_start()
                .strip_prefix("mut ")
                .unwrap_or(rest)
                .trim();
        } else if let Some(rest) = t.strip_prefix('[') {
            t = rest.trim_start();
        } else if let Some(rest) = t.strip_prefix("Vec<") {
            t = rest.trim_start();
        } else if let Some(rest) = t.strip_prefix("gaasx_sim::") {
            t = rest;
        } else {
            break;
        }
    }
    let head: String = t.chars().take_while(|&c| is_ident_char(c)).collect();
    match head.as_str() {
        "Nanos" => Some(Unit::Nanos),
        "Picojoules" => Some(Unit::Picojoules),
        "Nanojoules" => Some(Unit::Nanojoules),
        _ => None,
    }
}

/// One function parameter: pattern name and the raw type text.
#[derive(Debug, Clone)]
pub struct Param {
    /// The bound name (last identifier of the pattern; `_` stays `_`).
    pub name: String,
    /// Raw (trimmed) type text, e.g. `f64`, `&mut Nanos`.
    pub ty: String,
}

/// One `fn` item recovered from the lexical scan.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item carries a `pub` visibility (any variant).
    pub is_pub: bool,
    /// Declared parameters (excluding `self` receivers).
    pub params: Vec<Param>,
    /// Raw return-type text (empty for `()`).
    pub ret: String,
    /// 0-based inclusive body line range; `None` for bodyless trait decls.
    pub body: Option<(usize, usize)>,
}

impl FnDef {
    /// The unit a parameter carries, from its declared type first and its
    /// name suffix second.
    pub fn param_unit(p: &Param) -> Option<Unit> {
        unit_of_type(&p.ty).or_else(|| unit_of_ident(&p.name))
    }
}

/// Per-crate symbol table over a workspace.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every recovered function, in scan order.
    pub fns: Vec<FnDef>,
    /// `crate name → fn name → indices into fns`.
    pub by_crate: BTreeMap<String, BTreeMap<String, Vec<usize>>>,
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…` →
/// `<name>`; anything else shares the `<root>` pseudo-crate).
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("<root>")
}

impl SymbolTable {
    /// Builds the table from every scanned file.
    pub fn build(ws: &Workspace) -> Self {
        let mut table = SymbolTable::default();
        for (fi, file) in ws.files.iter().enumerate() {
            let start = table.fns.len();
            extract_fns(file, fi, &mut table.fns);
            let crate_name = crate_of(&file.path).to_string();
            let per_crate = table.by_crate.entry(crate_name).or_default();
            for idx in start..table.fns.len() {
                per_crate
                    .entry(table.fns[idx].name.clone())
                    .or_default()
                    .push(idx);
            }
        }
        table
    }

    /// All definitions of `name` within `crate_name`.
    pub fn resolve(&self, crate_name: &str, name: &str) -> &[usize] {
        self.by_crate
            .get(crate_name)
            .and_then(|m| m.get(name))
            .map_or(&[], Vec::as_slice)
    }
}

/// States of the per-file `fn` extractor.
enum ScanState {
    /// Looking for the `fn` keyword.
    Idle,
    /// Saw `fn`; the next identifier names the function.
    Armed { is_pub: bool },
    /// Collecting signature text until the body `{` or a `;`.
    InSig {
        def: FnDef,
        sig: String,
        paren_depth: i64,
    },
}

fn extract_fns(file: &SourceFile, file_idx: usize, out: &mut Vec<FnDef>) {
    let mut state = ScanState::Idle;
    let mut depth: i64 = 0;
    // Open bodies: (depth at `{`, index into `out`).
    let mut open: Vec<(i64, usize)> = Vec::new();

    for (li, line) in file.lines.iter().enumerate() {
        let bytes = line.code.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                let word = &line.code[start..i];
                match &mut state {
                    ScanState::Idle => {
                        if word == "fn" {
                            // `fn` as a pointer type (`fn(u32) -> u32`) is
                            // followed by `(`, not a name; peek ahead.
                            let next = line.code[i..].trim_start().chars().next();
                            if !matches!(next, Some(n) if !n.is_ascii_alphabetic() && n != '_') {
                                let is_pub = line.code[..start].contains("pub");
                                state = ScanState::Armed { is_pub };
                            }
                        }
                    }
                    ScanState::Armed { is_pub } => {
                        state = ScanState::InSig {
                            def: FnDef {
                                name: word.to_string(),
                                file: file_idx,
                                line: li,
                                is_pub: *is_pub,
                                params: Vec::new(),
                                ret: String::new(),
                                body: None,
                            },
                            sig: String::new(),
                            paren_depth: 0,
                        };
                    }
                    ScanState::InSig { sig, .. } => sig.push_str(word),
                }
            } else {
                match &mut state {
                    ScanState::InSig {
                        def,
                        sig,
                        paren_depth,
                    } => match c {
                        '(' => {
                            *paren_depth += 1;
                            sig.push(c);
                        }
                        ')' => {
                            *paren_depth -= 1;
                            sig.push(c);
                        }
                        '{' if *paren_depth == 0 => {
                            let mut finished = match std::mem::replace(&mut state, ScanState::Idle)
                            {
                                ScanState::InSig { def, sig, .. } => finish_signature(def, &sig),
                                _ => unreachable!(),
                            };
                            finished.body = Some((li, li));
                            open.push((depth, out.len()));
                            out.push(finished);
                            depth += 1;
                        }
                        ';' if *paren_depth == 0 => {
                            // Bodyless trait declaration.
                            let finished = match std::mem::replace(&mut state, ScanState::Idle) {
                                ScanState::InSig { def, sig, .. } => finish_signature(def, &sig),
                                _ => unreachable!(),
                            };
                            out.push(finished);
                        }
                        _ => {
                            let _ = def;
                            sig.push(c);
                        }
                    },
                    _ => match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            while let Some(&(d, idx)) = open.last() {
                                if d < depth {
                                    break;
                                }
                                open.pop();
                                if let Some((_, end)) = &mut out[idx].body {
                                    *end = li;
                                }
                            }
                        }
                        _ => {}
                    },
                }
                i += 1;
            }
        }
    }
}

/// Parses the collected signature text (`<generics>(params) -> Ret`) into
/// the def's `params`/`ret` fields.
fn finish_signature(mut def: FnDef, sig: &str) -> FnDef {
    // Find the parameter parens: the first `(` at angle-bracket depth 0
    // (generic bounds like `<F: Fn(u32)>` hide parens inside `<…>`).
    let mut angle = 0i64;
    let mut open = None;
    for (i, c) in sig.char_indices() {
        match c {
            '<' => angle += 1,
            '>' if angle > 0 => angle -= 1,
            '(' if angle == 0 => {
                open = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = open else {
        return def;
    };
    // Matching close paren.
    let mut depth = 0i64;
    let mut close = sig.len();
    for (i, c) in sig[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = open + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let params_text = &sig[open + 1..close.min(sig.len())];
    def.params = split_params(params_text);
    let tail = sig[close.min(sig.len())..].trim_start_matches(')').trim();
    def.ret = tail.strip_prefix("->").unwrap_or("").trim().to_string();
    def
}

/// Splits a parameter list on top-level commas and parses `pat: Type`
/// pairs, skipping `self` receivers.
fn split_params(text: &str) -> Vec<Param> {
    let mut params = Vec::new();
    let mut nest = 0i64;
    let mut seg = String::new();
    for c in text.chars().chain(std::iter::once(',')) {
        match c {
            '<' | '(' | '[' => nest += 1,
            '>' | ')' | ']' => nest -= 1,
            ',' if nest == 0 => {
                if let Some(p) = parse_param(&seg) {
                    params.push(p);
                }
                seg.clear();
                continue;
            }
            _ => {}
        }
        seg.push(c);
    }
    params
}

fn parse_param(seg: &str) -> Option<Param> {
    let seg = seg.trim();
    if seg.is_empty() {
        return None;
    }
    let (pat, ty) = seg.split_once(':')?;
    let name = pat
        .split(|c: char| !is_ident_char(c))
        .rfind(|w| !w.is_empty() && *w != "mut" && *w != "ref")?
        .to_string();
    if name == "self" {
        return None;
    }
    Some(Param {
        name,
        ty: ty.trim().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::analyze_file;

    fn table_of(path: &str, src: &str) -> SymbolTable {
        let ws = Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![analyze_file(path, src, &["directive"])],
        };
        SymbolTable::build(&ws)
    }

    #[test]
    fn suffix_units_resolve() {
        assert_eq!(unit_of_ident("elapsed_ns"), Some(Unit::Nanos));
        assert_eq!(unit_of_ident("mac_op_pj"), Some(Unit::Picojoules));
        assert_eq!(unit_of_ident("write_nj"), Some(Unit::Nanojoules));
        assert_eq!(unit_of_ident("cam_searches"), Some(Unit::Count));
        assert_eq!(unit_of_ident("overlap_ratio"), Some(Unit::Ratio));
        assert_eq!(unit_of_ident("damping"), None);
        assert!(has_declared_unit("stream_bandwidth_gbps"));
        assert!(!has_declared_unit("threshold"));
    }

    #[test]
    fn type_units_resolve_through_containers() {
        assert_eq!(unit_of_type("Nanos"), Some(Unit::Nanos));
        assert_eq!(unit_of_type("&mut Nanojoules"), Some(Unit::Nanojoules));
        assert_eq!(unit_of_type("[Nanos; 7]"), Some(Unit::Nanos));
        assert_eq!(unit_of_type("Vec<Picojoules>"), Some(Unit::Picojoules));
        assert_eq!(unit_of_type("f64"), None);
    }

    #[test]
    fn extracts_fn_signatures_and_bodies() {
        let src = "\
pub fn bill(&self, elapsed_ns: Nanos, scale: f64) -> Nanojoules {
    inner(elapsed_ns)
}
fn inner(t: Nanos) -> Nanojoules {
    Nanojoules::ZERO
}
trait T {
    fn decl(&self, x: u64);
}
";
        let t = table_of("crates/sim/src/cost.rs", src);
        assert_eq!(t.fns.len(), 3);
        let bill = &t.fns[0];
        assert_eq!(bill.name, "bill");
        assert!(bill.is_pub);
        assert_eq!(bill.params.len(), 2);
        assert_eq!(bill.params[0].name, "elapsed_ns");
        assert_eq!(bill.params[0].ty, "Nanos");
        assert_eq!(bill.ret, "Nanojoules");
        assert_eq!(bill.body, Some((0, 2)));
        let inner = &t.fns[1];
        assert_eq!(inner.body, Some((3, 5)));
        let decl = &t.fns[2];
        assert_eq!(decl.name, "decl");
        assert!(decl.body.is_none());
        assert_eq!(t.resolve("sim", "inner").len(), 1);
        assert!(t.resolve("sim", "absent").is_empty());
    }

    #[test]
    fn multi_line_signatures_parse() {
        let src = "\
pub fn report(
    &self,
    engine: &str,
    elapsed_ns: Nanos,
) -> RunReport {
    todo()
}
";
        let t = table_of("crates/baselines/src/power.rs", src);
        assert_eq!(t.fns.len(), 1);
        let f = &t.fns[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].name, "elapsed_ns");
        assert_eq!(FnDef::param_unit(&f.params[1]), Some(Unit::Nanos));
        assert_eq!(f.body, Some((4, 6)));
    }

    #[test]
    fn fn_pointer_types_are_not_defs() {
        let src = "pub fn apply(f: fn(u32) -> u32) -> u32 {\n    f(3)\n}\n";
        let t = table_of("crates/sim/src/x.rs", src);
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "apply");
    }

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/sim/src/report.rs"), "sim");
        assert_eq!(crate_of("src/main.rs"), "<root>");
    }
}
