//! The eight repo-specific rules, each encoding a shipped or near-miss bug.
//!
//! | rule | historical bug |
//! |------|----------------|
//! | `no-stat-wipe` | `preset_mac` called `reset_stats()` mid-run, wiping MAC counters |
//! | `unchecked-accounting` | `u64` cycle/energy accumulators overflowed and panicked |
//! | `alloc-in-hot` | per-MAC `Vec` allocation in the CAM/MAC dispatch loop (the since-removed allocating `HitVector::chunks`) |
//! | `panic-in-lib` | library panics abort whole sharded runs |
//! | `summary-conservation` | an `OpSummary` counter was added without energy wiring |
//! | `thread-containment` | ad-hoc threading outside the sharded merge discipline |
//! | `seeded-rng` | OS-entropy RNGs make noise/fault runs unreproducible |
//! | `wall-clock` | a host `Instant::now()` leaked into modeled-time cost code |

use std::collections::BTreeSet;

use crate::findings::{Finding, LintReport};
use crate::lexer::is_ident_char;
use crate::source::{FileKind, SourceFile, Workspace};

/// Every rule id, including the unsuppressible `directive` meta-rule.
pub const RULE_NAMES: &[&str] = &[
    "no-stat-wipe",
    "unchecked-accounting",
    "alloc-in-hot",
    "panic-in-lib",
    "summary-conservation",
    "thread-containment",
    "seeded-rng",
    "wall-clock",
    "mixed-units",
    "unit-ambiguous-sig",
    "unit-cast",
    "hot-reachable-alloc",
    "hot-reachable-panic",
    "unbounded-queue",
    "directive",
];

/// Runs every rule over the workspace, applies suppressions, and returns
/// the sorted report.
pub fn check_workspace(ws: &Workspace) -> LintReport {
    let mut findings: Vec<Finding> = Vec::new();
    // Directive findings are never suppressible: a broken suppression must
    // not be able to hide itself.
    for file in &ws.files {
        findings.extend(file.directive_findings.iter().cloned());
    }

    let mut candidates = Vec::new();
    no_stat_wipe(ws, &mut candidates);
    unchecked_accounting(ws, &mut candidates);
    alloc_in_hot(ws, &mut candidates);
    panic_in_lib(ws, &mut candidates);
    summary_conservation(ws, &mut candidates);
    thread_containment(ws, &mut candidates);
    seeded_rng(ws, &mut candidates);
    wall_clock(ws, &mut candidates);
    unbounded_queue(ws, &mut candidates);

    // Multi-pass analyses: one symbol table + hot closure shared by the
    // unit-of-measure and hot-reachability rules.
    let symbols = crate::symbols::SymbolTable::build(ws);
    let hot = crate::callgraph::HotSet::compute(ws, &symbols);
    crate::units_pass::mixed_units(ws, &symbols, &mut candidates);
    crate::units_pass::unit_ambiguous_sig(ws, &symbols, &mut candidates);
    crate::units_pass::unit_cast(ws, &mut candidates);
    crate::hot_pass::hot_reachable_alloc(ws, &symbols, &hot, &mut candidates);
    crate::hot_pass::hot_reachable_panic(ws, &symbols, &hot, &mut candidates);

    let mut suppressed = 0usize;
    let mut suppressed_by_rule: Vec<usize> = vec![0; RULE_NAMES.len()];
    let rule_slot = |rule: &str| RULE_NAMES.iter().position(|r| *r == rule);
    for finding in candidates {
        let silenced = ws
            .file(&finding.path)
            .is_some_and(|f| finding.line > 0 && f.is_suppressed(finding.line - 1, &finding.rule));
        if silenced {
            suppressed += 1;
            if let Some(slot) = rule_slot(&finding.rule) {
                suppressed_by_rule[slot] += 1;
            }
        } else {
            findings.push(finding);
        }
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });
    findings.dedup();

    let rules = RULE_NAMES
        .iter()
        .enumerate()
        .map(|(slot, rule)| crate::findings::RuleCount {
            rule: (*rule).to_string(),
            findings: findings.iter().filter(|f| f.rule == *rule).count(),
            suppressed: suppressed_by_rule[slot],
        })
        .collect();

    LintReport {
        findings,
        files_scanned: ws.files.len(),
        suppressed,
        rules,
    }
}

// --- token scanning helpers ---------------------------------------------

/// One identifier token with enough context for the rules: location,
/// enclosing function, and whether it is the name in a `fn` definition.
struct IdentTok {
    /// 0-based line index.
    line: usize,
    /// Byte offset of the identifier within the code view.
    col: usize,
    /// Identifier length in bytes.
    len: usize,
    /// Name of the innermost enclosing `fn`, if any.
    fn_name: Option<String>,
    /// Whether the previous identifier was `fn` (this token names a fn).
    is_fn_def: bool,
}

impl IdentTok {
    fn name<'a>(&self, file: &'a SourceFile) -> &'a str {
        &file.lines[self.line].code[self.col..self.col + self.len]
    }

    /// The char immediately before the identifier, if any.
    fn prev_char(&self, file: &SourceFile) -> Option<char> {
        file.lines[self.line].code[..self.col].chars().next_back()
    }

    /// The rest of the line after the identifier.
    fn tail<'a>(&self, file: &'a SourceFile) -> &'a str {
        &file.lines[self.line].code[self.col + self.len..]
    }
}

/// Walks a file's code view char-by-char, producing identifier tokens and
/// tracking the enclosing-function stack via brace depth.
fn scan_idents(file: &SourceFile) -> Vec<IdentTok> {
    let mut toks = Vec::new();
    let mut depth: i64 = 0;
    let mut fn_stack: Vec<(i64, String)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut prev_was_fn = false;
    for (li, line) in file.lines.iter().enumerate() {
        let bytes = line.code.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                let name = &line.code[start..i];
                let is_fn_def = prev_was_fn;
                if prev_was_fn {
                    pending_fn = Some(name.to_string());
                    prev_was_fn = false;
                } else if name == "fn" {
                    prev_was_fn = true;
                }
                toks.push(IdentTok {
                    line: li,
                    col: start,
                    len: i - start,
                    fn_name: fn_stack.last().map(|(_, n)| n.clone()),
                    is_fn_def,
                });
            } else {
                match c {
                    '{' => {
                        if let Some(name) = pending_fn.take() {
                            fn_stack.push((depth, name));
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        while fn_stack.last().is_some_and(|&(d, _)| d >= depth) {
                            fn_stack.pop();
                        }
                    }
                    // A `;` ends a bodyless fn declaration (trait method).
                    ';' => pending_fn = None,
                    _ => {}
                }
                i += 1;
            }
        }
    }
    toks
}

/// First non-space char of `tail`, with its offset.
fn first_nonspace(tail: &str) -> Option<(usize, char)> {
    tail.char_indices().find(|&(_, c)| c != ' ')
}

/// Whether `tail` (text after an identifier) begins with an `as` cast —
/// used to exempt `counter as f64 * energy` style float math.
fn tail_is_cast(tail: &str) -> bool {
    let trimmed = tail.trim_start();
    trimmed.starts_with("as ") || trimmed.starts_with("as(")
}

/// Finds every occurrence of `needle` in `hay` that is not glued to a
/// preceding identifier char (so `Vec::new` does not match `MyVec::new`).
/// Needles that start with punctuation (`.collect::<Vec`) skip the check —
/// an identifier is *expected* right before them.
fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(needle) {
        let pos = from + rel;
        let glued = needle.chars().next().is_some_and(is_ident_char)
            && hay[..pos].chars().next_back().is_some_and(is_ident_char);
        if !glued {
            out.push(pos);
        }
        from = pos + needle.len().max(1);
    }
    out
}

// --- rule 1: no-stat-wipe -----------------------------------------------

/// Fn names allowed to call `reset_stats()`: construction and explicit
/// reset/setup paths, never steady-state op methods.
fn allowed_reset_site(fn_name: &str) -> bool {
    // `reset`/`setup` must match as whole name segments: `preset_mac`
    // (the historical bug site) contains the substring "reset" but is an
    // op method, not a reset path.
    let segment = |word: &str| {
        fn_name == word
            || fn_name.starts_with(&format!("{word}_"))
            || fn_name.ends_with(&format!("_{word}"))
            || fn_name.contains(&format!("_{word}_"))
    };
    fn_name == "new"
        || fn_name == "default"
        || fn_name.starts_with("new_")
        || fn_name.starts_with("with_")
        || segment("reset")
        || segment("setup")
        || segment("bench")
}

fn no_stat_wipe(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.kind != FileKind::Lib {
            continue;
        }
        for tok in scan_idents(file) {
            if file.in_test[tok.line] || tok.is_fn_def || tok.name(file) != "reset_stats" {
                continue;
            }
            if first_nonspace(tok.tail(file)).map(|(_, c)| c) != Some('(') {
                continue;
            }
            let site = tok.fn_name.as_deref().unwrap_or("<module scope>");
            if !allowed_reset_site(site) {
                out.push(Finding::new(
                    "no-stat-wipe",
                    &file.path,
                    tok.line + 1,
                    &format!(
                        "`reset_stats()` called from `{site}` — stats may only be wiped in \
                         constructors or explicit reset/setup paths, never mid-operation"
                    ),
                ));
            }
        }
    }
}

// --- rule 2: unchecked-accounting ---------------------------------------

/// Whether `path` is on the accounting-critical list: the engine cost
/// model, the SFU counters, and the whole `crates/sim` cost path.
fn accounting_scoped(path: &str) -> bool {
    path == "crates/core/src/engine.rs"
        || path == "crates/core/src/sfu.rs"
        || path.starts_with("crates/sim/src/")
}

/// Accumulator-width integer types whose bare arithmetic is banned.
const ACC_TYPES: &[&str] = &["u64", "u128", "i64", "i128"];

/// Whether `tail` (the text after an identifier) is a `: u64`-style
/// annotation with an accumulator-width type (`u64`, `[u64; N]`,
/// `Vec<u64>`, …).
fn is_acc_annotation(tail: &str) -> bool {
    let Some((off, c)) = first_nonspace(tail) else {
        return false;
    };
    if c != ':' || tail[off..].starts_with("::") {
        return false;
    }
    let ty = tail[off + 1..].trim_start();
    ACC_TYPES.iter().any(|t| {
        let bare_type = |s: &str| {
            s.strip_prefix(t)
                .is_some_and(|rest| !rest.chars().next().is_some_and(is_ident_char))
        };
        bare_type(ty)
            || ty
                .strip_prefix('[')
                .map(str::trim_start)
                .is_some_and(&bare_type)
            || ty.strip_prefix("Vec<").is_some_and(&bare_type)
    })
}

/// Names declared with an accumulator-width integer type. Struct fields
/// and annotated lets are collected file-wide; fn params are scoped to
/// their function, so `add(a: f64, ..)` and `add_u64(a: u64, ..)` in the
/// same file do not cross-contaminate.
#[derive(Default)]
struct Accumulators {
    file_wide: BTreeSet<String>,
    per_fn: std::collections::BTreeMap<String, BTreeSet<String>>,
}

impl Accumulators {
    fn is_acc(&self, name: &str, fn_name: Option<&str>) -> bool {
        self.file_wide.contains(name)
            || fn_name
                .and_then(|f| self.per_fn.get(f))
                .is_some_and(|params| params.contains(name))
    }
}

fn collect_accumulators(file: &SourceFile) -> Accumulators {
    let mut acc = Accumulators::default();
    let mut prev_was_fn = false;
    // The fn whose signature parens we are inside, and the paren depth.
    let mut sig_fn: Option<String> = None;
    let mut sig_paren: i64 = 0;
    for line in &file.lines {
        let bytes = line.code.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                let name = line.code[start..i].to_string();
                if prev_was_fn {
                    sig_fn = Some(name.clone());
                    sig_paren = 0;
                    prev_was_fn = false;
                } else if name == "fn" {
                    prev_was_fn = true;
                }
                if is_acc_annotation(&line.code[i..]) {
                    match (&sig_fn, sig_paren > 0) {
                        (Some(f), true) => {
                            acc.per_fn.entry(f.clone()).or_default().insert(name);
                        }
                        _ => {
                            acc.file_wide.insert(name);
                        }
                    }
                }
            } else {
                match c {
                    '(' if sig_fn.is_some() => sig_paren += 1,
                    ')' if sig_fn.is_some() => {
                        sig_paren -= 1;
                        if sig_paren <= 0 {
                            sig_fn = None; // params done; return type follows
                        }
                    }
                    '{' | ';' => sig_fn = None,
                    _ => {}
                }
                i += 1;
            }
        }
    }
    acc
}

/// Scans leftward from `pos` in `code` to find the assigned name of a
/// compound assignment, skipping one trailing index/call group
/// (`self.counts[i] +=` resolves to `counts`).
fn compound_target(code: &str, pos: usize) -> Option<String> {
    let mut rest = code[..pos].trim_end();
    for (open, close) in [('[', ']'), ('(', ')')] {
        if rest.ends_with(close) {
            let mut depth = 0i32;
            let mut cut = None;
            for (i, c) in rest.char_indices().rev() {
                if c == close {
                    depth += 1;
                } else if c == open {
                    depth -= 1;
                    if depth == 0 {
                        cut = Some(i);
                        break;
                    }
                }
            }
            rest = rest[..cut?].trim_end();
        }
    }
    let end = rest.len();
    let start = rest
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident_char(c))
        .last()
        .map(|(i, _)| i)?;
    if start == end {
        return None;
    }
    Some(rest[start..end].to_string())
}

fn unchecked_accounting(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if !accounting_scoped(&file.path) {
            continue;
        }
        let accumulators = collect_accumulators(file);
        if accumulators.file_wide.is_empty() && accumulators.per_fn.is_empty() {
            continue;
        }
        let toks = scan_idents(file);
        let mut hits: BTreeSet<(usize, usize)> = BTreeSet::new();
        // Pass A: compound assignments (`+=`, `*=`), resolved leftward so
        // indexed targets (`counts[i] +=`) are caught too.
        for (li, line) in file.lines.iter().enumerate() {
            if file.in_test[li] {
                continue;
            }
            for op in ["+=", "*="] {
                for pos in token_positions(&line.code, op) {
                    if let Some(target) = compound_target(&line.code, pos) {
                        // The target ident is a token on this line; use
                        // its enclosing fn for param scoping.
                        let fn_name = toks
                            .iter()
                            .find(|t| t.line == li && t.name(file) == target)
                            .and_then(|t| t.fn_name.clone());
                        if accumulators.is_acc(&target, fn_name.as_deref()) {
                            hits.insert((li, pos));
                            out.push(Finding::new(
                                "unchecked-accounting",
                                &file.path,
                                li + 1,
                                &format!(
                                    "bare `{op}` on accumulator `{target}` — use \
                                     `saturating_*`/`checked_*` arithmetic on cost counters"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        // Pass B: binary `+`/`*` whose left operand is an accumulator
        // (`self.adds + self.muls`), unless cast to float first.
        for tok in &toks {
            if file.in_test[tok.line]
                || !accumulators.is_acc(tok.name(file), tok.fn_name.as_deref())
            {
                continue;
            }
            let tail = tok.tail(file);
            if tail_is_cast(tail) {
                continue;
            }
            let Some((off, c)) = first_nonspace(tail) else {
                continue;
            };
            if c != '+' && c != '*' {
                continue;
            }
            let op_pos = tok.col + tok.len + off;
            if hits.contains(&(tok.line, op_pos)) {
                continue; // already reported as a compound assignment
            }
            hits.insert((tok.line, op_pos));
            out.push(Finding::new(
                "unchecked-accounting",
                &file.path,
                tok.line + 1,
                &format!(
                    "bare `{c}` on accumulator `{}` — use `saturating_*`/`checked_*` \
                     arithmetic on cost counters",
                    tok.name(file)
                ),
            ));
        }
    }
}

// --- rule 3: alloc-in-hot -----------------------------------------------

fn alloc_in_hot(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        for (li, line) in file.lines.iter().enumerate() {
            if !file.hot[li] || file.in_test[li] {
                continue;
            }
            for needle in ["Vec::new(", "vec![", ".collect::<Vec"] {
                if !token_positions(&line.code, needle).is_empty() {
                    out.push(Finding::new(
                        "alloc-in-hot",
                        &file.path,
                        li + 1,
                        &format!(
                            "`{needle}` inside a `gaasx-lint: hot` fence — hoist the \
                                  allocation out of the CAM-search/MAC dispatch loop"
                        ),
                    ));
                }
            }
        }
    }
}

// --- rule 4: panic-in-lib -----------------------------------------------

fn panic_in_lib(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.kind != FileKind::Lib {
            continue;
        }
        for tok in scan_idents(file) {
            if file.in_test[tok.line] || tok.is_fn_def {
                continue;
            }
            let name = tok.name(file);
            let tail = tok.tail(file);
            let flagged = match name {
                "unwrap" => tok.prev_char(file) == Some('.') && tail.starts_with('('),
                "expect" => tok.prev_char(file) == Some('.') && tail.starts_with('('),
                "panic" => tail.starts_with('!'),
                _ => false,
            };
            if flagged {
                let what = if name == "panic" { "panic!" } else { name };
                out.push(Finding::new(
                    "panic-in-lib",
                    &file.path,
                    tok.line + 1,
                    &format!(
                        "`{what}` in library code — return a `Result`/`Option` or justify \
                         with an allow (library panics abort whole sharded runs)"
                    ),
                ));
            }
        }
    }
}

// --- rule 7: seeded-rng ---------------------------------------------------

/// Noise and fault injection are only useful if a failing run replays
/// bit-for-bit from its config. An RNG constructed from OS entropy
/// (`from_entropy`, `thread_rng`) anywhere in library code silently breaks
/// that contract, so every library RNG must come from an explicit seed
/// (`seed_from_u64`, `from_seed`).
fn seeded_rng(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.kind != FileKind::Lib {
            continue;
        }
        for tok in scan_idents(file) {
            if file.in_test[tok.line] || tok.is_fn_def {
                continue;
            }
            let name = tok.name(file);
            let flagged =
                matches!(name, "from_entropy" | "thread_rng") && tok.tail(file).starts_with('(');
            if flagged {
                out.push(Finding::new(
                    "seeded-rng",
                    &file.path,
                    tok.line + 1,
                    &format!(
                        "`{name}` draws OS entropy in library code — construct RNGs from \
                         an explicit seed (`seed_from_u64`) so noisy and faulty runs \
                         replay bit-for-bit"
                    ),
                ));
            }
        }
    }
}

// --- rule 8: wall-clock ---------------------------------------------------

/// Whether `path` computes on the modeled time axis: the crossbar device
/// models and the engine layer. Reports there are nanoseconds of
/// *simulated* time; a host-clock read silently mixes the two axes and
/// breaks bit-identical sharded replay (worker wall clocks differ run to
/// run). Bench binaries measure real walls on purpose and stay exempt.
fn modeled_time_scoped(path: &str) -> bool {
    path.starts_with("crates/xbar/src/") || path.starts_with("crates/core/src/")
}

fn wall_clock(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.kind != FileKind::Lib || !modeled_time_scoped(&file.path) {
            continue;
        }
        for (li, line) in file.lines.iter().enumerate() {
            if file.in_test[li] {
                continue;
            }
            for needle in ["Instant::now", "SystemTime::now"] {
                if !token_positions(&line.code, needle).is_empty() {
                    out.push(Finding::new(
                        "wall-clock",
                        &file.path,
                        li + 1,
                        &format!(
                            "`{needle}` in modeled-time library code — cost models read the \
                             simulated clock (`BlockCost`/`PipelineClock`), never the host's; \
                             wall-clock reads break bit-identical sharded replay"
                        ),
                    ));
                }
            }
        }
    }
}

// --- rule 5: summary-conservation ---------------------------------------

/// Extracts the field names of a struct whose `struct <name> {` header is
/// at 0-based line `def_line`. Works for single- and multi-line bodies.
fn struct_fields(file: &SourceFile, def_line: usize) -> Vec<String> {
    // Gather the brace-delimited body text.
    let mut body = String::new();
    let mut depth = 0i64;
    let mut started = false;
    'outer: for line in file.lines.iter().skip(def_line) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                    if depth == 1 {
                        continue;
                    }
                }
                '}' => {
                    depth -= 1;
                    if started && depth == 0 {
                        break 'outer;
                    }
                }
                _ => {}
            }
            if started && depth >= 1 {
                body.push(c);
            }
        }
        if started {
            body.push('\n');
        }
    }
    // Split on top-level commas (commas nested in generics/tuples/arrays
    // belong to a field's type, not the field list).
    let mut fields = Vec::new();
    let mut nest = 0i64;
    let mut segment = String::new();
    for c in body.chars().chain(std::iter::once(',')) {
        match c {
            '<' | '(' | '[' | '{' => nest += 1,
            '>' | ')' | ']' | '}' => nest -= 1,
            ',' if nest == 0 => {
                if let Some(name) = field_name(&segment) {
                    fields.push(name);
                }
                segment.clear();
                continue;
            }
            _ => {}
        }
        segment.push(c);
    }
    fields
}

/// Parses `#[attr] pub name: Type` into `name`.
fn field_name(segment: &str) -> Option<String> {
    let mut decl = segment.trim();
    while let Some(rest) = decl.strip_prefix("#[") {
        decl = rest.split_once(']')?.1.trim_start();
    }
    decl = decl.strip_prefix("pub ").unwrap_or(decl).trim_start();
    let name: String = decl.chars().take_while(|&c| is_ident_char(c)).collect();
    if !name.is_empty() && decl[name.len()..].trim_start().starts_with(':') {
        Some(name)
    } else {
        None
    }
}

/// 0-based body line range of the first `fn <name>` in the file.
fn fn_body_range(file: &SourceFile, fn_name: &str) -> Option<(usize, usize)> {
    let needle = format!("fn {fn_name}");
    let start = file.lines.iter().position(|l| {
        token_positions(&l.code, &needle).iter().any(|&p| {
            !l.code[p + needle.len()..]
                .chars()
                .next()
                .is_some_and(is_ident_char)
        })
    })?;
    let mut depth = 0i64;
    let mut started = false;
    for (li, line) in file.lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth <= 0 {
            return Some((start, li));
        }
    }
    Some((start, file.lines.len().saturating_sub(1)))
}

/// Whether `ident` appears as a whole token anywhere in `lines[range]`.
fn range_mentions(file: &SourceFile, range: (usize, usize), ident: &str) -> bool {
    file.lines[range.0..=range.1].iter().any(|l| {
        token_positions(&l.code, ident).iter().any(|&p| {
            !l.code[p + ident.len()..]
                .chars()
                .next()
                .is_some_and(is_ident_char)
        })
    })
}

fn summary_conservation(ws: &Workspace, out: &mut Vec<Finding>) {
    // Locate the defining file and field list.
    let mut fields: Vec<String> = Vec::new();
    for file in &ws.files {
        let Some(def_line) = file
            .lines
            .iter()
            .position(|l| l.code.contains("struct OpSummary"))
        else {
            continue;
        };
        fields = struct_fields(file, def_line);

        // (a) every field must flow through `merge` — the single site the
        // `AddAssign`/`Sum` impls delegate to.
        if let Some(range) = fn_body_range(file, "merge") {
            for field in &fields {
                if !range_mentions(file, range, field) {
                    out.push(Finding::new(
                        "summary-conservation",
                        &file.path,
                        range.0 + 1,
                        &format!(
                            "`OpSummary::merge` drops field `{field}` — every counter must \
                             survive shard merges"
                        ),
                    ));
                }
            }
        } else {
            out.push(Finding::new(
                "summary-conservation",
                &file.path,
                def_line + 1,
                "`OpSummary` has no `merge` fn for `AddAssign`/`Sum` to delegate to",
            ));
        }

        // (b) the operator impls must exist in the defining file.
        for imp in ["AddAssign", "Sum"] {
            let present = file
                .lines
                .iter()
                .any(|l| l.code.contains(imp) && l.code.contains("OpSummary"));
            if !present {
                out.push(Finding::new(
                    "summary-conservation",
                    &file.path,
                    def_line + 1,
                    &format!("`OpSummary` has no `{imp}` impl in its defining module"),
                ));
            }
        }
    }
    if fields.is_empty() {
        return; // no OpSummary in this tree — nothing to conserve
    }

    for file in &ws.files {
        let whole_file = (0usize, file.lines.len().saturating_sub(1));
        let mut first_ctor: Option<usize> = None;
        for (li, line) in file.lines.iter().enumerate() {
            let Some(at) = constructor_pos(&line.code, "OpSummary") else {
                continue;
            };
            if file.in_test[li] {
                continue;
            }
            first_ctor.get_or_insert(li);
            // (e) constructors must name every field — `..` spreads would
            // let a new counter default to zero silently.
            let mut depth = 0i64;
            let mut started = false;
            for (bi, body) in file.lines.iter().enumerate().skip(li) {
                let search_from = if bi == li { at } else { 0 };
                for c in body.code[search_from..].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            started = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if started && body.code[search_from..].contains("..") {
                    out.push(Finding::new(
                        "summary-conservation",
                        &file.path,
                        bi + 1,
                        "`OpSummary { .. }` spread hides unwired fields — name every \
                         counter explicitly",
                    ));
                }
                if started && depth <= 0 {
                    break;
                }
            }
        }
        // (c)/(d): a file that builds both the op summary and the energy
        // breakdown (or publishes summaries to observability) is an
        // energy/reporting wiring site: every counter must be mentioned
        // somewhere in it, or its cost silently reads as zero.
        let energy_ctor = file.lines.iter().enumerate().any(|(li, l)| {
            !file.in_test[li] && constructor_pos(&l.code, "EnergyBreakdown").is_some()
        });
        let publishes = file
            .lines
            .iter()
            .any(|l| l.code.contains("fn publish_op_summary"));
        let anchor = first_ctor.or_else(|| {
            file.lines
                .iter()
                .position(|l| l.code.contains("fn publish_op_summary"))
        });
        if let Some(anchor) = anchor {
            if (first_ctor.is_some() && energy_ctor) || publishes {
                for field in &fields {
                    if !range_mentions(file, whole_file, field) {
                        out.push(Finding::new(
                            "summary-conservation",
                            &file.path,
                            anchor + 1,
                            &format!(
                                "this file wires `OpSummary` into the energy/reporting model \
                                 but never mentions field `{field}`"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Detects a *constructor* use of `Type {` on a line (not a `struct`
/// definition, `impl` header, or `-> Type {` fn signature), returning the
/// offset of the type name.
fn constructor_pos(code: &str, type_name: &str) -> Option<usize> {
    for pos in token_positions(code, type_name) {
        let after = &code[pos + type_name.len()..];
        if !after.trim_start().starts_with('{') {
            continue;
        }
        let before = code[..pos].trim_end();
        let ok = before.is_empty()
            || before.ends_with('=')
            || before.ends_with('(')
            || before.ends_with(',')
            || before.ends_with(':')
            || before.ends_with('{')
            || before.ends_with("return");
        if ok {
            return Some(pos);
        }
    }
    None
}

// --- rule 6: thread-containment -----------------------------------------

/// The one file allowed to spawn: the sharded execution layer owns all
/// worker lifecycles and the deterministic merge order.
const THREAD_HOME: &str = "crates/core/src/sharded.rs";

fn thread_containment(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.path == THREAD_HOME || !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
            continue;
        }
        for (li, line) in file.lines.iter().enumerate() {
            if file.in_test[li] {
                continue;
            }
            let spawns = ["thread::spawn", "thread::scope"]
                .iter()
                .any(|n| !token_positions(&line.code, n).is_empty());
            let uses_crossbeam = token_positions(&line.code, "crossbeam").iter().any(|&p| {
                !line.code[p + "crossbeam".len()..]
                    .chars()
                    .next()
                    .is_some_and(is_ident_char)
            });
            if spawns || uses_crossbeam {
                out.push(Finding::new(
                    "thread-containment",
                    &file.path,
                    li + 1,
                    &format!(
                        "thread spawning outside `{THREAD_HOME}` — all parallelism goes \
                         through the sharded execution layer (deterministic merge order)"
                    ),
                ));
            }
        }
    }
}

// --- rule 15: unbounded-queue -------------------------------------------

/// Server code must not hold unbounded buffers: every queue in the
/// serving layer is a `BoundedQueue` so overload surfaces as a typed
/// `ServeError::Overloaded` with a retry hint instead of unbounded
/// memory growth and silent latency collapse.
fn unbounded_queue(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if !file.path.starts_with("crates/serve/")
            || !matches!(file.kind, FileKind::Lib | FileKind::Bin)
        {
            continue;
        }
        for (li, line) in file.lines.iter().enumerate() {
            if file.in_test[li] {
                continue;
            }
            for needle in [
                "VecDeque::new(",
                "channel(",
                "unbounded(",
                "LinkedList::new(",
            ] {
                if !token_positions(&line.code, needle).is_empty() {
                    out.push(Finding::new(
                        "unbounded-queue",
                        &file.path,
                        li + 1,
                        &format!(
                            "`{}` builds an unbounded buffer in server code — queue work \
                             through `BoundedQueue` so overload is shed as a typed \
                             `Overloaded` rejection with a retry hint, never absorbed \
                             into unbounded memory",
                            needle.trim_end_matches('(')
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::analyze_file;

    fn ws_of(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: std::path::PathBuf::from("."),
            files: files
                .into_iter()
                .map(|(p, s)| analyze_file(p, s, RULE_NAMES))
                .collect(),
        }
    }

    fn rules_of(report: &LintReport) -> Vec<&str> {
        report.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn stat_wipe_flags_op_methods_not_constructors() {
        let src = "\
impl MacCrossbar {
    pub fn new() -> Self {
        s.reset_stats();
    }
    pub fn preset_mac(&mut self) {
        self.reset_stats();
    }
    pub fn reset_stats(&mut self) {}
}
";
        let ws = ws_of(vec![("crates/xbar/src/mac.rs", src)]);
        let report = check_workspace(&ws);
        assert_eq!(rules_of(&report), vec!["no-stat-wipe"]);
        assert_eq!(report.findings[0].line, 6);
    }

    #[test]
    fn accounting_flags_bare_ops_and_indexed_targets() {
        let src = "\
struct S { cycles: u64, counts: [u64; 4] }
impl S {
    fn add(&mut self, n: u64) {
        self.cycles += n;
        self.counts[1] += n;
        let t = self.cycles * 3;
        let f = self.cycles as f64 * 1.5;
        self.cycles = self.cycles.saturating_add(n);
    }
}
";
        let ws = ws_of(vec![("crates/sim/src/cost.rs", src)]);
        let report = check_workspace(&ws);
        let lines: Vec<usize> = report.findings.iter().map(|f| f.line).collect();
        assert_eq!(rules_of(&report).len(), 3, "{report:#?}");
        assert_eq!(lines, vec![4, 5, 6]);
    }

    #[test]
    fn accounting_ignores_out_of_scope_files() {
        let src = "struct S { cycles: u64 }\nfn f(s: &mut S) { s.cycles += 1; }\n";
        let ws = ws_of(vec![("crates/graph/src/coo.rs", src)]);
        assert!(check_workspace(&ws).is_clean());
    }

    #[test]
    fn accounting_flags_bare_param_arithmetic() {
        let src = "pub fn sfu_add_u64(a: u64, b: u64) -> u64 {\n    a + b\n}\n";
        let ws = ws_of(vec![("crates/core/src/sfu.rs", src)]);
        let report = check_workspace(&ws);
        assert_eq!(rules_of(&report), vec!["unchecked-accounting"]);
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn alloc_flagged_only_inside_fences() {
        let src = "\
let setup = Vec::new();
// gaasx-lint: hot
let v = Vec::new();
let w = vec![0u8; 4];
let c = xs.iter().collect::<Vec<_>>();
let ok = hv.chunks_iter(16);
// gaasx-lint: end-hot
let after = Vec::new();
";
        let ws = ws_of(vec![("crates/xbar/src/cam.rs", src)]);
        let report = check_workspace(&ws);
        assert_eq!(rules_of(&report).len(), 3, "{report:#?}");
        assert!(report.findings.iter().all(|f| f.rule == "alloc-in-hot"));
        let lines: Vec<usize> = report.findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![3, 4, 5]);
    }

    #[test]
    fn panic_in_lib_exempts_tests_and_bins() {
        let lib = "\
fn f(x: Option<u8>) -> u8 {
    x.unwrap()
}
#[cfg(test)]
mod tests {
    fn t() { None::<u8>.unwrap(); panic!(\"fine\"); }
}
";
        let binf = "fn main() { None::<u8>.expect(\"cli\"); }\n";
        let ws = ws_of(vec![
            ("crates/core/src/lib.rs", lib),
            ("crates/bench/src/bin/run.rs", binf),
        ]);
        let report = check_workspace(&ws);
        assert_eq!(rules_of(&report), vec!["panic-in-lib"]);
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn panic_tokens_do_not_overmatch() {
        let src = "\
fn f(r: Result<u8, u8>) -> u8 {
    let a = r.unwrap_or(3);
    let b = r.expect_err(\"e\");
    core::panic::Location::caller();
    a.saturating_add(b)
}
";
        let ws = ws_of(vec![("crates/core/src/lib.rs", src)]);
        assert!(check_workspace(&ws).is_clean());
    }

    #[test]
    fn conservation_catches_dropped_merge_field() {
        let src = "\
pub struct OpSummary {
    pub mac_ops: u64,
    pub sfu_ops: u64,
}
impl OpSummary {
    pub fn merge(&mut self, o: &Self) {
        self.mac_ops = self.mac_ops.saturating_add(o.mac_ops);
    }
}
impl core::ops::AddAssign for OpSummary { fn add_assign(&mut self, o: Self) { self.merge(&o); } }
impl core::iter::Sum for OpSummary { fn sum<I>(_: I) -> Self { todo!() } }
";
        let ws = ws_of(vec![("crates/sim/src/report.rs", src)]);
        let report = check_workspace(&ws);
        // `+=`-free merge still drops sfu_ops; todo!() in Sum is also a
        // panic-in-lib hit, so filter to the rule under test.
        let cons: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "summary-conservation")
            .collect();
        assert_eq!(cons.len(), 1, "{report:#?}");
        assert!(cons[0].message.contains("sfu_ops"));
    }

    #[test]
    fn conservation_flags_spread_constructor() {
        let def = "\
pub struct OpSummary { pub mac_ops: u64 }
impl OpSummary { pub fn merge(&mut self, o: &Self) { self.mac_ops = self.mac_ops.saturating_add(o.mac_ops); } }
impl core::ops::AddAssign for OpSummary { fn add_assign(&mut self, o: Self) { self.merge(&o); } }
impl core::iter::Sum for OpSummary { fn sum<I>(mut i: I) -> Self { Self { mac_ops: 0 } } }
";
        let user = "\
fn build() -> OpSummary {
    OpSummary {
        ..Default::default()
    }
}
";
        let ws = ws_of(vec![
            ("crates/sim/src/report.rs", def),
            ("crates/core/src/engine.rs", user),
        ]);
        let report = check_workspace(&ws);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "summary-conservation" && f.message.contains("spread")));
    }

    #[test]
    fn thread_containment_allows_only_sharded() {
        let sharded = "pub fn run() { crossbeam::thread::scope(|s| {}).ok(); }\n";
        let rogue = "pub fn run() { std::thread::spawn(|| {}); }\n";
        let ws = ws_of(vec![
            ("crates/core/src/sharded.rs", sharded),
            ("crates/baselines/src/cpu/gridgraph.rs", rogue),
        ]);
        let report = check_workspace(&ws);
        assert_eq!(rules_of(&report), vec!["thread-containment"]);
        assert_eq!(
            report.findings[0].path,
            "crates/baselines/src/cpu/gridgraph.rs"
        );
    }

    #[test]
    fn unbounded_queue_flags_server_code_only() {
        let serve = "\
pub fn build() {
    let q: VecDeque<u64> = VecDeque::new();
    let bounded = VecDeque::with_capacity(8);
    let (tx, rx) = std::sync::mpsc::channel();
    let (btx, brx) = std::sync::mpsc::sync_channel(4);
}
#[cfg(test)]
mod tests {
    fn t() { let _: VecDeque<u8> = VecDeque::new(); }
}
";
        let elsewhere = "pub fn f() { let _: VecDeque<u8> = VecDeque::new(); }\n";
        let ws = ws_of(vec![
            ("crates/serve/src/server.rs", serve),
            ("crates/core/src/engine.rs", elsewhere),
        ]);
        let report = check_workspace(&ws);
        let hits: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "unbounded-queue")
            .collect();
        assert_eq!(hits.len(), 2, "{report:#?}");
        assert!(hits.iter().all(|f| f.path == "crates/serve/src/server.rs"));
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[1].line, 4);
    }

    #[test]
    fn wall_clock_flags_modeled_time_code_only() {
        let engine = "\
pub fn finish(&mut self) {
    let start = std::time::Instant::now();
}
#[cfg(test)]
mod tests {
    fn t() { let _ = std::time::Instant::now(); }
}
";
        let xbar = "pub fn search(&self) { let _t = SystemTime::now(); }\n";
        let bench = "fn main() { let _ = std::time::Instant::now(); }\n";
        let graph = "pub fn load() { let _ = std::time::Instant::now(); }\n";
        let ws = ws_of(vec![
            ("crates/core/src/engine.rs", engine),
            ("crates/xbar/src/cam.rs", xbar),
            ("crates/bench/src/bin/run.rs", bench),
            ("crates/graph/src/coo.rs", graph),
        ]);
        let report = check_workspace(&ws);
        let wall: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == "wall-clock")
            .collect();
        assert_eq!(wall.len(), 2, "{report:#?}");
        assert_eq!(wall[0].path, "crates/core/src/engine.rs");
        assert_eq!(wall[0].line, 2);
        assert_eq!(wall[1].path, "crates/xbar/src/cam.rs");
    }

    #[test]
    fn suppressions_silence_and_are_counted() {
        let src = "\
fn f(x: Option<u8>) -> u8 {
    // gaasx-lint: allow(panic-in-lib) -- poisoned state is unrecoverable here
    x.unwrap()
}
";
        let ws = ws_of(vec![("crates/core/src/lib.rs", src)]);
        let report = check_workspace(&ws);
        assert!(report.is_clean(), "{report:#?}");
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn directive_findings_cannot_be_suppressed() {
        let src = "\
// gaasx-lint: allow(directive) -- trying to hide the meta finding
// gaasx-lint: allow(panic-in-lib)
fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        let ws = ws_of(vec![("crates/core/src/lib.rs", src)]);
        let report = check_workspace(&ws);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "directive" && f.message.contains("justification")));
    }
}
