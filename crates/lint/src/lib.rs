//! `gaasx-lint` — an in-tree invariant checker for accounting, hot-path,
//! and concurrency discipline.
//!
//! The GaaS-X comparison against dense-mapping baselines is only as good
//! as its cycle/energy ledger, and the bugs that corrupt that ledger are
//! mechanical *classes* (stat wipes, unchecked accumulator arithmetic,
//! per-op allocation on the CAM/MAC hot path, library panics aborting
//! sharded runs, counters added without energy wiring, ad-hoc threading).
//! This crate encodes each class as a rule and runs them over every
//! workspace `.rs` file — with no `syn` dependency, since the offline shim
//! set has no proc-macro stack; a small line-oriented lexer
//! ([`lexer`]) makes naive token scans sound instead.
//!
//! Rules can be silenced per line with a justified suppression:
//!
//! ```text
//! // gaasx-lint: allow(panic-in-lib) -- poisoned lock means a worker already panicked
//! ```
//!
//! and hot regions are fenced with `// gaasx-lint: hot` /
//! `// gaasx-lint: end-hot`. See [`rules::RULE_NAMES`] for the rule set.
//!
//! Beyond the per-file lexical rules, two multi-pass analyses run over a
//! cross-file model of the workspace ([`symbols`] + [`callgraph`]):
//! unit-of-measure checking ([`units_pass`]: `mixed-units`,
//! `unit-ambiguous-sig`, `unit-cast`) and transitive hot-path
//! reachability ([`hot_pass`]: `hot-reachable-alloc`,
//! `hot-reachable-panic`).

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod callgraph;
pub mod findings;
pub mod hot_pass;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod symbols;
pub mod units_pass;

use std::path::Path;

pub use findings::{Finding, LintReport};

/// Lints every `.rs` file under `root` (skipping `target/`, `shims/`,
/// hidden dirs, and fixture corpora) and returns the report.
///
/// # Errors
///
/// Returns a description of the first I/O failure while walking or
/// reading files.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let ws = source::load_workspace(root, rules::RULE_NAMES)?;
    Ok(rules::check_workspace(&ws))
}
