//! Workspace file model: classification, `#[cfg(test)]` regions, hot
//! fences, and `// gaasx-lint:` directives.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::findings::Finding;
use crate::lexer::{is_ident_char, lex, LexLine};

/// What kind of compilation target a file belongs to. Rules use this to
/// exempt test, bench, and binary code from library-only invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`crates/*/src/**`, excluding `src/bin`).
    Lib,
    /// Binary target (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Criterion benches (`benches/**`).
    Bench,
}

/// One lexed, region-annotated source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Target classification (see [`FileKind`]).
    pub kind: FileKind,
    /// Per-line code/comment views.
    pub lines: Vec<LexLine>,
    /// Whether each line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
    /// Whether each line sits inside a `// gaasx-lint: hot` fence.
    pub hot: Vec<bool>,
    /// Per-line active suppressions (rule names from `allow(...)`).
    pub allows: Vec<Vec<String>>,
    /// Findings produced while parsing directives (malformed `allow`,
    /// unclosed fences, …). These are not suppressible.
    pub directive_findings: Vec<Finding>,
}

impl SourceFile {
    /// Whether `rule` is suppressed on 0-based line `idx`.
    pub fn is_suppressed(&self, idx: usize, rule: &str) -> bool {
        self.allows
            .get(idx)
            .is_some_and(|a| a.iter().any(|r| r == rule))
    }
}

/// The lint root plus every scanned source file.
#[derive(Debug)]
pub struct Workspace {
    /// Root directory the relative paths hang off.
    pub root: PathBuf,
    /// All scanned `.rs` files, in sorted path order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// The file at an exact workspace-relative path, if scanned.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == rel_path)
    }
}

/// Recursively loads every `.rs` file under `root`.
///
/// Skipped subtrees: VCS/build output (`.git`, `target`), the offline
/// dependency shims (`shims/` — vendored stand-ins for external crates),
/// and the linter's own fixture corpus (`tests/fixtures/` — those files
/// violate rules on purpose).
///
/// # Errors
///
/// Returns a description of the first I/O failure.
pub fn load_workspace(root: &Path, known_rules: &[&str]) -> Result<Workspace, String> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let abs = root.join(&rel);
        let text = fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        files.push(analyze_file(&rel, &text, known_rules));
    }
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
    })
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "shims" {
                continue;
            }
            // The fixture corpus deliberately violates every rule.
            if name == "fixtures" && dir.file_name().and_then(|n| n.to_str()) == Some("tests") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip prefix: {e}"))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Classifies a workspace-relative path into a [`FileKind`].
pub fn classify(rel_path: &str) -> FileKind {
    let p = rel_path;
    if p.contains("/tests/") || p.starts_with("tests/") {
        FileKind::Test
    } else if p.contains("/benches/") || p.starts_with("benches/") {
        FileKind::Bench
    } else if p.contains("/src/bin/")
        || p.starts_with("src/bin/")
        || p.ends_with("/main.rs")
        || p == "main.rs"
        || p.contains("/examples/")
        || p.starts_with("examples/")
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Lexes one file and computes its regions and directives.
pub fn analyze_file(rel_path: &str, text: &str, known_rules: &[&str]) -> SourceFile {
    let lines = lex(text);
    let n = lines.len();
    let mut in_test = vec![false; n];
    let mut hot = vec![false; n];
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); n];
    let mut directive_findings = Vec::new();

    // --- #[cfg(test)] regions -------------------------------------------
    // A `#[cfg(test)]` attribute arms the scanner; the next `{` opens a
    // gated region that ends when the brace depth returns to its opening
    // level. Good enough for `#[cfg(test)] mod tests { … }` and for
    // attribute-gated single items.
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut test_until_depth: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        if test_until_depth.is_some() {
            in_test[idx] = true;
        }
        if line.code.contains("#[cfg(test)]") && test_until_depth.is_none() {
            armed = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed && test_until_depth.is_none() {
                        test_until_depth = Some(depth);
                        armed = false;
                        in_test[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_until_depth == Some(depth) {
                        test_until_depth = None;
                    }
                }
                _ => {}
            }
        }
    }

    // --- directives ------------------------------------------------------
    let mut hot_open: Option<usize> = None; // line of the opening fence
    let mut pending_allows: Vec<String> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if hot_open.is_some() {
            hot[idx] = true;
        }
        let Some(directive) = extract_directive(&line.comment) else {
            // A standalone allow applies to the next line carrying code.
            if !pending_allows.is_empty() && !line.code.trim().is_empty() {
                allows[idx].append(&mut pending_allows);
            }
            continue;
        };
        match parse_directive(&directive) {
            Ok(Directive::Hot) => {
                if hot_open.is_some() {
                    directive_findings.push(Finding::directive(
                        rel_path,
                        idx + 1,
                        "nested `gaasx-lint: hot` fence (close the previous one first)",
                    ));
                } else {
                    hot_open = Some(idx);
                }
            }
            Ok(Directive::EndHot) => {
                if hot_open.is_none() {
                    directive_findings.push(Finding::directive(
                        rel_path,
                        idx + 1,
                        "`gaasx-lint: end-hot` without an open fence",
                    ));
                }
                hot_open = None;
                hot[idx] = false;
            }
            Ok(Directive::Allow { rules, justified }) => {
                if !justified {
                    directive_findings.push(Finding::directive(
                        rel_path,
                        idx + 1,
                        &format!(
                            "allow({}) needs a justification: `-- <why this is sound>`",
                            rules.join(", ")
                        ),
                    ));
                }
                for rule in &rules {
                    if !known_rules.contains(&rule.as_str()) {
                        directive_findings.push(Finding::directive(
                            rel_path,
                            idx + 1,
                            &format!("allow() names unknown rule `{rule}`"),
                        ));
                    }
                }
                // The suppression is honored even when unjustified so the
                // report stays singular — the directive finding above keeps
                // CI red either way.
                if line.code.trim().is_empty() {
                    pending_allows.extend(rules);
                } else {
                    allows[idx].extend(rules);
                }
            }
            Err(msg) => {
                directive_findings.push(Finding::directive(rel_path, idx + 1, &msg));
            }
        }
    }
    if let Some(open) = hot_open {
        directive_findings.push(Finding::directive(
            rel_path,
            open + 1,
            "unclosed `gaasx-lint: hot` fence (add `// gaasx-lint: end-hot`)",
        ));
    }

    SourceFile {
        path: rel_path.to_string(),
        kind: classify(rel_path),
        lines,
        in_test,
        hot,
        allows,
        directive_findings,
    }
}

enum Directive {
    Hot,
    EndHot,
    Allow { rules: Vec<String>, justified: bool },
}

/// Pulls the text after `gaasx-lint:` out of a comment — only when the
/// comment *starts* with the marker, so prose that merely mentions the
/// syntax (doc comments, this file) is not parsed as a directive.
fn extract_directive(comment: &str) -> Option<String> {
    let body = comment.trim_start().strip_prefix("gaasx-lint:")?;
    Some(body.trim().to_string())
}

fn parse_directive(body: &str) -> Result<Directive, String> {
    if body == "hot" {
        return Ok(Directive::Hot);
    }
    if body == "end-hot" {
        return Ok(Directive::EndHot);
    }
    if let Some(rest) = body.strip_prefix("allow(") {
        let Some(close) = rest.find(')') else {
            return Err("malformed allow() — missing `)`".to_string());
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            return Err("allow() lists no rules".to_string());
        }
        let tail = rest[close + 1..].trim();
        let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        return Ok(Directive::Allow {
            rules,
            justified: !justification.is_empty(),
        });
    }
    Err(format!(
        "unknown directive `{body}` (expected hot, end-hot, or allow(rule) -- reason)"
    ))
}

/// Iterates `(byte_offset, identifier)` tokens of a code-view line.
pub fn idents(line: &str) -> Vec<(usize, &str)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            out.push((start, &line[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

/// The distinct rule names suppressed anywhere in a workspace — used by
/// reporting to tally suppressions.
pub fn suppression_count(ws: &Workspace) -> usize {
    ws.files
        .iter()
        .flat_map(|f| f.allows.iter())
        .map(|a| a.iter().collect::<BTreeSet<_>>().len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["panic-in-lib", "no-stat-wipe"];

    #[test]
    fn classifies_paths() {
        assert_eq!(classify("crates/core/src/engine.rs"), FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/run_all.rs"), FileKind::Bin);
        assert_eq!(classify("crates/graph/tests/properties.rs"), FileKind::Test);
        assert_eq!(
            classify("crates/bench/benches/crossbar_ops.rs"),
            FileKind::Bench
        );
        assert_eq!(classify("src/main.rs"), FileKind::Bin);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let f = analyze_file("x.rs", src, RULES);
        assert_eq!(f.in_test, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn hot_fences_mark_lines() {
        let src = "a();\n// gaasx-lint: hot\nb();\nc();\n// gaasx-lint: end-hot\nd();\n";
        let f = analyze_file("x.rs", src, RULES);
        assert_eq!(f.hot, vec![false, false, true, true, false, false]);
        assert!(f.directive_findings.is_empty());
    }

    #[test]
    fn unclosed_fence_is_reported() {
        let f = analyze_file("x.rs", "// gaasx-lint: hot\nwork();\n", RULES);
        assert_eq!(f.directive_findings.len(), 1);
        assert!(f.directive_findings[0].message.contains("unclosed"));
    }

    #[test]
    fn allow_applies_to_same_or_next_line() {
        let src = "\
x(); // gaasx-lint: allow(panic-in-lib) -- trailing form
// gaasx-lint: allow(no-stat-wipe) -- standalone form
y();
z();
";
        let f = analyze_file("x.rs", src, RULES);
        assert!(f.is_suppressed(0, "panic-in-lib"));
        assert!(f.is_suppressed(2, "no-stat-wipe"));
        assert!(!f.is_suppressed(3, "no-stat-wipe"));
        assert!(f.directive_findings.is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_finding() {
        let f = analyze_file("x.rs", "// gaasx-lint: allow(panic-in-lib)\ny();\n", RULES);
        assert_eq!(f.directive_findings.len(), 1);
        assert!(f.directive_findings[0].message.contains("justification"));
        // The suppression is still honored so the error message stays
        // singular — CI fails on the directive finding either way.
        assert!(f.is_suppressed(1, "panic-in-lib"));
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let f = analyze_file(
            "x.rs",
            "// gaasx-lint: allow(no-such-rule) -- because\ny();\n",
            RULES,
        );
        assert_eq!(f.directive_findings.len(), 1);
        assert!(f.directive_findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn ident_scan_finds_tokens() {
        let toks = idents("self.mac_ops += other.mac_ops;");
        let names: Vec<&str> = toks.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["self", "mac_ops", "other", "mac_ops"]);
    }
}
