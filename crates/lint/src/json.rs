//! Hand-rolled JSON codec for [`LintReport`].
//!
//! The offline `serde` shim is a set of no-op marker traits (the report
//! types still derive them for API parity), so actual serialization is
//! done here: a small emitter plus a recursive-descent parser that
//! understands exactly the JSON this crate produces. The round-trip is
//! covered by `tests/` so `--json` output stays machine-readable.

use crate::findings::{Finding, LintReport, RuleCount};

/// Serializes a report to a single-line JSON object.
pub fn to_json(report: &LintReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"files_scanned\":{},", report.files_scanned));
    out.push_str(&format!("\"suppressed\":{},", report.suppressed));
    out.push_str("\"rules\":[");
    for (i, r) in report.rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"findings\":{},\"suppressed\":{}}}",
            escape(&r.rule),
            r.findings,
            r.suppressed
        ));
    }
    out.push_str("],");
    out.push_str("\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            escape(&f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deserializes a report produced by [`to_json`].
///
/// # Errors
///
/// Returns a description of the first syntax or schema problem.
pub fn from_json(text: &str) -> Result<LintReport, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing data at offset {}", p.pos));
    }
    let obj = value.as_object()?;
    let mut report = LintReport::default();
    for (key, val) in obj {
        match key.as_str() {
            "files_scanned" => report.files_scanned = val.as_usize()?,
            "suppressed" => report.suppressed = val.as_usize()?,
            "findings" => {
                for item in val.as_array()? {
                    report.findings.push(finding_from(item)?);
                }
            }
            "rules" => {
                for item in val.as_array()? {
                    report.rules.push(rule_count_from(item)?);
                }
            }
            other => return Err(format!("unknown report key `{other}`")),
        }
    }
    Ok(report)
}

fn rule_count_from(value: &Value) -> Result<RuleCount, String> {
    let mut r = RuleCount {
        rule: String::new(),
        findings: 0,
        suppressed: 0,
    };
    for (key, val) in value.as_object()? {
        match key.as_str() {
            "rule" => r.rule = val.as_str()?.to_string(),
            "findings" => r.findings = val.as_usize()?,
            "suppressed" => r.suppressed = val.as_usize()?,
            other => return Err(format!("unknown rule-count key `{other}`")),
        }
    }
    Ok(r)
}

fn finding_from(value: &Value) -> Result<Finding, String> {
    let mut f = Finding::new("", "", 0, "");
    for (key, val) in value.as_object()? {
        match key.as_str() {
            "rule" => f.rule = val.as_str()?.to_string(),
            "path" => f.path = val.as_str()?.to_string(),
            "line" => f.line = val.as_usize()?,
            "message" => f.message = val.as_str()?.to_string(),
            other => return Err(format!("unknown finding key `{other}`")),
        }
    }
    Ok(f)
}

enum Value {
    Str(String),
    Num(u64),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn as_object(&self) -> Result<&[(String, Value)], String> {
        match self {
            Value::Obj(pairs) => Ok(pairs),
            _ => Err("expected object".to_string()),
        }
    }

    fn as_array(&self) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err("expected array".to_string()),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err("expected string".to_string()),
        }
    }

    fn as_usize(&self) -> Result<usize, String> {
        match self {
            Value::Num(n) => usize::try_from(*n).map_err(|e| e.to_string()),
            _ => Err("expected number".to_string()),
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {} (found {:?})",
                self.pos,
                self.peek()
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some('r') => out.push('\r'),
                        Some('u') => {
                            let hex: String =
                                self.chars.iter().skip(self.pos + 1).take(4).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<u64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            findings: vec![
                Finding::new(
                    "panic-in-lib",
                    "crates/a/src/lib.rs",
                    3,
                    "`.unwrap()` in lib",
                ),
                Finding::new(
                    "directive",
                    "crates/b/src/x.rs",
                    9,
                    "needs a justification: `-- <why>` with \"quotes\"\nand newline",
                ),
            ],
            files_scanned: 42,
            suppressed: 7,
            rules: vec![
                RuleCount {
                    rule: "panic-in-lib".to_string(),
                    findings: 1,
                    suppressed: 5,
                },
                RuleCount {
                    rule: "directive".to_string(),
                    findings: 1,
                    suppressed: 0,
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let report = sample();
        let json = to_json(&report);
        let back = from_json(&json).expect("parse back");
        assert_eq!(back, report);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = LintReport::default();
        assert_eq!(from_json(&to_json(&report)).expect("parse"), report);
    }

    #[test]
    fn escapes_are_valid_json() {
        let json = to_json(&sample());
        assert!(json.contains("\\n"));
        assert!(json.contains("\\\""));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{\"files_scanned\":1} extra").is_err());
    }
}
