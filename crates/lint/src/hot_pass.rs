//! Hot-path reachability: `hot-reachable-alloc`, `hot-reachable-panic`.
//!
//! The lexical `alloc-in-hot` rule polices the fenced dispatch loops
//! themselves; these two rules extend the fence *transitively* through
//! the intra-crate call graph ([`crate::callgraph::HotSet`]): a helper
//! called (directly or through further helpers) from a fenced line must
//! be as allocation-free and panic-free as the fence itself.
//!
//! Directly-fenced lines are skipped here — they are `alloc-in-hot`'s
//! jurisdiction — so the two layers never double-report one site. Test
//! regions and test files are skipped; `debug_assert!` family is allowed
//! (compiled out in release, which is the only build whose latency the
//! model bills).

use crate::callgraph::HotSet;
use crate::findings::Finding;
use crate::source::{FileKind, Workspace};
use crate::symbols::SymbolTable;

/// Allocation-capable needles, mirroring (and extending) `alloc-in-hot`.
const ALLOC_NEEDLES: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    ".to_vec(",
    ".collect",
    "format!(",
    "Box::new(",
    "String::new(",
    ".to_string(",
    ".to_owned(",
    "String::from(",
];

/// Panic-capable needles. `debug_assert!` is deliberately absent; plain
/// `assert!` in reachable helpers aborts a whole sharded run in release.
const PANIC_NEEDLES: &[&str] = &[
    ".unwrap(",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
];

fn scan_needles(
    ws: &Workspace,
    symbols: &SymbolTable,
    hot: &HotSet,
    rule: &'static str,
    needles: &[&str],
    verb: &str,
    out: &mut Vec<Finding>,
) {
    for (&f, reason) in &hot.reasons {
        let def = &symbols.fns[f];
        let Some((start, end)) = def.body else {
            continue;
        };
        let file = &ws.files[def.file];
        if file.kind == FileKind::Test {
            continue;
        }
        for li in start..=end.min(file.lines.len().saturating_sub(1)) {
            if file.in_test.get(li).copied().unwrap_or(false) {
                continue;
            }
            // Directly-fenced lines belong to the lexical `alloc-in-hot`
            // rule; re-flagging them here would double-report.
            if file.hot.get(li).copied().unwrap_or(false) {
                continue;
            }
            let code = &file.lines[li].code;
            for needle in needles {
                if let Some(col) = code.find(needle) {
                    // `debug_assert!(…)` contains `assert!(`; identifier-
                    // initial needles must start at a token boundary
                    // (`.`-initial ones are boundaries by construction).
                    let ident_initial = needle
                        .chars()
                        .next()
                        .is_some_and(crate::lexer::is_ident_char);
                    let boundary = !ident_initial
                        || col == 0
                        || !crate::lexer::is_ident_char(
                            code[..col].chars().next_back().unwrap_or(' '),
                        );
                    if !boundary {
                        continue;
                    }
                    out.push(Finding {
                        rule: rule.into(),
                        path: file.path.clone(),
                        line: li + 1,
                        message: format!(
                            "`{}` can {verb} inside hot-reachable fn `{}` ({reason})",
                            needle.trim_end_matches('('),
                            def.name
                        ),
                    });
                }
            }
        }
    }
}

/// `hot-reachable-alloc`: heap allocation in a fn reachable from a fence.
pub fn hot_reachable_alloc(
    ws: &Workspace,
    symbols: &SymbolTable,
    hot: &HotSet,
    out: &mut Vec<Finding>,
) {
    scan_needles(
        ws,
        symbols,
        hot,
        "hot-reachable-alloc",
        ALLOC_NEEDLES,
        "allocate",
        out,
    );
}

/// `hot-reachable-panic`: a panic path in a fn reachable from a fence.
pub fn hot_reachable_panic(
    ws: &Workspace,
    symbols: &SymbolTable,
    hot: &HotSet,
    out: &mut Vec<Finding>,
) {
    scan_needles(
        ws,
        symbols,
        hot,
        "hot-reachable-panic",
        PANIC_NEEDLES,
        "panic",
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::analyze_file;

    fn run_on(src: &str) -> Vec<Finding> {
        let ws = Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![analyze_file(
                "crates/core/src/engine.rs",
                src,
                &["directive"],
            )],
        };
        let symbols = SymbolTable::build(&ws);
        let hot = HotSet::compute(&ws, &symbols);
        let mut out = Vec::new();
        hot_reachable_alloc(&ws, &symbols, &hot, &mut out);
        hot_reachable_panic(&ws, &symbols, &hot, &mut out);
        out
    }

    const HOT_CALLER: &str = "\
pub fn dispatch(&mut self) {
    // gaasx-lint: hot
    for c in chunks {
        step(c);
    }
    // gaasx-lint: end-hot
}
";

    #[test]
    fn transitive_alloc_and_panic_flag_with_witness() {
        let src = format!(
            "{HOT_CALLER}fn step(c: &Chunk) {{\n    let v: Vec<u64> = c.ids().collect();\n    let x = v.first().unwrap();\n    touch(*x);\n}}\nfn touch(_x: u64) {{}}\n"
        );
        let out = run_on(&src);
        assert!(
            out.iter()
                .any(|f| f.rule == "hot-reachable-alloc" && f.message.contains("step")),
            "{out:?}"
        );
        assert!(
            out.iter()
                .any(|f| f.rule == "hot-reachable-panic" && f.message.contains("hot fence")),
            "{out:?}"
        );
    }

    #[test]
    fn cold_helpers_and_fenced_lines_are_not_reflagged() {
        let src = "\
pub fn dispatch(&mut self) {
    // gaasx-lint: hot
    for c in chunks {
        step(c);
    }
    // gaasx-lint: end-hot
    summary();
}
fn step(c: &Chunk) {
    c.touch();
}
fn summary() {
    let s = format!(\"done\");
    drop(s);
}
";
        let out = run_on(src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn debug_assert_is_allowed() {
        let src = format!(
            "{HOT_CALLER}fn step(c: &Chunk) {{\n    debug_assert!(c.ok());\n    c.touch();\n}}\n"
        );
        let out = run_on(&src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn second_hop_helpers_are_covered() {
        let src = format!(
            "{HOT_CALLER}fn step(c: &Chunk) {{\n    deeper(c);\n}}\nfn deeper(c: &Chunk) {{\n    c.buf.to_vec();\n}}\n"
        );
        let out = run_on(&src);
        assert!(
            out.iter()
                .any(|f| f.rule == "hot-reachable-alloc" && f.message.contains("deeper")),
            "{out:?}"
        );
    }
}
