//! Unit-of-measure analysis: `mixed-units`, `unit-ambiguous-sig`,
//! `unit-cast`.
//!
//! The accounting ledger bills three physical measures (ns, pJ, nJ) plus
//! dimensionless counts and ratios. Before the typed newtypes in
//! `gaasx-sim::units`, nothing stopped `elapsed_ns + energy_pj` from
//! compiling; the newtypes close that hole for *typed* code, and this pass
//! closes it for the raw-`f64` code that remains at the edges (wall-clock
//! tallies, roofline math, JSON writers).
//!
//! Units come from two places, in priority order:
//!
//! 1. **Declared types** — `Nanos`, `Picojoules`, `Nanojoules` in `let`
//!    bindings, struct fields, and fn parameters (via the symbol table).
//! 2. **Suffix conventions** — `_ns`, `_pj`, `_nj`, `_ops`/`_count`/…,
//!    `_ratio`/`_frac`/… on the identifier itself.
//!
//! The operand model is deliberately shallow: a unit is only assigned to
//! a *plain identifier* (optionally at the end of a field chain) directly
//! adjacent to the operator. Parenthesised expressions and method-call
//! results resolve to "unknown" and are never flagged — this pass trades
//! recall for a near-zero false-positive rate, because every finding must
//! either be a real bug or carry a justified suppression.

use crate::findings::Finding;
use crate::lexer::is_ident_char;
use crate::source::{FileKind, SourceFile, Workspace};
use crate::symbols::{has_declared_unit, unit_of_ident, unit_of_type, SymbolTable, Unit};

/// Files whose public signatures must name their units: the accounting
/// ledger itself plus the device energy models. Engine/SFU value-plane
/// code is out of scope — SFU operands are graph property values
/// (ranks, distances), not modeled costs, and carry no unit by design.
fn accounting_scoped(path: &str) -> bool {
    path.starts_with("crates/sim/src/") || path.ends_with("/energy.rs")
}

/// Parameter names that are dimensionless by convention even without a
/// ratio suffix: generic telemetry values, quantiles, and math operands.
const DIMENSIONLESS_PARAMS: &[&str] = &["value", "delta", "q", "x"];

/// Per-file unit environment: identifier → unit, from declared types.
///
/// File-wide scoping (like the accounting rule's accumulator tracking) is
/// a mild over-approximation of Rust scoping, acceptable because a name
/// that means `Nanos` in one fn and `Picojoules` in another within one
/// file is itself a bug waiting to happen.
fn typed_env(file: &SourceFile, symbols: &SymbolTable, file_idx: usize) -> Vec<(String, Unit)> {
    let mut env: Vec<(String, Unit)> = Vec::new();
    let mut note = |name: &str, unit: Unit| {
        if !env.iter().any(|(n, _)| n == name) {
            env.push((name.to_string(), unit));
        }
    };
    // `let name: Ty` / `name: Ty,` (field or binding declarations).
    for line in &file.lines {
        let code = &line.code;
        for (col, name) in crate::source::idents(code) {
            let tail = &code[col + name.len()..];
            let Some(rest) = tail.strip_prefix(':') else {
                continue;
            };
            // `::` is a path, not a type ascription.
            if rest.starts_with(':') {
                continue;
            }
            if let Some(unit) = unit_of_type(rest.trim_start()) {
                note(name, unit);
            }
        }
    }
    // Fn parameters from the symbol table (declared type first, suffix
    // second — suffix-only params are covered by `unit_of_ident` at use
    // sites anyway, so only typed params add information here).
    for def in &symbols.fns {
        if def.file != file_idx {
            continue;
        }
        for p in &def.params {
            if let Some(unit) = unit_of_type(&p.ty) {
                note(&p.name, unit);
            }
        }
    }
    env
}

fn env_unit(env: &[(String, Unit)], name: &str) -> Option<Unit> {
    env.iter()
        .find(|(n, _)| n == name)
        .map(|&(_, u)| u)
        .or_else(|| unit_of_ident(name))
}

/// The identifier ending immediately before byte `pos` (skipping spaces),
/// or `None` when the left operand is not a plain identifier.
fn ident_ending_at(code: &str, pos: usize) -> Option<&str> {
    let trimmed = code[..pos].trim_end();
    let end = trimmed.len();
    if end == 0 {
        return None;
    }
    let bytes = trimmed.as_bytes();
    if !is_ident_char(bytes[end - 1] as char) {
        return None;
    }
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    let word = &trimmed[start..end];
    if word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(word)
}

/// The *last* identifier of the field chain starting right after `pos`
/// (`self.energy.mac_pj` → `mac_pj`), or `None` if the right operand is
/// not a plain chain (literals, calls, parens all resolve to unknown).
fn chain_ident_after(code: &str, pos: usize) -> Option<&str> {
    let rest = code[pos..].trim_start();
    let bytes = rest.as_bytes();
    let mut i = 0usize;
    // Leading borrows/derefs keep the operand a plain place expression.
    while i < bytes.len() && (bytes[i] == b'&' || bytes[i] == b'*') {
        i += 1;
    }
    let word = loop {
        let start = i;
        while i < bytes.len() && is_ident_char(bytes[i] as char) {
            i += 1;
        }
        if i == start {
            return None;
        }
        if i < bytes.len() && bytes[i] == b'.' {
            // A digit after `.` would be a float literal / tuple index.
            if !bytes
                .get(i + 1)
                .is_some_and(|b| (*b as char).is_ascii_digit())
            {
                i += 1;
                continue;
            }
        }
        break &rest[start..i];
    };
    // A call result is not a plain place: unknown unit.
    if bytes.get(i) == Some(&b'(') {
        return None;
    }
    if word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(word)
}

/// Whether the identifier ending at `op_pos` is preceded by `*` or `/` —
/// i.e. it is one factor of a product, not the whole operand.
fn operand_is_partial_lhs(code: &str, op_pos: usize, lhs: &str) -> bool {
    let before_ident = code[..op_pos].trim_end();
    let Some(chain_start) = before_ident.len().checked_sub(lhs.len()) else {
        return true;
    };
    // Walk back over the full `a.b.c` place chain the ident terminates.
    let mut start = chain_start;
    let bytes = before_ident.as_bytes();
    while start > 0 {
        let prev = bytes[start - 1] as char;
        if prev == '.' || is_ident_char(prev) {
            start -= 1;
        } else {
            break;
        }
    }
    matches!(
        before_ident[..start].trim_end().chars().next_back(),
        Some('*' | '/')
    )
}

/// Whether the place chain following the operator is continued by `*`,
/// `/`, or an `as` cast — making the chain a sub-expression, not the
/// operand itself.
fn operand_is_partial_rhs(code: &str, after_op: usize) -> bool {
    let rest = code[after_op..].trim_start();
    let bytes = rest.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() && (bytes[i] == b'&' || bytes[i] == b'*') {
        i += 1;
    }
    while i < bytes.len() && (is_ident_char(bytes[i] as char) || bytes[i] == b'.') {
        i += 1;
    }
    let tail = rest[i..].trim_start();
    tail.starts_with('*') || tail.starts_with('/') || tail.starts_with("as ")
}

/// `mixed-units`: two operands with *different* known units meeting under
/// `+`, `-`, `+=`, `-=`, or an ordering comparison.
pub fn mixed_units(ws: &Workspace, symbols: &SymbolTable, out: &mut Vec<Finding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        if file.kind == FileKind::Test {
            continue;
        }
        let env = typed_env(file, symbols, fi);
        for (li, line) in file.lines.iter().enumerate() {
            if file.in_test.get(li).copied().unwrap_or(false) {
                continue;
            }
            let code = &line.code;
            let bytes = code.as_bytes();
            for (i, &b) in bytes.iter().enumerate() {
                let c = b as char;
                let (op_len, op_str) = match c {
                    '+' | '-' => {
                        // Skip `->`, `?`-chains are impossible here; `+=`
                        // and `-=` still mix units across the assignment.
                        if c == '-' && bytes.get(i + 1) == Some(&b'>') {
                            continue;
                        }
                        if bytes.get(i + 1) == Some(&b'=') {
                            (2, if c == '+' { "+=" } else { "-=" })
                        } else {
                            (1, if c == '+' { "+" } else { "-" })
                        }
                    }
                    '<' | '>' => {
                        // `<<`/`>>` shifts and `<=`/`>=` handling: shifts
                        // never mix physical units meaningfully enough to
                        // outweigh generic-bracket ambiguity, so only the
                        // single-char and `=`-suffixed forms are checked.
                        if bytes.get(i + 1) == Some(&b) {
                            continue;
                        }
                        if i > 0
                            && (bytes[i - 1] == b'<'
                                || bytes[i - 1] == b'>'
                                || bytes[i - 1] == b'=')
                        {
                            continue;
                        }
                        if bytes.get(i + 1) == Some(&b'=') {
                            (2, if c == '<' { "<=" } else { ">=" })
                        } else {
                            (1, if c == '<' { "<" } else { ">" })
                        }
                    }
                    _ => continue,
                };
                let Some(lhs) = ident_ending_at(code, i) else {
                    continue;
                };
                let Some(rhs) = chain_ident_after(code, i + op_len) else {
                    continue;
                };
                // A `*`/`/` next to either ident means the ident is only a
                // factor of the real operand, whose unit is the product's
                // (`reads as f64 * read_pj + writes as f64 * write_pj` is
                // all-pJ even though `writes` is a count). Same for a
                // cast: the unit belongs to the whole cast expression.
                if operand_is_partial_lhs(code, i, lhs) || operand_is_partial_rhs(code, i + op_len)
                {
                    continue;
                }
                let (Some(lu), Some(ru)) = (env_unit(&env, lhs), env_unit(&env, rhs)) else {
                    continue;
                };
                if !lu.compatible(ru) {
                    out.push(Finding {
                        rule: "mixed-units".into(),
                        path: file.path.clone(),
                        line: li + 1,
                        message: format!(
                            "`{lhs}` ({}) and `{rhs}` ({}) meet under `{op_str}`; convert \
                             explicitly before mixing units",
                            lu.name(),
                            ru.name()
                        ),
                    });
                }
            }
        }
    }
}

/// `unit-ambiguous-sig`: a `pub fn` in accounting code taking a bare
/// `f64` whose parameter name declares no unit. Returns are not checked:
/// a returned `f64` is named at the *call site* binding, where the suffix
/// conventions (and `mixed-units`) take over.
pub fn unit_ambiguous_sig(ws: &Workspace, symbols: &SymbolTable, out: &mut Vec<Finding>) {
    for def in &symbols.fns {
        let file = &ws.files[def.file];
        if !def.is_pub || file.kind == FileKind::Test || !accounting_scoped(&file.path) {
            continue;
        }
        if file.in_test.get(def.line).copied().unwrap_or(false) {
            continue;
        }
        for p in &def.params {
            let bare_f64 = p.ty == "f64" || p.ty == "&f64" || p.ty == "&mut f64";
            if bare_f64
                && !has_declared_unit(&p.name)
                && !DIMENSIONLESS_PARAMS.contains(&p.name.as_str())
            {
                out.push(Finding {
                    rule: "unit-ambiguous-sig".into(),
                    path: file.path.clone(),
                    line: def.line + 1,
                    message: format!(
                        "pub fn `{}` takes bare `f64` param `{}` with no unit suffix; name \
                         the unit (e.g. `{}_ns`) or use a typed quantity",
                        def.name, p.name, p.name
                    ),
                });
            }
        }
    }
}

/// `unit-cast`: an `as` cast applied directly to a physically-united
/// identifier (`elapsed_ns as u64`), which silently truncates or launders
/// the unit. Dimensionless counts cast freely (`len as f64 * write_pj` is
/// the canonical billing idiom).
pub fn unit_cast(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.kind == FileKind::Test {
            continue;
        }
        for (li, line) in file.lines.iter().enumerate() {
            if file.in_test.get(li).copied().unwrap_or(false) {
                continue;
            }
            let code = &line.code;
            for (col, word) in crate::source::idents(code) {
                if word != "as" {
                    continue;
                }
                let Some(lhs) = ident_ending_at(code, col) else {
                    continue;
                };
                let physical = matches!(
                    unit_of_ident(lhs),
                    Some(Unit::Nanos | Unit::Picojoules | Unit::Nanojoules)
                );
                if physical {
                    let target: String = code[col + 2..]
                        .trim_start()
                        .chars()
                        .take_while(|&c| is_ident_char(c))
                        .collect();
                    out.push(Finding {
                        rule: "unit-cast".into(),
                        path: file.path.clone(),
                        line: li + 1,
                        message: format!(
                            "`as {target}` cast launders the unit of `{lhs}` \
                             ({}); convert through the typed constructors instead",
                            unit_of_ident(lhs).map_or("?", Unit::name)
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::analyze_file;

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![analyze_file(path, src, &["directive"])],
        };
        let symbols = SymbolTable::build(&ws);
        let mut out = Vec::new();
        mixed_units(&ws, &symbols, &mut out);
        unit_ambiguous_sig(&ws, &symbols, &mut out);
        unit_cast(&ws, &mut out);
        out
    }

    #[test]
    fn flags_suffix_mixed_add_and_compare() {
        let out = run_on(
            "crates/baselines/src/x.rs",
            "fn f(a_ns: f64, b_pj: f64) -> f64 {\n    let t = a_ns + b_pj;\n    if a_ns < b_pj { t } else { t }\n}\n",
        );
        let mixed: Vec<_> = out.iter().filter(|f| f.rule == "mixed-units").collect();
        assert_eq!(mixed.len(), 2, "{out:?}");
        assert!(mixed[0].message.contains("`a_ns` (ns)"));
    }

    #[test]
    fn flags_declared_type_mixed_with_suffix() {
        let out = run_on(
            "crates/baselines/src/x.rs",
            "fn f(total: Nanos, e_pj: f64) {\n    let bad = total + e_pj;\n    let _ = bad;\n}\n",
        );
        assert!(
            out.iter()
                .any(|f| f.rule == "mixed-units" && f.message.contains("`total` (ns)")),
            "{out:?}"
        );
    }

    #[test]
    fn same_unit_and_unknown_operands_stay_silent() {
        let out = run_on(
            "crates/baselines/src/x.rs",
            "fn f(a_ns: f64, b_ns: f64, x: f64) -> f64 {\n    let t = a_ns + b_ns;\n    let u = t + x;\n    let v = compute(a_ns) + b_ns;\n    t + u + v\n}\n",
        );
        assert!(out.iter().all(|f| f.rule != "mixed-units"), "{out:?}");
    }

    #[test]
    fn generics_and_shifts_do_not_false_positive() {
        let out = run_on(
            "crates/baselines/src/x.rs",
            "fn f(map: BTreeMap<Phase, Nanos>, count: u64) -> u64 {\n    let _ = map;\n    count << 3\n}\n",
        );
        assert!(out.iter().all(|f| f.rule != "mixed-units"), "{out:?}");
    }

    #[test]
    fn ambiguous_pub_sig_in_accounting_scope() {
        let out = run_on(
            "crates/sim/src/cost.rs",
            "pub fn bill(elapsed: f64) -> f64 {\n    elapsed\n}\n",
        );
        let sigs: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "unit-ambiguous-sig")
            .collect();
        assert_eq!(sigs.len(), 1, "{out:?}");
        assert!(sigs[0].message.contains("`elapsed`"), "{out:?}");
    }

    #[test]
    fn united_or_private_or_out_of_scope_sigs_pass() {
        for (path, src) in [
            (
                "crates/sim/src/cost.rs",
                "pub fn bill(elapsed_ns: f64) -> Nanos {\n    Nanos::from_ns(elapsed_ns)\n}\n",
            ),
            (
                "crates/sim/src/cost.rs",
                "fn private(elapsed: f64) -> f64 {\n    elapsed\n}\n",
            ),
            (
                "crates/sim/src/obs.rs",
                "pub fn gauge_set(value: f64) {\n    record(value)\n}\n",
            ),
            (
                "crates/bench/src/table.rs",
                "pub fn cell(width: f64) -> f64 {\n    width\n}\n",
            ),
        ] {
            let out = run_on(path, src);
            assert!(
                out.iter().all(|f| f.rule != "unit-ambiguous-sig"),
                "{path}: {out:?}"
            );
        }
    }

    #[test]
    fn physical_casts_flag_and_count_casts_pass() {
        let out = run_on(
            "crates/baselines/src/x.rs",
            "fn f(elapsed_ns: f64, items: usize, w_pj: f64) -> f64 {\n    let t = elapsed_ns as u64;\n    let _ = t;\n    items as f64 * w_pj\n}\n",
        );
        let casts: Vec<_> = out.iter().filter(|f| f.rule == "unit-cast").collect();
        assert_eq!(casts.len(), 1, "{out:?}");
        assert!(casts[0].message.contains("`elapsed_ns`"));
    }
}
