//! Intra-crate call graph and transitive hot-path closure.
//!
//! The `hot` fences in [`crate::source`] mark dispatch loops lexically,
//! but the loop bodies call helpers — `mac_into`, `count_replayed_search`,
//! index maintenance — whose own bodies are just as latency-critical.
//! This module recovers a conservative by-name call graph *within each
//! crate* (cross-crate calls go through typed public APIs that the callee
//! crate fences on its own side) and computes the set of functions
//! transitively reachable from any hot fence, each with a human-readable
//! witness chain for the finding message.
//!
//! Resolution is name-based, not type-based: a call `foo(…)` or `x.foo(…)`
//! marks every `fn foo` in the same crate as reachable. That
//! over-approximates (two unrelated `fn len`s alias), which is the safe
//! direction for a reachability lint — a function is only exonerated when
//! *no* hot call site could plausibly reach it.

use std::collections::BTreeMap;

use crate::lexer::is_ident_char;
use crate::source::Workspace;
use crate::symbols::{crate_of, SymbolTable};

/// Rust keywords that can precede `(` without being calls.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "in", "as", "move", "loop", "else", "let",
];

/// Extracts plausible callee names from one blanked code line: every
/// identifier immediately followed by `(` that is not a `fn` definition,
/// a macro invocation (`name!(`), or a control-flow keyword.
pub fn calls_on_line(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut prev_word = String::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            let word = &code[start..i];
            let mut j = i;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            let next = bytes.get(j).copied();
            if next == Some(b'(')
                && prev_word != "fn"
                && !NON_CALL_WORDS.contains(&word)
                // Tuple-struct / enum constructors are capitalized; they
                // never resolve to a `fn` and calling them allocates
                // nothing by themselves.
                && !word.starts_with(|ch: char| ch.is_ascii_uppercase())
            {
                out.push(word.to_string());
            }
            if next == Some(b'!') {
                // Macro invocation: the macro body is inspected textually
                // by the needle rules, not through the call graph.
            }
            prev_word = word.to_string();
        } else {
            i += 1;
        }
    }
    out
}

/// The hot closure: function index → witness chain describing *why* it is
/// considered hot-reachable.
#[derive(Debug, Default)]
pub struct HotSet {
    /// `fn index in SymbolTable::fns → witness` (deterministic order).
    pub reasons: BTreeMap<usize, String>,
}

impl HotSet {
    /// Computes the closure: seed with every function called on a
    /// hot-fenced line, then propagate through intra-crate call edges.
    pub fn compute(ws: &Workspace, symbols: &SymbolTable) -> Self {
        let mut set = HotSet::default();
        let mut queue: Vec<usize> = Vec::new();

        // Seed: callees of calls appearing on directly-fenced lines.
        for file in &ws.files {
            let krate = crate_of(&file.path);
            for (li, line) in file.lines.iter().enumerate() {
                if !file.hot.get(li).copied().unwrap_or(false) {
                    continue;
                }
                for name in calls_on_line(&line.code) {
                    for &target in symbols.resolve(krate, &name) {
                        if symbols.fns[target].body.is_none() {
                            continue;
                        }
                        set.reasons.entry(target).or_insert_with(|| {
                            let witness =
                                format!("called from hot fence at {}:{}", file.path, li + 1);
                            queue.push(target);
                            witness
                        });
                    }
                }
            }
        }

        // Propagate: anything a hot-reachable fn calls (same crate) is
        // hot-reachable too, with the chain extended one hop.
        while let Some(f) = queue.pop() {
            let (file_idx, name, body) = {
                let def = &symbols.fns[f];
                (def.file, def.name.clone(), def.body)
            };
            let Some((start, end)) = body else { continue };
            let file = &ws.files[file_idx];
            let krate = crate_of(&file.path);
            let parent_reason = set.reasons[&f].clone();
            for li in start..=end.min(file.lines.len().saturating_sub(1)) {
                for callee in calls_on_line(&file.lines[li].code) {
                    for &target in symbols.resolve(krate, &callee) {
                        if target == f || symbols.fns[target].body.is_none() {
                            continue;
                        }
                        set.reasons.entry(target).or_insert_with(|| {
                            let witness = format!(
                                "called from hot fn `{}` ({}:{}; {})",
                                name,
                                file.path,
                                li + 1,
                                parent_reason
                            );
                            queue.push(target);
                            witness
                        });
                    }
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::analyze_file;
    use crate::symbols::SymbolTable;

    #[test]
    fn call_extraction_skips_keywords_macros_and_defs() {
        let calls =
            calls_on_line("fn outer() { if ready(x) { inner(y); format!(\"z\"); Some(q) } }");
        assert_eq!(calls, vec!["ready".to_string(), "inner".to_string()]);
        assert!(calls_on_line("let v = Vec::with_capacity(n);").contains(&"with_capacity".into()));
        assert!(calls_on_line("x.unwrap()").contains(&"unwrap".into()));
    }

    fn ws_of(src: &str) -> Workspace {
        Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![analyze_file(
                "crates/core/src/engine.rs",
                src,
                &["directive"],
            )],
        }
    }

    #[test]
    fn closure_extends_fences_transitively() {
        let src = "\
pub fn dispatch(&mut self) {
    // gaasx-lint: hot
    for c in chunks {
        step_one(c);
    }
    // gaasx-lint: end-hot
    cold_cleanup();
}
fn step_one(c: &Chunk) {
    helper(c);
}
fn helper(c: &Chunk) {
    c.touch();
}
fn cold_cleanup() {
    log_it();
}
fn log_it() {}
";
        let ws = ws_of(src);
        let symbols = SymbolTable::build(&ws);
        let hot = HotSet::compute(&ws, &symbols);
        let hot_names: Vec<&str> = hot
            .reasons
            .keys()
            .map(|&i| symbols.fns[i].name.as_str())
            .collect();
        assert!(hot_names.contains(&"step_one"), "{hot_names:?}");
        assert!(hot_names.contains(&"helper"), "{hot_names:?}");
        assert!(!hot_names.contains(&"cold_cleanup"), "{hot_names:?}");
        assert!(!hot_names.contains(&"log_it"), "{hot_names:?}");
        // Witness chains name the fence and the intermediate hop.
        let helper_idx = hot
            .reasons
            .keys()
            .find(|&&i| symbols.fns[i].name == "helper")
            .copied()
            .unwrap_or(usize::MAX);
        let reason = &hot.reasons[&helper_idx];
        assert!(reason.contains("step_one"), "{reason}");
        assert!(reason.contains("hot fence"), "{reason}");
    }

    #[test]
    fn resolution_stays_within_the_crate() {
        let a = analyze_file(
            "crates/core/src/engine.rs",
            "pub fn run() {\n    // gaasx-lint: hot\n    shared_name();\n    // gaasx-lint: end-hot\n}\n",
            &["directive"],
        );
        let b = analyze_file(
            "crates/xbar/src/mac.rs",
            "pub fn shared_name() {\n    boom();\n}\nfn boom() {}\n",
            &["directive"],
        );
        let ws = Workspace {
            root: std::path::PathBuf::from("."),
            files: vec![a, b],
        };
        let symbols = SymbolTable::build(&ws);
        let hot = HotSet::compute(&ws, &symbols);
        assert!(hot.reasons.is_empty(), "cross-crate call must not seed");
    }
}
