//! Finding and report types shared by the rules, the CLI, and the JSON
//! codec.

use serde::{Deserialize, Serialize};

/// The meta-rule id used for malformed `gaasx-lint:` directives. Findings
/// under this id cannot be suppressed.
pub const DIRECTIVE_RULE: &str = "directive";

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule id (e.g. `panic-in-lib`), or [`DIRECTIVE_RULE`].
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// A finding for `rule` at `path:line`.
    pub fn new(rule: &str, path: &str, line: usize, message: &str) -> Self {
        Self {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            message: message.to_string(),
        }
    }

    /// A directive (meta) finding — malformed suppressions, broken fences.
    pub fn directive(path: &str, line: usize, message: &str) -> Self {
        Self::new(DIRECTIVE_RULE, path, line, message)
    }
}

/// Per-rule tallies: surviving findings and silenced candidates. The CI
/// baseline ratchet (`--baseline`) compares these against a committed
/// snapshot so suppression debt can only shrink.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleCount {
    /// Rule id.
    pub rule: String,
    /// Findings that survived suppression.
    pub findings: usize,
    /// Candidates silenced by justified `allow(...)` directives.
    pub suppressed: usize,
}

/// The result of linting one root: every surviving finding plus scan
/// statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Violations that were not suppressed, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of would-be findings silenced by `allow(...)` directives.
    pub suppressed: usize,
    /// Per-rule tallies in [`crate::rules::RULE_NAMES`] order, including
    /// all-zero rows so the baseline schema is stable across runs.
    pub rules: Vec<RuleCount>,
}

impl LintReport {
    /// Whether the scanned tree is violation-free.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The suppressed count recorded for `rule` (0 when absent).
    pub fn suppressed_for(&self, rule: &str) -> usize {
        self.rules
            .iter()
            .find(|r| r.rule == rule)
            .map_or(0, |r| r.suppressed)
    }

    /// The human-readable (non-JSON) report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "gaasx-lint: {} finding(s), {} file(s) scanned, {} suppression(s)\n",
            self.findings.len(),
            self.files_scanned,
            self.suppressed
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_report_lists_findings_and_totals() {
        let report = LintReport {
            findings: vec![Finding::new(
                "panic-in-lib",
                "crates/x/src/lib.rs",
                7,
                "boom",
            )],
            files_scanned: 3,
            suppressed: 1,
            rules: vec![RuleCount {
                rule: "panic-in-lib".to_string(),
                findings: 1,
                suppressed: 1,
            }],
        };
        let text = report.render_human();
        assert!(text.contains("crates/x/src/lib.rs:7: [panic-in-lib] boom"));
        assert!(text.contains("1 finding(s), 3 file(s) scanned, 1 suppression(s)"));
    }

    #[test]
    fn clean_report_is_clean() {
        assert!(LintReport::default().is_clean());
    }

    #[test]
    fn suppressed_for_defaults_to_zero() {
        let report = LintReport {
            rules: vec![RuleCount {
                rule: "wall-clock".to_string(),
                findings: 0,
                suppressed: 4,
            }],
            ..LintReport::default()
        };
        assert_eq!(report.suppressed_for("wall-clock"), 4);
        assert_eq!(report.suppressed_for("mixed-units"), 0);
    }
}
