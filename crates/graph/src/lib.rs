//! Sparse graph substrate for the GaaS-X accelerator reproduction.
//!
//! This crate provides everything the accelerator and its baselines need to
//! hold and shuffle graph data:
//!
//! * [`CooGraph`] — the coordinate-list representation that GaaS-X stores
//!   natively in its CAM/MAC crossbars,
//! * [`Csr`] / [`Csc`] — compressed representations used by the software
//!   baselines,
//! * [`partition`] — GridGraph-style 2-D grid partitioning into sub-shards
//!   with vertex intervals (the on-disk layout GaaS-X adopts, paper §II-B),
//! * [`generators`] — synthetic workloads (R-MAT scale-free graphs,
//!   Erdős–Rényi, bipartite rating graphs, deterministic test graphs),
//! * [`datasets`] — a catalog mirroring Table II of the paper,
//! * [`stats`] — degree and tile-density statistics backing the paper's
//!   motivation analysis (§II-C),
//! * [`io`] — plain-text and binary edge-list readers/writers.
//!
//! # Example
//!
//! ```
//! use gaasx_graph::prelude::*;
//!
//! let graph = generators::paper_fig7_graph();
//! assert_eq!(graph.num_vertices(), 5);
//! let grid = GridPartition::new(&graph, 2)?;
//! assert!(grid.shards().count() > 0);
//! # Ok::<(), gaasx_graph::GraphError>(())
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod coo;
mod csr;
mod error;
mod types;

pub mod bipartite;
pub mod datasets;
pub mod disk;
pub mod generators;
pub mod io;
pub mod partition;
pub mod reorder;
pub mod stats;

pub use builder::GraphBuilder;
pub use coo::CooGraph;
pub use csr::{Csc, Csr};
pub use error::GraphError;
pub use types::{Edge, VertexId, Weight};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::bipartite::BipartiteGraph;
    pub use crate::datasets::PaperDataset;
    pub use crate::generators;
    pub use crate::partition::{GridPartition, Interval, Shard, TraversalOrder};
    pub use crate::{CooGraph, Csc, Csr, Edge, GraphBuilder, GraphError, VertexId, Weight};
}
