//! Fundamental value types shared across the graph substrate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Edge/attribute weight type used throughout the host-side representation.
///
/// On the device, weights are quantized to fixed point by the crossbar model
/// (`gaasx-xbar`); the host representation keeps `f32` so oracles and
/// baselines share one numeric type.
pub type Weight = f32;

/// Identifier of a vertex.
///
/// A newtype over `u32`, which comfortably covers the largest dataset in the
/// paper (Orkut, 3.0 M vertices) while keeping edge storage at 12 bytes.
///
/// ```
/// use gaasx_graph::VertexId;
/// let v = VertexId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "v7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex identifier from its raw index.
    pub const fn new(index: u32) -> Self {
        VertexId(index)
    }

    /// Returns the raw index as `usize`, for slice indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    fn from(v: VertexId) -> Self {
        v.0
    }
}

/// A directed, weighted edge in coordinate-list (COO) form.
///
/// This is the unit GaaS-X loads into its crossbars: the `(src, dst)` pair
/// goes to a CAM crossbar row and `weight` to the matching MAC crossbar row
/// (paper Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (1.0 for unweighted graphs).
    pub weight: Weight,
}

impl Edge {
    /// Creates an edge from raw indices with an explicit weight.
    ///
    /// ```
    /// use gaasx_graph::Edge;
    /// let e = Edge::new(1, 2, 6.0);
    /// assert_eq!(e.src.index(), 1);
    /// assert_eq!(e.weight, 6.0);
    /// ```
    pub fn new(src: u32, dst: u32, weight: Weight) -> Self {
        Edge {
            src: VertexId::new(src),
            dst: VertexId::new(dst),
            weight,
        }
    }

    /// Creates an unweighted edge (weight 1.0).
    pub fn unweighted(src: u32, dst: u32) -> Self {
        Edge::new(src, dst, 1.0)
    }

    /// Returns the edge with source and destination swapped.
    pub fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }

    /// Returns true if the edge is a self loop.
    pub fn is_self_loop(self) -> bool {
        self.src == self.dst
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {}, w={})", self.src, self.dst, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn vertex_id_ordering() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert_eq!(VertexId::default(), VertexId::new(0));
    }

    #[test]
    fn edge_reversal() {
        let e = Edge::new(3, 9, 2.5);
        let r = e.reversed();
        assert_eq!(r.src.index(), 9);
        assert_eq!(r.dst.index(), 3);
        assert_eq!(r.weight, 2.5);
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::unweighted(4, 4).is_self_loop());
        assert!(!Edge::unweighted(4, 5).is_self_loop());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Edge::new(1, 2, 6.0)), "(v1 -> v2, w=6)");
    }
}
