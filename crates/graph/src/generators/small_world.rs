//! Watts–Strogatz small-world graph generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::types::Edge;

/// Configuration of a Watts–Strogatz run.
///
/// Starts from a ring lattice where each vertex connects to its `k`
/// clockwise neighbors, then rewires each edge's destination uniformly at
/// random with probability `beta`. Small `beta` keeps strong clustering
/// with short global paths — a workload between the grid (`beta = 0`) and
/// Erdős–Rényi (`beta = 1`) extremes, useful for traversal studies where
/// diameter matters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallWorldConfig {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Clockwise lattice neighbors per vertex (out-degree).
    pub k: u32,
    /// Rewiring probability in `[0, 1]`.
    pub beta: f64,
    /// Maximum integral edge weight (uniform in `1..=max_weight`).
    pub max_weight: u32,
    /// RNG seed.
    pub seed: u64,
}

impl SmallWorldConfig {
    /// A ring of `num_vertices` with `k` neighbors and 10 % rewiring.
    pub fn new(num_vertices: u32, k: u32) -> Self {
        SmallWorldConfig {
            num_vertices,
            k,
            beta: 0.1,
            max_weight: 1,
            seed: 0x5311_0a1d,
        }
    }

    /// Sets the rewiring probability.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a Watts–Strogatz small-world graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k >= num_vertices`, `k` is
/// zero with a non-trivial graph, or `beta` is outside `[0, 1]`.
pub fn small_world(config: &SmallWorldConfig) -> Result<CooGraph, GraphError> {
    let n = config.num_vertices;
    if n == 0 {
        return Err(GraphError::InvalidParameter(
            "small_world: num_vertices must be positive".into(),
        ));
    }
    if config.k == 0 || config.k >= n {
        return Err(GraphError::InvalidParameter(format!(
            "small_world: k {} outside 1..{n}",
            config.k
        )));
    }
    if !(0.0..=1.0).contains(&config.beta) {
        return Err(GraphError::InvalidParameter(format!(
            "small_world: beta {} outside [0, 1]",
            config.beta
        )));
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut edges = Vec::with_capacity((n * config.k) as usize);
    for v in 0..n {
        for hop in 1..=config.k {
            let lattice_dst = (v + hop) % n;
            let dst = if rng.gen::<f64>() < config.beta {
                // Rewire to a uniform non-self destination.
                let mut d = rng.gen_range(0..n - 1);
                if d >= v {
                    d += 1;
                }
                d
            } else {
                lattice_dst
            };
            let weight = if config.max_weight <= 1 {
                1.0
            } else {
                rng.gen_range(1..=config.max_weight) as f32
            };
            edges.push(Edge::new(v, dst, weight));
        }
    }
    CooGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_when_beta_zero() {
        let g = small_world(&SmallWorldConfig::new(10, 2).with_beta(0.0)).unwrap();
        assert_eq!(g.num_edges(), 20);
        assert!(g.iter().all(|e| (e.dst.raw() + 10 - e.src.raw()) % 10 <= 2));
    }

    #[test]
    fn out_degree_is_always_k() {
        let g = small_world(&SmallWorldConfig::new(50, 4).with_beta(0.5)).unwrap();
        assert!(g.out_degrees().iter().all(|&d| d == 4));
    }

    #[test]
    fn no_self_loops() {
        let g = small_world(&SmallWorldConfig::new(40, 3).with_beta(1.0)).unwrap();
        assert!(g.iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn rewiring_shortens_paths() {
        // BFS eccentricity from vertex 0: the lattice needs ~n/k hops, the
        // rewired graph far fewer.
        let ecc = |beta: f64| -> f64 {
            let g =
                small_world(&SmallWorldConfig::new(400, 2).with_beta(beta).with_seed(9)).unwrap();
            let csr = crate::Csr::from_coo(&g);
            let mut dist = vec![f64::INFINITY; 400];
            dist[0] = 0.0;
            let mut frontier = vec![0u32];
            let mut level = 0.0;
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for &v in &frontier {
                    for (u, _) in csr.neighbors(crate::VertexId::new(v)) {
                        if dist[u.index()].is_infinite() {
                            dist[u.index()] = level + 1.0;
                            next.push(u.raw());
                        }
                    }
                }
                frontier = next;
                level += 1.0;
            }
            dist.iter()
                .copied()
                .filter(|d| d.is_finite())
                .fold(0.0, f64::max)
        };
        assert!(ecc(0.3) < 0.5 * ecc(0.0), "{} vs {}", ecc(0.3), ecc(0.0));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(small_world(&SmallWorldConfig::new(0, 1)).is_err());
        assert!(small_world(&SmallWorldConfig::new(10, 0)).is_err());
        assert!(small_world(&SmallWorldConfig::new(10, 10)).is_err());
        assert!(small_world(&SmallWorldConfig::new(10, 2).with_beta(1.5)).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let c = SmallWorldConfig::new(30, 3).with_beta(0.4).with_seed(5);
        assert_eq!(small_world(&c).unwrap(), small_world(&c).unwrap());
    }
}
