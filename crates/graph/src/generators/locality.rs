//! Community-locality post-pass for synthetic graphs.
//!
//! Crawled real-world graphs (the SNAP exports of Table II) exhibit strong
//! *community locality*: crawl-order vertex ids place connected vertices
//! near each other, so adjacency-matrix tiles near the diagonal are much
//! denser than random placement predicts — the paper measures non-empty
//! 16×16 tiles averaging ≈7.5 edges. Pure R-MAT at matched |V|, |E| yields
//! near-singleton tiles instead. This pass rewires a fraction of each
//! vertex's out-edges into its local community window, reproducing the
//! tile-density profile that the dense-mapping baselines' redundancy (and
//! thus every Fig 5/11/12 ratio) depends on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::types::{Edge, VertexId};

/// Configuration of the locality pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityConfig {
    /// Fraction of edges rewired into the source's community window.
    pub fraction: f64,
    /// Community window size in vertices.
    pub window: u32,
    /// Zipf exponent of in-window destination popularity. Real communities
    /// have local hubs; a positive exponent concentrates rewired edges onto
    /// a few in-window destinations, producing the dense hub *columns* that
    /// dominate non-empty-tile density while leaving most destinations at
    /// in-degree ≈1 (the coexistence of the paper's Fig 5 and Fig 13).
    /// Zero gives uniform in-window destinations.
    pub hub_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LocalityConfig {
    /// A window of 256 vertices with the given rewire fraction and local
    /// hub exponent 0.9.
    pub fn new(fraction: f64) -> Self {
        LocalityConfig {
            fraction,
            window: 256,
            hub_exponent: 0.9,
            seed: 0x10ca_11ff,
        }
    }

    /// Sets the local hub exponent.
    pub fn with_hub_exponent(mut self, e: f64) -> Self {
        self.hub_exponent = e;
        self
    }
}

/// Rewires `fraction` of the edges so their destination falls inside the
/// source's community window, preserving edge count, weights, and the
/// out-degree sequence. Self loops produced by the remap are nudged to the
/// next vertex in the window.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `fraction` is outside
/// `[0, 1]` or `window` is zero.
pub fn localize(graph: &CooGraph, config: &LocalityConfig) -> Result<CooGraph, GraphError> {
    if !(0.0..=1.0).contains(&config.fraction) {
        return Err(GraphError::InvalidParameter(format!(
            "locality fraction {} outside [0, 1]",
            config.fraction
        )));
    }
    if config.window == 0 {
        return Err(GraphError::InvalidParameter(
            "locality window must be positive".into(),
        ));
    }
    let n = graph.num_vertices();
    if n <= 1 || config.fraction == 0.0 {
        return Ok(graph.clone());
    }
    if config.hub_exponent < 0.0 || !config.hub_exponent.is_finite() {
        return Err(GraphError::InvalidParameter(format!(
            "locality hub_exponent {} must be a non-negative finite number",
            config.hub_exponent
        )));
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let window = config.window.min(n);

    // Zipf cumulative weights over in-window popularity ranks.
    let mut cum = Vec::with_capacity(window as usize);
    let mut total = 0.0f64;
    for r in 0..window {
        total += 1.0 / (f64::from(r) + 1.0).powf(config.hub_exponent);
        cum.push(total);
    }
    let sample_rank = |rng: &mut SmallRng| -> u32 {
        let x = rng.gen::<f64>() * total;
        // gaasx-lint: allow(panic-in-lib) -- cumulative sums of finite rank weights cannot be NaN
        match cum.binary_search_by(|c| c.partial_cmp(&x).expect("finite")) {
            Ok(i) | Err(i) => (i as u32).min(window - 1),
        }
    };

    let edges = graph
        .iter()
        .map(|e| {
            if rng.gen::<f64>() >= config.fraction {
                return *e;
            }
            let base = (e.src.raw() / window) * window;
            let span = window.min(n - base);
            // Rank → vertex mapping permuted per window so local hubs sit
            // at window-dependent positions, not always the lowest ids.
            let rank = sample_rank(&mut rng) % span;
            let scatter = (base / window).wrapping_mul(0x9e37_79b9) % span.max(1);
            let mut dst = base + (rank + scatter) % span;
            if dst == e.src.raw() {
                dst = base + (dst - base + 1) % span;
            }
            if dst == e.src.raw() {
                return *e; // single-vertex window: keep the original edge
            }
            Edge {
                src: e.src,
                dst: VertexId::new(dst),
                weight: e.weight,
            }
        })
        .collect();
    CooGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat, RmatConfig};
    use crate::stats::TileDensityProfile;

    #[test]
    fn preserves_counts_and_out_degrees() {
        let g = rmat(&RmatConfig::new(1 << 10, 8000).with_seed(3)).unwrap();
        let l = localize(&g, &LocalityConfig::new(0.5)).unwrap();
        assert_eq!(l.num_vertices(), g.num_vertices());
        assert_eq!(l.num_edges(), g.num_edges());
        assert_eq!(l.out_degrees(), g.out_degrees());
    }

    #[test]
    fn concentrates_edges_into_fewer_tiles() {
        let g = rmat(&RmatConfig::new(1 << 13, 60_000).with_seed(5)).unwrap();
        let before = TileDensityProfile::compute(&g, 16).unwrap();
        let l = localize(&g, &LocalityConfig::new(0.6)).unwrap();
        let after = TileDensityProfile::compute(&l, 16).unwrap();
        // Same edge count over fewer non-empty tiles = denser tiles — the
        // property the dense-mapping redundancy ratios depend on.
        assert!(
            (after.nonzero_tiles as f64) < 0.75 * before.nonzero_tiles as f64,
            "nonzero tiles {} -> {}",
            before.nonzero_tiles,
            after.nonzero_tiles
        );
    }

    #[test]
    fn zero_fraction_is_identity() {
        let g = rmat(&RmatConfig::new(1 << 8, 1000).with_seed(1)).unwrap();
        assert_eq!(localize(&g, &LocalityConfig::new(0.0)).unwrap(), g);
    }

    #[test]
    fn introduces_no_self_loops() {
        let g = rmat(&RmatConfig::new(1 << 8, 2000).with_seed(2)).unwrap();
        let l = localize(&g, &LocalityConfig::new(1.0)).unwrap();
        assert!(l.iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = rmat(&RmatConfig::new(1 << 4, 50).with_seed(1)).unwrap();
        assert!(localize(&g, &LocalityConfig::new(1.5)).is_err());
        let mut c = LocalityConfig::new(0.5);
        c.window = 0;
        assert!(localize(&g, &c).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let g = rmat(&RmatConfig::new(1 << 8, 1000).with_seed(9)).unwrap();
        let c = LocalityConfig::new(0.4);
        assert_eq!(localize(&g, &c).unwrap(), localize(&g, &c).unwrap());
    }
}
