//! Erdős–Rényi G(n, m) random graph generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::types::Edge;

/// Configuration of an Erdős–Rényi `G(n, m)` run: `m` directed edges chosen
/// uniformly at random among `n` vertices.
///
/// ER graphs have *no* hubs, making them the control workload when isolating
/// how much of GaaS-X's advantage comes from power-law structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErdosRenyiConfig {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Number of edges to emit.
    pub num_edges: usize,
    /// Maximum integral edge weight (uniform in `1..=max_weight`).
    pub max_weight: u32,
    /// RNG seed.
    pub seed: u64,
    /// Whether to suppress self loops.
    pub drop_self_loops: bool,
}

impl ErdosRenyiConfig {
    /// Creates a config with weight range `1..=16` and self loops dropped.
    pub fn new(num_vertices: u32, num_edges: usize) -> Self {
        ErdosRenyiConfig {
            num_vertices,
            num_edges,
            max_weight: 16,
            seed: 0x00e5_7ab1,
            drop_self_loops: true,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum integral edge weight.
    pub fn with_max_weight(mut self, w: u32) -> Self {
        self.max_weight = w;
        self
    }
}

/// Generates an Erdős–Rényi `G(n, m)` graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `num_vertices` is zero, or if
/// self loops are suppressed on a single-vertex graph that must carry edges.
pub fn erdos_renyi(config: &ErdosRenyiConfig) -> Result<CooGraph, GraphError> {
    if config.num_vertices == 0 {
        return Err(GraphError::InvalidParameter(
            "erdos_renyi: num_vertices must be positive".into(),
        ));
    }
    if config.drop_self_loops && config.num_vertices == 1 && config.num_edges > 0 {
        return Err(GraphError::InvalidParameter(
            "erdos_renyi: cannot place loop-free edges on a single vertex".into(),
        ));
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut edges = Vec::with_capacity(config.num_edges);
    while edges.len() < config.num_edges {
        let src = rng.gen_range(0..config.num_vertices);
        let dst = rng.gen_range(0..config.num_vertices);
        if config.drop_self_loops && src == dst {
            continue;
        }
        let weight = if config.max_weight == 1 {
            1.0
        } else {
            rng.gen_range(1..=config.max_weight) as f32
        };
        edges.push(Edge::new(src, dst, weight));
    }
    CooGraph::from_edges(config.num_vertices, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_requested_edges() {
        let g = erdos_renyi(&ErdosRenyiConfig::new(50, 300)).unwrap();
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn deterministic() {
        let c = ErdosRenyiConfig::new(40, 100).with_seed(11);
        assert_eq!(erdos_renyi(&c).unwrap(), erdos_renyi(&c).unwrap());
    }

    #[test]
    fn degrees_are_balanced() {
        let g = erdos_renyi(&ErdosRenyiConfig::new(128, 4096).with_seed(2)).unwrap();
        let deg = g.out_degrees();
        let mean = 4096.0 / 128.0;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max < 3.0 * mean, "ER should not have hubs: max {max}");
    }

    #[test]
    fn rejects_impossible_configs() {
        assert!(erdos_renyi(&ErdosRenyiConfig::new(0, 1)).is_err());
        assert!(erdos_renyi(&ErdosRenyiConfig::new(1, 1)).is_err());
    }
}
