//! Synthetic graph generators.
//!
//! The paper evaluates on SNAP/KONECT exports (Table II) that are not
//! redistributable here, so the workloads are substituted with generators
//! that reproduce the *structural* property the accelerator exploits:
//! power-law sparsity, i.e. mostly-empty adjacency tiles with a few dense
//! rows. R-MAT ([`RmatConfig`]) is the standard scale-free surrogate; the
//! remaining generators supply controlled structures for tests and examples.

mod classic;
mod erdos_renyi;
mod locality;
mod rmat;
mod small_world;

pub use classic::{complete_graph, cycle_graph, grid_graph, path_graph, star_graph};
pub use erdos_renyi::{erdos_renyi, ErdosRenyiConfig};
pub use locality::{localize, LocalityConfig};
pub use rmat::{rmat, RmatConfig};
pub use small_world::{small_world, SmallWorldConfig};

use crate::coo::CooGraph;
use crate::types::Edge;

/// The 5-vertex, 8-edge weighted example graph from Fig 7(a)/Fig 9(a) of the
/// paper, used throughout its worked examples of CAM search + selective MAC.
///
/// ```
/// let g = gaasx_graph::generators::paper_fig7_graph();
/// assert_eq!(g.num_vertices(), 5);
/// assert_eq!(g.num_edges(), 8);
/// ```
pub fn paper_fig7_graph() -> CooGraph {
    // (src, dest, weight) triples exactly as printed in Fig 7(a); the paper
    // numbers vertices from 1, we shift to 0-based ids.
    let triples = [
        (1, 2, 6.0),
        (3, 2, 5.0),
        (4, 2, 8.0),
        (1, 3, 4.0),
        (5, 3, 6.0),
        (2, 4, 4.0),
        (3, 4, 2.0),
        (5, 4, 7.0),
    ];
    CooGraph::from_edges(
        5,
        triples
            .iter()
            .map(|&(s, d, w)| Edge::new(s - 1, d - 1, w))
            .collect(),
    )
    // gaasx-lint: allow(panic-in-lib) -- hard-coded paper-figure edge table, validated by tests
    .expect("static example graph is valid")
}

/// The 6-vertex example graph from Fig 2(a) of the paper, used to illustrate
/// interval-based shard layout (interval size 2).
pub fn paper_fig2_graph() -> CooGraph {
    let pairs = [
        (1, 2),
        (1, 3),
        (2, 5),
        (3, 2),
        (3, 4),
        (4, 2),
        (4, 6),
        (5, 3),
        (5, 4),
        (6, 5),
    ];
    CooGraph::from_edges(
        6,
        pairs
            .iter()
            .map(|&(s, d)| Edge::unweighted(s - 1, d - 1))
            .collect(),
    )
    // gaasx-lint: allow(panic-in-lib) -- hard-coded paper-figure edge table, validated by tests
    .expect("static example graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_graph_matches_paper() {
        let g = paper_fig7_graph();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 8);
        // Vertex 2 (1-based) has in-degree 3 in the figure.
        assert_eq!(g.in_degrees()[1], 3);
    }

    #[test]
    fn fig2_graph_matches_paper() {
        let g = paper_fig2_graph();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 10);
    }
}
