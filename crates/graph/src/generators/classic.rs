//! Deterministic classic graphs for tests and examples.

use crate::coo::CooGraph;
use crate::types::Edge;

/// Directed path `0 -> 1 -> ... -> n-1` with unit weights.
///
/// SSSP/BFS on a path has trivially checkable distances, making it the
/// canonical traversal test fixture.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path_graph(n: u32) -> CooGraph {
    assert!(n > 0, "path_graph requires at least one vertex");
    CooGraph::from_edges(n, (0..n - 1).map(|i| Edge::unweighted(i, i + 1)).collect())
        // gaasx-lint: allow(panic-in-lib) -- endpoints are generated below the vertex count by construction
        .expect("path edges are in range")
}

/// Directed cycle `0 -> 1 -> ... -> n-1 -> 0` with unit weights.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn cycle_graph(n: u32) -> CooGraph {
    assert!(n > 0, "cycle_graph requires at least one vertex");
    CooGraph::from_edges(
        n,
        (0..n).map(|i| Edge::unweighted(i, (i + 1) % n)).collect(),
    )
    // gaasx-lint: allow(panic-in-lib) -- endpoints are generated below the vertex count by construction
    .expect("cycle edges are in range")
}

/// Star with hub 0 and `n - 1` spokes `0 -> i`, unit weights.
///
/// A star concentrates an entire graph into one CAM hit-vector burst — the
/// worst case for GaaS-X's 16-rows-per-MAC accumulation cap.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star_graph(n: u32) -> CooGraph {
    assert!(n > 0, "star_graph requires at least one vertex");
    CooGraph::from_edges(n, (1..n).map(|i| Edge::unweighted(0, i)).collect())
        // gaasx-lint: allow(panic-in-lib) -- endpoints are generated below the vertex count by construction
        .expect("star edges are in range")
}

/// Complete directed graph (no self loops), unit weights.
///
/// The fully dense case: sparse mapping holds zero advantage here, so it
/// bounds the dense/sparse redundancy ratio at 1×.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete_graph(n: u32) -> CooGraph {
    assert!(n > 0, "complete_graph requires at least one vertex");
    let mut edges = Vec::with_capacity((n as usize) * (n as usize - 1));
    for s in 0..n {
        for d in 0..n {
            if s != d {
                edges.push(Edge::unweighted(s, d));
            }
        }
    }
    // gaasx-lint: allow(panic-in-lib) -- endpoints are generated below the vertex count by construction
    CooGraph::from_edges(n, edges).expect("complete edges are in range")
}

/// `rows × cols` 2-D grid with edges rightward and downward, unit weights.
///
/// Grids have bounded degree and strong locality — the opposite extreme from
/// R-MAT, useful for road-network-style SSSP scenarios.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid_graph(rows: u32, cols: u32) -> CooGraph {
    assert!(rows > 0 && cols > 0, "grid_graph requires positive dims");
    let at = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::unweighted(at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push(Edge::unweighted(at(r, c), at(r + 1, c)));
            }
        }
    }
    // gaasx-lint: allow(panic-in-lib) -- endpoints are generated below the vertex count by construction
    CooGraph::from_edges(rows * cols, edges).expect("grid edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_counts() {
        let g = path_graph(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degrees(), vec![1, 1, 1, 1, 0]);
    }

    #[test]
    fn cycle_counts() {
        let g = cycle_graph(4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.out_degrees().iter().all(|&d| d == 1));
        assert!(g.in_degrees().iter().all(|&d| d == 1));
    }

    #[test]
    fn star_counts() {
        let g = star_graph(6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_degrees()[0], 5);
    }

    #[test]
    fn complete_counts() {
        let g = complete_graph(5);
        assert_eq!(g.num_edges(), 20);
        assert!((g.density() - 20.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn grid_counts() {
        let g = grid_graph(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Horizontal: 3 rows * 3; vertical: 2 * 4.
        assert_eq!(g.num_edges(), 9 + 8);
    }

    #[test]
    fn single_vertex_edge_cases() {
        assert_eq!(path_graph(1).num_edges(), 0);
        assert_eq!(star_graph(1).num_edges(), 0);
        assert_eq!(grid_graph(1, 1).num_edges(), 0);
    }
}
