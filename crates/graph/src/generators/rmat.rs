//! R-MAT (recursive matrix) scale-free graph generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::types::Edge;

/// Configuration of an R-MAT generation run.
///
/// R-MAT (Chakrabarti et al., 2004) recursively subdivides the adjacency
/// matrix into quadrants with probabilities `(a, b, c, d)`; skewed
/// probabilities yield the power-law degree distributions of real social and
/// web graphs, which is exactly the sparsity structure GaaS-X exploits
/// (≈ 90 % of non-empty 16×16 tiles below 10 % density, paper §II-C).
///
/// ```
/// use gaasx_graph::generators::{rmat, RmatConfig};
///
/// let g = rmat(&RmatConfig::new(1 << 8, 1 << 10).with_seed(7))?;
/// assert_eq!(g.num_vertices(), 256);
/// assert_eq!(g.num_edges(), 1024);
/// # Ok::<(), gaasx_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RmatConfig {
    /// Number of vertices; rounded up to the next power of two internally.
    pub num_vertices: u32,
    /// Number of edges to emit.
    pub num_edges: usize,
    /// Quadrant probability `a` (top-left). Defaults to the Graph500 0.57.
    pub a: f64,
    /// Quadrant probability `b` (top-right). Defaults to 0.19.
    pub b: f64,
    /// Quadrant probability `c` (bottom-left). Defaults to 0.19.
    pub c: f64,
    /// Maximum edge weight; weights are drawn uniformly from `1..=max_weight`
    /// (integral values, matching SSSP-style workloads). `1` makes the graph
    /// effectively unweighted.
    pub max_weight: u32,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// If set, self loops are removed after generation (the edge count then
    /// lands slightly under `num_edges`).
    pub drop_self_loops: bool,
}

impl RmatConfig {
    /// Creates a config with Graph500 default skew (a=0.57, b=c=0.19).
    pub fn new(num_vertices: u32, num_edges: usize) -> Self {
        RmatConfig {
            num_vertices,
            num_edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            max_weight: 16,
            seed: 0x6aa5_71cf,
            drop_self_loops: true,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the quadrant probabilities; `d` is implied as `1 - a - b - c`.
    pub fn with_skew(mut self, a: f64, b: f64, c: f64) -> Self {
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Sets the maximum integral edge weight.
    pub fn with_max_weight(mut self, w: u32) -> Self {
        self.max_weight = w;
        self
    }

    /// Implied bottom-right quadrant probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    fn validate(&self) -> Result<(), GraphError> {
        if self.num_vertices == 0 {
            return Err(GraphError::InvalidParameter(
                "rmat: num_vertices must be positive".into(),
            ));
        }
        if self.max_weight == 0 {
            return Err(GraphError::InvalidParameter(
                "rmat: max_weight must be positive".into(),
            ));
        }
        let d = self.d();
        for (name, p) in [("a", self.a), ("b", self.b), ("c", self.c), ("d", d)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(GraphError::InvalidParameter(format!(
                    "rmat: probability {name}={p} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// Generates an R-MAT graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for zero vertex counts or
/// probabilities outside `[0, 1]`.
pub fn rmat(config: &RmatConfig) -> Result<CooGraph, GraphError> {
    config.validate()?;
    let scale = 32 - (config.num_vertices.max(1) - 1).leading_zeros();
    let n = 1u64 << scale;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut edges = Vec::with_capacity(config.num_edges);
    // Per-level probability noise (+-10%) keeps the degree distribution from
    // the unnaturally repetitive structure of noiseless R-MAT.
    while edges.len() < config.num_edges {
        let (src, dst) = sample_cell(&mut rng, scale, config);
        if config.drop_self_loops && src == dst {
            continue;
        }
        let weight = if config.max_weight == 1 {
            1.0
        } else {
            rng.gen_range(1..=config.max_weight) as f32
        };
        debug_assert!(u64::from(src) < n && u64::from(dst) < n);
        edges.push(Edge::new(src, dst, weight));
    }
    CooGraph::from_edges(n as u32, edges)
}

fn sample_cell(rng: &mut SmallRng, scale: u32, config: &RmatConfig) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let noise = 0.9 + 0.2 * rng.gen::<f64>();
        let a = config.a * noise;
        let b = config.b * noise;
        let c = config.c * noise;
        let total = a + b + c + config.d() * noise;
        let r = rng.gen::<f64>() * total;
        if r < a {
            // top-left: neither bit set
        } else if r < a + b {
            dst |= 1;
        } else if r < a + b + c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_requested_sizes() {
        let g = rmat(&RmatConfig::new(100, 500)).unwrap();
        // 100 rounds up to 128 vertices.
        assert_eq!(g.num_vertices(), 128);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let c = RmatConfig::new(1 << 6, 200).with_seed(99);
        assert_eq!(rmat(&c).unwrap(), rmat(&c).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat(&RmatConfig::new(1 << 6, 200).with_seed(1)).unwrap();
        let b = rmat(&RmatConfig::new(1 << 6, 200).with_seed(2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn skew_produces_hubs() {
        // With Graph500 skew, the max out-degree should far exceed the mean.
        let g = rmat(&RmatConfig::new(1 << 10, 8 * 1024).with_seed(5)).unwrap();
        let deg = g.out_degrees();
        let max = *deg.iter().max().unwrap() as f64;
        let mean = 8.0 * 1024.0 / 1024.0;
        assert!(max > 4.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn uniform_skew_is_roughly_er() {
        let g = rmat(
            &RmatConfig::new(1 << 10, 8 * 1024)
                .with_skew(0.25, 0.25, 0.25)
                .with_seed(5),
        )
        .unwrap();
        let deg = g.out_degrees();
        let max = *deg.iter().max().unwrap() as f64;
        assert!(
            max < 40.0,
            "uniform rmat should have no big hubs, max {max}"
        );
    }

    #[test]
    fn no_self_loops_by_default() {
        let g = rmat(&RmatConfig::new(1 << 5, 400).with_seed(3)).unwrap();
        assert!(g.iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut c = RmatConfig::new(8, 8);
        c.a = 1.5;
        assert!(rmat(&c).is_err());
    }

    #[test]
    fn rejects_zero_vertices() {
        assert!(rmat(&RmatConfig::new(0, 8)).is_err());
    }

    #[test]
    fn unit_weight_mode() {
        let g = rmat(&RmatConfig::new(1 << 5, 100).with_max_weight(1)).unwrap();
        assert!(g.iter().all(|e| e.weight == 1.0));
    }
}
