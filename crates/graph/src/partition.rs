//! GridGraph-style 2-D grid partitioning into sub-shards.
//!
//! The paper (§II-B, Fig 2) partitions the vertex set into disjoint fixed
//! size intervals; the edges between a pair of intervals form a *sub-shard*
//! stored contiguously. GaaS-X streams shards in row-major (by source
//! interval) or column-major (by destination interval) order depending on
//! the algorithm, and assumes edges within a shard are sorted by destination
//! (§III-B).

use serde::{Deserialize, Serialize};

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::types::{Edge, VertexId};

/// A half-open vertex interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    start: u32,
    end: u32,
}

impl Interval {
    /// Creates the interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "interval start {start} > end {end}");
        Interval { start, end }
    }

    /// First vertex in the interval.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One past the last vertex.
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Number of vertices covered.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the interval covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `v` falls inside the interval.
    pub fn contains(&self, v: VertexId) -> bool {
        (self.start..self.end).contains(&v.raw())
    }

    /// Iterates the vertices of the interval.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (self.start..self.end).map(VertexId::new)
    }
}

/// The edges between one source interval and one destination interval,
/// sorted by `(dst, src)` as the paper's execution model assumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shard {
    src_interval: Interval,
    dst_interval: Interval,
    edges: Vec<Edge>,
}

impl Shard {
    /// Source vertex interval of the shard.
    pub fn src_interval(&self) -> Interval {
        self.src_interval
    }

    /// Destination vertex interval of the shard.
    pub fn dst_interval(&self) -> Interval {
        self.dst_interval
    }

    /// The shard's edges, sorted by `(dst, src)`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges in the shard.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the shard holds no edges (a "zero-edge sub-block").
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Fraction of the `|src| × |dst|` adjacency block that is populated,
    /// counting distinct cells (parallel edges share a cell).
    pub fn density(&self) -> f64 {
        let cells = self.src_interval.len() as f64 * self.dst_interval.len() as f64;
        if cells == 0.0 {
            return 0.0;
        }
        let mut pairs: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|e| (e.src.raw(), e.dst.raw()))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len() as f64 / cells
    }
}

/// Shard streaming order (paper §III-B: "shards are loaded in the increasing
/// order of either source interval (row-wise) or destination interval
/// (column-wise) depending on the suitability for the algorithm").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TraversalOrder {
    /// Outer loop over source intervals (push-style traversal: SSSP, BFS).
    RowMajor,
    /// Outer loop over destination intervals (pull-style gather: PageRank).
    #[default]
    ColumnMajor,
}

/// A `P × P` grid of sub-shards over fixed-size vertex intervals.
///
/// ```
/// use gaasx_graph::generators::paper_fig2_graph;
/// use gaasx_graph::partition::GridPartition;
///
/// // The paper's Fig 2 example: 6 vertices, interval size 2 -> 3×3 grid.
/// let grid = GridPartition::new(&paper_fig2_graph(), 2)?;
/// assert_eq!(grid.num_intervals(), 3);
/// assert_eq!(grid.total_edges(), 10);
/// # Ok::<(), gaasx_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPartition {
    num_vertices: u32,
    interval_size: u32,
    num_intervals: u32,
    /// Non-empty shards only, sorted by `(row, col)`. Sparse storage: a
    /// full-scale graph at 16-wide tiles has `P² ≈ 10¹⁰` cells but at most
    /// `E` occupied ones.
    occupied: Vec<((u32, u32), Shard)>,
}

impl GridPartition {
    /// Partitions `graph` into a grid with the given vertex `interval_size`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `interval_size` is zero or
    /// the graph has no vertices.
    pub fn new(graph: &CooGraph, interval_size: u32) -> Result<Self, GraphError> {
        if interval_size == 0 {
            return Err(GraphError::InvalidParameter(
                "grid partition: interval_size must be positive".into(),
            ));
        }
        if graph.num_vertices() == 0 {
            return Err(GraphError::InvalidParameter(
                "grid partition: graph has no vertices".into(),
            ));
        }
        let n = graph.num_vertices();
        let p = n.div_ceil(interval_size);
        let interval = |i: u32| Interval::new(i * interval_size, ((i + 1) * interval_size).min(n));

        // Sort edges by (row, col, dst, src) and slice into shards: memory
        // stays O(E) regardless of P (a full-scale graph at 16-wide tiles
        // would have ~10¹⁰ grid cells, almost all empty).
        let block = |v: VertexId| v.raw() / interval_size;
        let mut edges: Vec<Edge> = graph.edges().to_vec();
        edges.sort_unstable_by_key(|e| (block(e.src), block(e.dst), e.dst.raw(), e.src.raw()));
        let mut occupied: Vec<((u32, u32), Shard)> = Vec::new();
        let mut start = 0usize;
        while start < edges.len() {
            let key = (block(edges[start].src), block(edges[start].dst));
            let mut end = start + 1;
            while end < edges.len() && (block(edges[end].src), block(edges[end].dst)) == key {
                end += 1;
            }
            occupied.push((
                key,
                Shard {
                    src_interval: interval(key.0),
                    dst_interval: interval(key.1),
                    edges: edges[start..end].to_vec(),
                },
            ));
            start = end;
        }
        Ok(GridPartition {
            num_vertices: n,
            interval_size,
            num_intervals: p,
            occupied,
        })
    }

    /// Partitions into approximately `num_intervals` intervals, deriving the
    /// interval size.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `num_intervals` is zero or
    /// the graph has no vertices.
    pub fn with_num_intervals(graph: &CooGraph, num_intervals: u32) -> Result<Self, GraphError> {
        if num_intervals == 0 {
            return Err(GraphError::InvalidParameter(
                "grid partition: num_intervals must be positive".into(),
            ));
        }
        let size = graph.num_vertices().div_ceil(num_intervals).max(1);
        GridPartition::new(graph, size)
    }

    /// Number of intervals (and grid side length) `P`.
    pub fn num_intervals(&self) -> u32 {
        self.num_intervals
    }

    /// Configured interval size.
    pub fn interval_size(&self) -> u32 {
        self.interval_size
    }

    /// Number of vertices in the underlying graph.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// The `i`-th vertex interval.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_intervals`.
    pub fn interval(&self, i: u32) -> Interval {
        assert!(i < self.num_intervals, "interval {i} out of range");
        Interval::new(
            i * self.interval_size,
            ((i + 1) * self.interval_size).min(self.num_vertices),
        )
    }

    /// The shard for `(source interval row, destination interval col)`, or
    /// `None` if that grid cell holds no edges (storage is sparse).
    ///
    /// # Panics
    ///
    /// Panics if either index is `>= num_intervals`.
    pub fn shard(&self, row: u32, col: u32) -> Option<&Shard> {
        assert!(
            row < self.num_intervals && col < self.num_intervals,
            "shard ({row}, {col}) out of range for {}×{} grid",
            self.num_intervals,
            self.num_intervals
        );
        self.occupied
            .binary_search_by_key(&(row, col), |&(k, _)| k)
            .ok()
            .map(|i| &self.occupied[i].1)
    }

    /// Iterates the non-empty shards in row-major order.
    pub fn shards(&self) -> impl Iterator<Item = &Shard> + '_ {
        self.occupied.iter().map(|(_, s)| s)
    }

    /// Iterates non-empty shards with their `(row, col)` coordinates, in
    /// row-major order.
    pub fn shards_with_coords(&self) -> impl Iterator<Item = ((u32, u32), &Shard)> + '_ {
        self.occupied.iter().map(|(k, s)| (*k, s))
    }

    /// Iterates non-empty shards in the given streaming order.
    pub fn stream(&self, order: TraversalOrder) -> impl Iterator<Item = &Shard> + '_ {
        self.stream_indexed(order).map(|(_, s)| s)
    }

    /// Iterates non-empty shards in the given streaming order, paired with
    /// their canonical stream position `0..num_nonempty_shards()`. The
    /// position is what a parallel executor keys on to reassemble
    /// out-of-order per-shard results into the serial stream order.
    pub fn stream_indexed(
        &self,
        order: TraversalOrder,
    ) -> impl Iterator<Item = (usize, &Shard)> + '_ {
        let mut idx: Vec<usize> = (0..self.occupied.len()).collect();
        if order == TraversalOrder::ColumnMajor {
            idx.sort_by_key(|&i| {
                let ((r, c), _) = self.occupied[i];
                (c, r)
            });
        }
        idx.into_iter()
            .enumerate()
            .map(move |(pos, i)| (pos, &self.occupied[i].1))
    }

    /// Number of non-empty shards.
    pub fn num_nonempty_shards(&self) -> usize {
        self.occupied.len()
    }

    /// Total edges across all shards (equals the source graph's edge count).
    pub fn total_edges(&self) -> usize {
        self.occupied.iter().map(|(_, s)| s.num_edges()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn fig2_layout() {
        let grid = GridPartition::new(&generators::paper_fig2_graph(), 2).unwrap();
        assert_eq!(grid.num_intervals(), 3);
        assert_eq!(grid.total_edges(), 10);
        // Fig 2(b): shard (interval 1-2 source, interval 1-2 dest) holds
        // edges 1->2 only (0-based: 0->1).
        let s = grid.shard(0, 0).expect("occupied");
        assert_eq!(s.num_edges(), 1);
        assert_eq!(s.edges()[0], Edge::unweighted(0, 1));
        // Shard (3-4 source, 1-2 dest) holds 3->2 and 4->2.
        let s = grid.shard(1, 0).expect("occupied");
        assert_eq!(s.num_edges(), 2);
    }

    #[test]
    fn edges_partition_exactly() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 1000).with_seed(4)).unwrap();
        let grid = GridPartition::new(&g, 16).unwrap();
        assert_eq!(grid.total_edges(), g.num_edges());
        for shard in grid.shards() {
            for e in shard.edges() {
                assert!(shard.src_interval().contains(e.src));
                assert!(shard.dst_interval().contains(e.dst));
            }
        }
    }

    #[test]
    fn shard_edges_sorted_by_dst() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 1000).with_seed(9)).unwrap();
        let grid = GridPartition::new(&g, 32).unwrap();
        for shard in grid.shards() {
            let keys: Vec<(u32, u32)> = shard
                .edges()
                .iter()
                .map(|e| (e.dst.raw(), e.src.raw()))
                .collect();
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn uneven_tail_interval() {
        let g = generators::path_graph(10);
        let grid = GridPartition::new(&g, 4).unwrap();
        assert_eq!(grid.num_intervals(), 3);
        assert_eq!(grid.interval(2).len(), 2);
    }

    #[test]
    fn stream_orders_cover_same_shards() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 400).with_seed(2)).unwrap();
        let grid = GridPartition::new(&g, 8).unwrap();
        let row: usize = grid
            .stream(TraversalOrder::RowMajor)
            .map(Shard::num_edges)
            .sum();
        let col: usize = grid
            .stream(TraversalOrder::ColumnMajor)
            .map(Shard::num_edges)
            .sum();
        assert_eq!(row, g.num_edges());
        assert_eq!(col, g.num_edges());
    }

    #[test]
    fn stream_indexed_positions_match_stream_order() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 400).with_seed(5)).unwrap();
        let grid = GridPartition::new(&g, 8).unwrap();
        for order in [TraversalOrder::RowMajor, TraversalOrder::ColumnMajor] {
            let plain: Vec<&Shard> = grid.stream(order).collect();
            for (pos, shard) in grid.stream_indexed(order) {
                assert!(std::ptr::eq(plain[pos], shard), "position {pos} diverges");
            }
        }
    }

    #[test]
    fn column_major_streams_by_destination() {
        let grid = GridPartition::new(&generators::paper_fig2_graph(), 2).unwrap();
        let cols: Vec<u32> = grid
            .stream(TraversalOrder::ColumnMajor)
            .map(|s| s.dst_interval().start())
            .collect();
        assert!(cols.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn density_counts_distinct_cells() {
        let g = CooGraph::from_edges(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(0, 1, 2.0), // duplicate cell
                Edge::new(1, 0, 1.0),
            ],
        )
        .unwrap();
        let grid = GridPartition::new(&g, 4).unwrap();
        let s = grid.shard(0, 0).expect("occupied");
        assert!((s.density() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let g = generators::path_graph(4);
        assert!(GridPartition::new(&g, 0).is_err());
        assert!(GridPartition::with_num_intervals(&g, 0).is_err());
        assert!(GridPartition::new(&CooGraph::empty(0), 2).is_err());
    }

    use crate::types::Edge;
}
