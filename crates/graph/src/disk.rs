//! Disk-backed shard storage — the paper's Fig 2 on-disk layout made
//! concrete.
//!
//! "The goal of single system disk based graph processing is to partition
//! the graph data into grids or sub-shards in such a way that random
//! accesses to the disk are minimized ... The edges corresponding to a pair
//! of intervals form a sub-shard or a grid and will be stored in a
//! contiguous manner" (§II-B). This module persists a [`GridPartition`] as
//! one binary file per non-empty sub-shard plus a manifest, and streams
//! shards back in row- or column-major order with strictly sequential
//! reads — the access pattern GaaS-X's controller assumes.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::io::{from_binary, to_binary};
use crate::partition::{GridPartition, TraversalOrder};

const MANIFEST: &str = "manifest.txt";

/// A grid of sub-shards persisted to a directory.
#[derive(Debug, Clone)]
pub struct ShardStore {
    root: PathBuf,
    num_vertices: u32,
    interval_size: u32,
    num_intervals: u32,
    /// `(row, col)` coordinates of non-empty shards, row-major order.
    occupied: Vec<(u32, u32)>,
}

impl ShardStore {
    /// Persists `grid` under `root` (created if missing): one
    /// `shard_R_C.bin` per non-empty sub-shard plus a manifest.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(grid: &GridPartition, root: impl AsRef<Path>) -> Result<Self, GraphError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        let mut occupied = Vec::new();
        for ((row, col), shard) in grid.shards_with_coords() {
            let coo = CooGraph::from_edges(grid.num_vertices(), shard.edges().to_vec())?;
            let mut w = BufWriter::new(File::create(shard_path(&root, row, col))?);
            w.write_all(&to_binary(&coo))?;
            occupied.push((row, col));
        }
        let mut manifest = BufWriter::new(File::create(root.join(MANIFEST))?);
        writeln!(
            manifest,
            "{} {} {}",
            grid.num_vertices(),
            grid.interval_size(),
            grid.num_intervals()
        )?;
        for &(r, c) in &occupied {
            writeln!(manifest, "{r} {c}")?;
        }
        Ok(ShardStore {
            root,
            num_vertices: grid.num_vertices(),
            interval_size: grid.interval_size(),
            num_intervals: grid.num_intervals(),
            occupied,
        })
    }

    /// Opens an existing store by reading its manifest.
    ///
    /// # Errors
    ///
    /// Returns a parse error for a malformed manifest or I/O errors.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, GraphError> {
        let root = root.as_ref().to_path_buf();
        let text = fs::read_to_string(root.join(MANIFEST))?;
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| GraphError::Parse {
            line: 1,
            message: "empty manifest".into(),
        })?;
        let mut parts = header.split_whitespace();
        let mut field = |what: &str| -> Result<u32, GraphError> {
            parts
                .next()
                .ok_or_else(|| GraphError::Parse {
                    line: 1,
                    message: format!("missing {what}"),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: 1,
                    message: format!("bad {what}: {e}"),
                })
        };
        let num_vertices = field("vertex count")?;
        let interval_size = field("interval size")?;
        let num_intervals = field("interval count")?;
        let mut occupied = Vec::new();
        for (idx, line) in lines {
            let mut parts = line.split_whitespace();
            let parse = |tok: Option<&str>| -> Result<u32, GraphError> {
                tok.ok_or_else(|| GraphError::Parse {
                    line: idx + 1,
                    message: "missing shard coordinate".into(),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: idx + 1,
                    message: format!("bad shard coordinate: {e}"),
                })
            };
            occupied.push((parse(parts.next())?, parse(parts.next())?));
        }
        Ok(ShardStore {
            root,
            num_vertices,
            interval_size,
            num_intervals,
            occupied,
        })
    }

    /// Vertex count of the stored graph.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Interval size of the grid.
    pub fn interval_size(&self) -> u32 {
        self.interval_size
    }

    /// Number of intervals per grid side.
    pub fn num_intervals(&self) -> u32 {
        self.num_intervals
    }

    /// Number of non-empty shards on disk.
    pub fn num_shards(&self) -> usize {
        self.occupied.len()
    }

    /// Loads one shard's edges.
    ///
    /// # Errors
    ///
    /// Returns I/O or format errors; a missing shard file is an I/O error.
    pub fn load_shard(&self, row: u32, col: u32) -> Result<CooGraph, GraphError> {
        let mut bytes = Vec::new();
        BufReader::new(File::open(shard_path(&self.root, row, col))?).read_to_end(&mut bytes)?;
        from_binary(Bytes::from(bytes))
    }

    /// Streams all shards in the given order, yielding
    /// `((row, col), edges)` — the sequential-access pattern of §III-B.
    pub fn stream(
        &self,
        order: TraversalOrder,
    ) -> impl Iterator<Item = Result<((u32, u32), CooGraph), GraphError>> + '_ {
        let mut coords = self.occupied.clone();
        if order == TraversalOrder::ColumnMajor {
            coords.sort_by_key(|&(r, c)| (c, r));
        }
        coords
            .into_iter()
            .map(move |(r, c)| self.load_shard(r, c).map(|g| ((r, c), g)))
    }

    /// Reassembles the full graph from disk.
    ///
    /// # Errors
    ///
    /// Propagates shard-load errors.
    pub fn reassemble(&self) -> Result<CooGraph, GraphError> {
        let mut graph = CooGraph::empty(self.num_vertices);
        for item in self.stream(TraversalOrder::RowMajor) {
            let (_, shard) = item?;
            for e in shard.iter() {
                graph.push_edge(*e)?;
            }
        }
        Ok(graph)
    }
}

fn shard_path(root: &Path, row: u32, col: u32) -> PathBuf {
    root.join(format!("shard_{row}_{col}.bin"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gaasx-shardstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_open_stream_roundtrip() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 600).with_seed(3)).unwrap();
        let grid = GridPartition::with_num_intervals(&g, 4).unwrap();
        let dir = temp_dir("roundtrip");
        let saved = ShardStore::save(&grid, &dir).unwrap();
        assert_eq!(saved.num_shards(), grid.num_nonempty_shards());

        let opened = ShardStore::open(&dir).unwrap();
        assert_eq!(opened.num_vertices(), g.num_vertices());
        assert_eq!(opened.num_shards(), saved.num_shards());

        // Reassembled graph carries exactly the original edge multiset.
        let back = opened.reassemble().unwrap();
        let key = |e: &crate::Edge| (e.src.raw(), e.dst.raw(), e.weight.to_bits());
        let mut a: Vec<_> = g.edges().iter().map(key).collect();
        let mut b: Vec<_> = back.edges().iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn column_major_stream_orders_by_destination_interval() {
        let g = generators::paper_fig2_graph();
        let grid = GridPartition::new(&g, 2).unwrap();
        let dir = temp_dir("colmajor");
        let store = ShardStore::save(&grid, &dir).unwrap();
        let cols: Vec<u32> = store
            .stream(TraversalOrder::ColumnMajor)
            .map(|r| r.unwrap().0 .1)
            .collect();
        assert!(cols.windows(2).all(|w| w[0] <= w[1]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_shards_are_not_stored() {
        let g = generators::path_graph(8); // diagonal band only
        let grid = GridPartition::new(&g, 2).unwrap();
        let dir = temp_dir("sparse");
        let store = ShardStore::save(&grid, &dir).unwrap();
        assert!(store.num_shards() < 16);
        assert!(store.load_shard(3, 0).is_err(), "empty shard has no file");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_corrupt_manifest() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST), "not numbers at all\n").unwrap();
        assert!(ShardStore::open(&dir).is_err());
        fs::write(dir.join(MANIFEST), "").unwrap();
        assert!(ShardStore::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
