//! Error type for graph construction and I/O.

use std::fmt;
use std::io;

/// Errors produced by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// An edge references a vertex outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: u32,
        /// Number of vertices in the graph.
        num_vertices: u32,
    },
    /// A parameter was invalid (empty graph, zero interval size, ...).
    InvalidParameter(String),
    /// A text edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// Binary graph data was malformed.
    MalformedBinary(String),
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::MalformedBinary(msg) => write!(f, "malformed binary graph: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        let s = e.to_string();
        assert!(s.contains("vertex 9"));
        assert!(s.contains("4 vertices"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let e = GraphError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
