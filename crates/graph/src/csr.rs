//! Compressed sparse row / column representations.
//!
//! The software baselines (GridGraph-, GAPBS- and GraphChi-style kernels in
//! `gaasx-baselines`) operate on CSR/CSC, the formats the paper names in
//! §II-B as the standard sparse encodings alongside COO.

use serde::{Deserialize, Serialize};

use crate::coo::CooGraph;
use crate::types::{VertexId, Weight};

/// Compressed sparse row: out-neighbors of each vertex, contiguous.
///
/// ```
/// use gaasx_graph::{CooGraph, Csr, Edge};
///
/// let g = CooGraph::from_edges(3, vec![Edge::new(0, 1, 2.0), Edge::new(0, 2, 3.0)])?;
/// let csr = Csr::from_coo(&g);
/// let out: Vec<u32> = csr.neighbors(gaasx_graph::VertexId::new(0))
///     .map(|(v, _)| v.raw())
///     .collect();
/// assert_eq!(out, vec![1, 2]);
/// # Ok::<(), gaasx_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<Weight>,
}

/// Compressed sparse column: in-neighbors of each vertex, contiguous.
///
/// Structurally a [`Csr`] of the transposed graph; kept as a distinct type so
/// pull-direction kernels cannot accidentally receive a push-direction index
/// (C-NEWTYPE).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csc {
    inner: Csr,
}

impl Csr {
    /// Builds the CSR index of `graph`.
    ///
    /// Runs in `O(V + E)` using a counting sort; the input edge order is not
    /// disturbed and need not be sorted.
    pub fn from_coo(graph: &CooGraph) -> Self {
        let n = graph.num_vertices() as usize;
        let mut counts = vec![0usize; n + 1];
        for e in graph.iter() {
            counts[e.src.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; graph.num_edges()];
        let mut weights = vec![0.0; graph.num_edges()];
        for e in graph.iter() {
            let slot = cursor[e.src.index()];
            targets[slot] = e.dst.raw();
            weights[slot] = e.weight;
            cursor[e.src.index()] += 1;
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Iterates `(neighbor, weight)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let range = self.offsets[v.index()]..self.offsets[v.index() + 1];
        self.targets[range.clone()]
            .iter()
            .zip(&self.weights[range])
            .map(|(&t, &w)| (VertexId::new(t), w))
    }

    /// Raw neighbor slice of `v` (indices only), for tight baseline kernels.
    pub fn neighbor_slice(&self, v: VertexId) -> &[u32] {
        &self.targets[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Raw weight slice of `v`, parallel to [`Csr::neighbor_slice`].
    pub fn weight_slice(&self, v: VertexId) -> &[Weight] {
        &self.weights[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The offsets array (`num_vertices + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

impl Csc {
    /// Builds the CSC index of `graph` (in-neighbor adjacency).
    pub fn from_coo(graph: &CooGraph) -> Self {
        Csc {
            inner: Csr::from_coo(&graph.transposed()),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.inner.num_vertices()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.inner.num_edges()
    }

    /// In-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inner.degree(v)
    }

    /// Iterates `(in_neighbor, weight)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.inner.neighbors(v)
    }

    /// Raw in-neighbor slice of `v`.
    pub fn in_neighbor_slice(&self, v: VertexId) -> &[u32] {
        self.inner.neighbor_slice(v)
    }

    /// Raw weight slice of `v`, parallel to [`Csc::in_neighbor_slice`].
    pub fn in_weight_slice(&self, v: VertexId) -> &[Weight] {
        self.inner.weight_slice(v)
    }
}

impl From<&CooGraph> for Csr {
    fn from(g: &CooGraph) -> Self {
        Csr::from_coo(g)
    }
}

impl From<&CooGraph> for Csc {
    fn from(g: &CooGraph) -> Self {
        Csc::from_coo(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn sample() -> CooGraph {
        // Paper Fig 7(a): 5 vertices, 8 weighted edges.
        crate::generators::paper_fig7_graph()
    }

    #[test]
    fn csr_preserves_counts() {
        let g = sample();
        let csr = Csr::from_coo(&g);
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        let total: usize = VertexId::all(g.num_vertices()).map(|v| csr.degree(v)).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn csr_degrees_match_coo() {
        let g = sample();
        let csr = Csr::from_coo(&g);
        let deg = g.out_degrees();
        for v in VertexId::all(g.num_vertices()) {
            assert_eq!(csr.degree(v) as u32, deg[v.index()]);
        }
    }

    #[test]
    fn csc_degrees_match_coo() {
        let g = sample();
        let csc = Csc::from_coo(&g);
        let deg = g.in_degrees();
        for v in VertexId::all(g.num_vertices()) {
            assert_eq!(csc.in_degree(v) as u32, deg[v.index()]);
        }
    }

    #[test]
    fn neighbors_carry_weights() {
        let g = CooGraph::from_edges(3, vec![Edge::new(0, 2, 7.5), Edge::new(0, 1, 2.5)]).unwrap();
        let csr = Csr::from_coo(&g);
        let mut pairs: Vec<(u32, f32)> = csr
            .neighbors(VertexId::new(0))
            .map(|(v, w)| (v.raw(), w))
            .collect();
        pairs.sort_by_key(|p| p.0);
        assert_eq!(pairs, vec![(1, 2.5), (2, 7.5)]);
    }

    #[test]
    fn csc_mirrors_reverse_edges() {
        let g = sample();
        let csc = Csc::from_coo(&g);
        for e in g.iter() {
            assert!(
                csc.in_neighbors(e.dst)
                    .any(|(v, w)| v == e.src && w == e.weight),
                "missing reverse of {e}"
            );
        }
    }

    #[test]
    fn empty_vertex_has_no_neighbors() {
        let g = CooGraph::from_edges(3, vec![Edge::new(0, 1, 1.0)]).unwrap();
        let csr = Csr::from_coo(&g);
        assert_eq!(csr.degree(VertexId::new(2)), 0);
        assert_eq!(csr.neighbors(VertexId::new(2)).count(), 0);
    }
}
