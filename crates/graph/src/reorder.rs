//! Vertex reordering (relabeling) transforms.
//!
//! The paper's related work (§VI) cites lightweight graph reordering
//! (Balaji & Lucia; Faldu et al.) as a locality lever for graph
//! accelerators. Reordering directly moves the tile-density profile that
//! dense-mapping redundancy depends on, so these transforms power the
//! repository's locality ablations: `random` destroys community structure,
//! `by_degree_descending` packs hubs together (hub-hub tiles become
//! dense), and `apply_permutation` supports any externally computed order.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::types::{Edge, VertexId};

/// Relabels vertices by `perm`, where `perm[old] = new`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `perm` is not a permutation
/// of `0..num_vertices`.
pub fn apply_permutation(graph: &CooGraph, perm: &[u32]) -> Result<CooGraph, GraphError> {
    let n = graph.num_vertices() as usize;
    if perm.len() != n {
        return Err(GraphError::InvalidParameter(format!(
            "permutation length {} does not match {} vertices",
            perm.len(),
            n
        )));
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p as usize >= n || seen[p as usize] {
            return Err(GraphError::InvalidParameter(
                "not a permutation of the vertex set".into(),
            ));
        }
        seen[p as usize] = true;
    }
    let edges = graph
        .iter()
        .map(|e| Edge {
            src: VertexId::new(perm[e.src.index()]),
            dst: VertexId::new(perm[e.dst.index()]),
            weight: e.weight,
        })
        .collect();
    CooGraph::from_edges(graph.num_vertices(), edges)
}

/// Random relabeling — the locality-destroying control.
pub fn random(graph: &CooGraph, seed: u64) -> CooGraph {
    let n = graph.num_vertices();
    let mut perm: Vec<u32> = (0..n).collect();
    perm.shuffle(&mut SmallRng::seed_from_u64(seed));
    // gaasx-lint: allow(panic-in-lib) -- a shuffled identity vector is a permutation by construction
    apply_permutation(graph, &perm).expect("shuffled identity is a permutation")
}

/// Relabels so vertices are ordered by descending total degree (hubs get
/// the lowest ids). This is the "hub clustering" flavour of lightweight
/// reordering: hub–hub adjacency concentrates in the top-left tiles.
pub fn by_degree_descending(graph: &CooGraph) -> CooGraph {
    let out = graph.out_degrees();
    let inn = graph.in_degrees();
    let mut order: Vec<u32> = (0..graph.num_vertices()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(out[v as usize] + inn[v as usize]));
    // order[rank] = old id; invert to perm[old] = rank.
    let mut perm = vec![0u32; graph.num_vertices() as usize];
    for (rank, &old) in order.iter().enumerate() {
        perm[old as usize] = rank as u32;
    }
    // gaasx-lint: allow(panic-in-lib) -- rank assignment over a sorted vertex list is a permutation by construction
    apply_permutation(graph, &perm).expect("degree order is a permutation")
}

/// The inverse of a permutation (`inv[perm[v]] = v`), e.g. to map results
/// computed on a reordered graph back to original ids.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `perm` is not a permutation.
pub fn invert_permutation(perm: &[u32]) -> Result<Vec<u32>, GraphError> {
    let n = perm.len();
    let mut inv = vec![u32::MAX; n];
    for (old, &new) in perm.iter().enumerate() {
        if new as usize >= n || inv[new as usize] != u32::MAX {
            return Err(GraphError::InvalidParameter(
                "not a permutation of the vertex set".into(),
            ));
        }
        inv[new as usize] = old as u32;
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::stats::TileDensityProfile;

    #[test]
    fn permutation_preserves_structure() {
        let g = generators::paper_fig7_graph();
        let perm = vec![4, 3, 2, 1, 0];
        let p = apply_permutation(&g, &perm).unwrap();
        assert_eq!(p.num_edges(), g.num_edges());
        // Degree multiset is invariant.
        let mut a = g.out_degrees();
        let mut b = p.out_degrees();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Edge (0,1,6.0) maps to (4,3,6.0).
        assert!(p
            .iter()
            .any(|e| e.src.raw() == 4 && e.dst.raw() == 3 && e.weight == 6.0));
    }

    #[test]
    fn rejects_non_permutations() {
        let g = generators::path_graph(3);
        assert!(apply_permutation(&g, &[0, 0, 1]).is_err());
        assert!(apply_permutation(&g, &[0, 1]).is_err());
        assert!(apply_permutation(&g, &[0, 1, 5]).is_err());
    }

    #[test]
    fn random_reorder_destroys_tile_locality() {
        let g = crate::datasets::PaperDataset::WikiVote
            .instantiate_graph(0.2)
            .unwrap();
        let before = TileDensityProfile::compute(&g, 16).unwrap();
        let shuffled = random(&g, 7);
        let after = TileDensityProfile::compute(&shuffled, 16).unwrap();
        assert!(
            after.nonzero_tiles > 2 * before.nonzero_tiles,
            "tiles {} -> {}",
            before.nonzero_tiles,
            after.nonzero_tiles
        );
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = generators::star_graph(32);
        let d = by_degree_descending(&g);
        // The hub (old vertex 0, degree 31) must become vertex 0.
        assert_eq!(d.out_degrees()[0], 31);
    }

    #[test]
    fn inverse_roundtrip() {
        let perm = vec![2u32, 0, 3, 1];
        let inv = invert_permutation(&perm).unwrap();
        for (old, &new) in perm.iter().enumerate() {
            assert_eq!(inv[new as usize] as usize, old);
        }
        assert!(invert_permutation(&[0, 0]).is_err());
    }

    #[test]
    fn reorder_preserves_reachability_count() {
        use crate::csr::Csr;
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 300).with_seed(4)).unwrap();
        let r = random(&g, 3);
        // Count vertices with any adjacency — invariant under relabeling.
        let live = |g: &CooGraph| {
            let csr = Csr::from_coo(g);
            let inn = g.in_degrees();
            VertexId::all(g.num_vertices())
                .filter(|&v| csr.degree(v) > 0 || inn[v.index()] > 0)
                .count()
        };
        assert_eq!(live(&g), live(&r));
    }
}
