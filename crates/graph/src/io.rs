//! Graph serialization: SNAP-style text edge lists and a compact binary
//! format.
//!
//! The paper's datasets ship as SNAP text edge lists; these readers accept
//! that format (`src dst [weight]` per line, `#`/`%` comments). The binary
//! format is a little-endian dump used by the shard-streaming model to
//! emulate sequential disk reads with realistic byte counts.

use std::io::{BufRead, BufReader, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::types::Edge;

/// Reads a text edge list: one `src dst [weight]` triple per line,
/// whitespace separated, with `#` or `%` comment lines ignored.
///
/// The vertex count is inferred as `max id + 1`. A missing weight defaults
/// to 1.0.
///
/// ```
/// let text = "# demo\n0 1\n1 2 5.5\n";
/// let g = gaasx_graph::io::read_edge_list(text.as_bytes())?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.edges()[1].weight, 5.5);
/// # Ok::<(), gaasx_graph::GraphError>(())
/// ```
///
/// # Errors
///
/// Returns [`GraphError::Parse`] with a line number for malformed lines and
/// [`GraphError::Io`] for read failures.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CooGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges = Vec::new();
    let mut max_vertex = 0u32;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_u32 = |tok: Option<&str>, what: &str| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                message: format!("missing {what}"),
            })?
            .parse::<u32>()
            .map_err(|e| GraphError::Parse {
                line: idx + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let src = parse_u32(parts.next(), "source vertex")?;
        let dst = parse_u32(parts.next(), "destination vertex")?;
        let weight = match parts.next() {
            None => 1.0,
            Some(tok) => tok.parse::<f32>().map_err(|e| GraphError::Parse {
                line: idx + 1,
                message: format!("bad weight: {e}"),
            })?,
        };
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: "trailing tokens after weight".into(),
            });
        }
        max_vertex = max_vertex.max(src).max(dst);
        edges.push(Edge::new(src, dst, weight));
    }
    let n = if edges.is_empty() { 0 } else { max_vertex + 1 };
    CooGraph::from_edges(n, edges)
}

/// Writes a graph as a text edge list with weights.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_edge_list<W: Write>(mut writer: W, graph: &CooGraph) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# gaasx edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.iter() {
        writeln!(writer, "{} {} {}", e.src.raw(), e.dst.raw(), e.weight)?;
    }
    Ok(())
}

const BINARY_MAGIC: u32 = 0x6758_4147; // "GAxg"
const BINARY_VERSION: u32 = 1;

/// Encodes a graph into the compact little-endian binary format
/// (magic, version, vertex count, edge count, then 12-byte edge records).
pub fn to_binary(graph: &CooGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + graph.num_edges() * 12);
    buf.put_u32_le(BINARY_MAGIC);
    buf.put_u32_le(BINARY_VERSION);
    buf.put_u32_le(graph.num_vertices());
    buf.put_u64_le(graph.num_edges() as u64);
    for e in graph.iter() {
        buf.put_u32_le(e.src.raw());
        buf.put_u32_le(e.dst.raw());
        buf.put_f32_le(e.weight);
    }
    buf.freeze()
}

/// Decodes a graph from the binary format produced by [`to_binary`].
///
/// # Errors
///
/// Returns [`GraphError::MalformedBinary`] on truncation, bad magic, or an
/// unsupported version, and [`GraphError::VertexOutOfRange`] if a record
/// references a vertex beyond the declared count.
pub fn from_binary(mut data: Bytes) -> Result<CooGraph, GraphError> {
    let need = |data: &Bytes, n: usize, what: &str| -> Result<(), GraphError> {
        if data.remaining() < n {
            Err(GraphError::MalformedBinary(format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(&data, 20, "header")?;
    let magic = data.get_u32_le();
    if magic != BINARY_MAGIC {
        return Err(GraphError::MalformedBinary(format!(
            "bad magic {magic:#010x}"
        )));
    }
    let version = data.get_u32_le();
    if version != BINARY_VERSION {
        return Err(GraphError::MalformedBinary(format!(
            "unsupported version {version}"
        )));
    }
    let num_vertices = data.get_u32_le();
    let num_edges = data.get_u64_le() as usize;
    need(&data, num_edges.saturating_mul(12), "edge records")?;
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let src = data.get_u32_le();
        let dst = data.get_u32_le();
        let weight = data.get_f32_le();
        edges.push(Edge::new(src, dst, weight));
    }
    CooGraph::from_edges(num_vertices, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn text_roundtrip() {
        let g = generators::paper_fig7_graph();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn text_reader_accepts_unweighted_and_comments() {
        let text = "# comment\n% another\n\n0 1\n2 3 4.5\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.edges()[0].weight, 1.0);
        assert_eq!(g.edges()[1].weight, 4.5);
    }

    #[test]
    fn text_reader_reports_line_numbers() {
        let text = "0 1\nbogus line\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_reader_rejects_trailing_tokens() {
        assert!(read_edge_list("0 1 2.0 junk\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn binary_roundtrip() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 300).with_seed(5)).unwrap();
        let bytes = to_binary(&g);
        assert_eq!(bytes.len(), 20 + 300 * 12);
        let back = from_binary(bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut raw = to_binary(&generators::path_graph(3)).to_vec();
        raw[0] ^= 0xff;
        assert!(matches!(
            from_binary(Bytes::from(raw)),
            Err(GraphError::MalformedBinary(_))
        ));
    }

    #[test]
    fn binary_rejects_truncation() {
        let raw = to_binary(&generators::path_graph(3));
        let cut = raw.slice(0..raw.len() - 4);
        assert!(from_binary(cut).is_err());
    }

    #[test]
    fn binary_rejects_bad_version() {
        let mut raw = to_binary(&generators::path_graph(3)).to_vec();
        raw[4] = 99;
        assert!(from_binary(Bytes::from(raw)).is_err());
    }
}
