//! Catalog of the paper's evaluation workloads (Table II), instantiated as
//! synthetic equivalents.
//!
//! The original SNAP/KONECT exports are not redistributable, so each dataset
//! is substituted by an R-MAT (or bipartite-Zipf) generator parameterized to
//! match its vertex/edge counts and skew class; see DESIGN.md §5 for why this
//! preserves the behaviours the accelerator is sensitive to. A `scale`
//! factor shrinks vertex and edge counts proportionally (constant average
//! degree) so the large graphs stay tractable on a laptop; `scale = 1.0`
//! reproduces the full published sizes.

use serde::{Deserialize, Serialize};

use crate::bipartite::BipartiteGraph;
use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::generators::{localize, rmat, LocalityConfig, RmatConfig};

/// The seven evaluation datasets of Table II.
///
/// Figure 5 of the paper abbreviates Amazon as "AW"; we use `AZ`
/// consistently, matching Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    /// WikiVote (WV): Wikipedia voting data, 7.0 K vertices / 103 K edges.
    WikiVote,
    /// Slashdot (SD): Slashdot Zoo social network, 82 K / 948 K.
    Slashdot,
    /// Amazon (AZ): co-purchasing network, 262 K / 1.2 M.
    Amazon,
    /// WebGoogle (WG): Google web graph, 0.88 M / 5.1 M.
    WebGoogle,
    /// LiveJournal (LJ): social network, 4.8 M / 69 M.
    LiveJournal,
    /// Orkut (OR): social network, 3.0 M / 106 M.
    Orkut,
    /// Netflix (NF): 480 K users × 17.8 K movies, 99 M ratings (bipartite).
    Netflix,
}

/// A dataset instantiated at some scale: either a directed graph or a
/// bipartite rating graph (Netflix).
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetInstance {
    /// A directed weighted graph (all Table II entries except Netflix).
    Graph(CooGraph),
    /// A bipartite user–item rating graph (Netflix).
    Ratings(BipartiteGraph),
}

impl PaperDataset {
    /// All graph datasets used by the PR/BFS/SSSP experiments, in the
    /// paper's figure order (SD, LJ, WV, WG, AZ, OR).
    pub const GRAPH_DATASETS: [PaperDataset; 6] = [
        PaperDataset::Slashdot,
        PaperDataset::LiveJournal,
        PaperDataset::WikiVote,
        PaperDataset::WebGoogle,
        PaperDataset::Amazon,
        PaperDataset::Orkut,
    ];

    /// Table II abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            PaperDataset::WikiVote => "WV",
            PaperDataset::Slashdot => "SD",
            PaperDataset::Amazon => "AZ",
            PaperDataset::WebGoogle => "WG",
            PaperDataset::LiveJournal => "LJ",
            PaperDataset::Orkut => "OR",
            PaperDataset::Netflix => "NF",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::WikiVote => "WikiVote",
            PaperDataset::Slashdot => "Slashdot",
            PaperDataset::Amazon => "Amazon",
            PaperDataset::WebGoogle => "WebGoogle",
            PaperDataset::LiveJournal => "LiveJournal",
            PaperDataset::Orkut => "Orkut",
            PaperDataset::Netflix => "Netflix",
        }
    }

    /// Table II description.
    pub fn description(self) -> &'static str {
        match self {
            PaperDataset::WikiVote => "Wikipedia voting data",
            PaperDataset::Slashdot => "Slashdot Zoo social network",
            PaperDataset::Amazon => "Amazon co-purchasing network",
            PaperDataset::WebGoogle => "Web graph from Google",
            PaperDataset::LiveJournal => "LiveJournal social network",
            PaperDataset::Orkut => "Orkut social network",
            PaperDataset::Netflix => "Netflix movie user ratings",
        }
    }

    /// Published vertex count (users for Netflix).
    pub fn full_vertices(self) -> u32 {
        match self {
            PaperDataset::WikiVote => 7_000,
            PaperDataset::Slashdot => 82_000,
            PaperDataset::Amazon => 262_000,
            PaperDataset::WebGoogle => 880_000,
            PaperDataset::LiveJournal => 4_800_000,
            PaperDataset::Orkut => 3_000_000,
            PaperDataset::Netflix => 480_000,
        }
    }

    /// Published edge/rating count.
    pub fn full_edges(self) -> usize {
        match self {
            PaperDataset::WikiVote => 103_000,
            PaperDataset::Slashdot => 948_000,
            PaperDataset::Amazon => 1_200_000,
            PaperDataset::WebGoogle => 5_100_000,
            PaperDataset::LiveJournal => 69_000_000,
            PaperDataset::Orkut => 106_000_000,
            PaperDataset::Netflix => 99_000_000,
        }
    }

    /// Item count for Netflix (movies); `None` for unipartite datasets.
    pub fn full_items(self) -> Option<u32> {
        match self {
            PaperDataset::Netflix => Some(17_800),
            _ => None,
        }
    }

    /// Whether the dataset is the bipartite rating graph.
    pub fn is_bipartite(self) -> bool {
        matches!(self, PaperDataset::Netflix)
    }

    /// R-MAT quadrant skew class for this dataset. Social networks use the
    /// Graph500 defaults; the web graph is slightly more hierarchical; the
    /// co-purchase network is closer to uniform.
    fn rmat_skew(self) -> (f64, f64, f64) {
        match self {
            PaperDataset::WebGoogle => (0.63, 0.17, 0.12),
            PaperDataset::Amazon => (0.48, 0.22, 0.22),
            _ => (0.57, 0.19, 0.19),
        }
    }

    /// Deterministic per-dataset seed so experiments are reproducible while
    /// datasets remain mutually distinct.
    fn seed(self) -> u64 {
        match self {
            PaperDataset::WikiVote => 0x5751,
            PaperDataset::Slashdot => 0x5d01,
            PaperDataset::Amazon => 0xa201,
            PaperDataset::WebGoogle => 0x5701,
            PaperDataset::LiveJournal => 0x1f01,
            PaperDataset::Orkut => 0x0801,
            PaperDataset::Netflix => 0x0f01,
        }
    }

    /// Vertex count at the given scale (≥ 16 vertices always).
    pub fn scaled_vertices(self, scale: f64) -> u32 {
        ((self.full_vertices() as f64 * scale).round() as u32).max(16)
    }

    /// Edge count at the given scale (≥ 32 edges always).
    pub fn scaled_edges(self, scale: f64) -> usize {
        ((self.full_edges() as f64 * scale).round() as usize).max(32)
    }

    /// Instantiates the dataset at `scale` (1.0 = full published size).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `scale` is not positive
    /// or not finite.
    pub fn instantiate(self, scale: f64) -> Result<DatasetInstance, GraphError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(GraphError::InvalidParameter(format!(
                "dataset scale must be positive and finite, got {scale}"
            )));
        }
        if self == PaperDataset::Netflix {
            // Scale each side by √scale so the rating-matrix *density*
            // (99 M / (480 K × 17.8 K) ≈ 1.2 %) — the property the dense
            // baselines' tile redundancy depends on — is preserved while
            // the rating count scales linearly.
            let side = scale.sqrt();
            let users = ((self.full_vertices() as f64 * side).round() as u32).max(16);
            // gaasx-lint: allow(panic-in-lib) -- this arm only runs for the bipartite dataset, which always has an item count
            let items = ((self.full_items().expect("netflix has items") as f64 * side).round()
                as u32)
                .max(16);
            let ratings = self.scaled_edges(scale);
            return Ok(DatasetInstance::Ratings(BipartiteGraph::synthetic(
                users,
                items,
                ratings,
                self.seed(),
            )?));
        }
        let (a, b, c) = self.rmat_skew();
        let config = RmatConfig::new(self.scaled_vertices(scale), self.scaled_edges(scale))
            .with_skew(a, b, c)
            .with_seed(self.seed());
        let raw = rmat(&config)?;
        // Crawl-ordered real graphs have strong community locality (dense
        // diagonal-band tiles); the locality pass reproduces it. See
        // `generators::localize`.
        let localized = localize(
            &raw,
            &LocalityConfig::new(self.locality_fraction()).with_hub_exponent(1.4),
        )?;
        Ok(DatasetInstance::Graph(localized))
    }

    /// Fraction of edges that stay inside a vertex's community window.
    /// Social networks are the most clustered; web/co-purchase graphs a
    /// little less.
    fn locality_fraction(self) -> f64 {
        match self {
            PaperDataset::WebGoogle | PaperDataset::Amazon => 0.50,
            _ => 0.60,
        }
    }

    /// Instantiates as a plain graph, erroring for Netflix.
    ///
    /// # Errors
    ///
    /// As [`PaperDataset::instantiate`], plus an error for the bipartite
    /// dataset.
    pub fn instantiate_graph(self, scale: f64) -> Result<CooGraph, GraphError> {
        match self.instantiate(scale)? {
            DatasetInstance::Graph(g) => Ok(g),
            DatasetInstance::Ratings(_) => Err(GraphError::InvalidParameter(
                "netflix is bipartite; use instantiate()".into(),
            )),
        }
    }

    /// Instantiates as a rating graph, erroring for unipartite datasets.
    ///
    /// # Errors
    ///
    /// As [`PaperDataset::instantiate`], plus an error for unipartite
    /// datasets.
    pub fn instantiate_ratings(self, scale: f64) -> Result<BipartiteGraph, GraphError> {
        match self.instantiate(scale)? {
            DatasetInstance::Ratings(r) => Ok(r),
            DatasetInstance::Graph(_) => Err(GraphError::InvalidParameter(format!(
                "{} is not a rating dataset",
                self.name()
            ))),
        }
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table2() {
        assert_eq!(PaperDataset::WikiVote.full_vertices(), 7_000);
        assert_eq!(PaperDataset::Orkut.full_edges(), 106_000_000);
        assert_eq!(PaperDataset::Netflix.full_items(), Some(17_800));
    }

    #[test]
    fn scaled_instantiation_matches_requested_size() {
        let g = PaperDataset::WikiVote.instantiate_graph(0.1).unwrap();
        // R-MAT rounds vertices up to a power of two.
        assert!(g.num_vertices() >= 700);
        assert_eq!(g.num_edges(), 10_300);
    }

    #[test]
    fn netflix_is_bipartite() {
        let r = PaperDataset::Netflix.instantiate_ratings(0.001).unwrap();
        // Sides scale by √0.001 ≈ 0.0316.
        assert_eq!(r.num_users(), 15_179);
        assert_eq!(r.num_items(), 563);
        assert_eq!(r.num_ratings(), 99_000);
        assert!(PaperDataset::Netflix.instantiate_graph(0.001).is_err());
    }

    #[test]
    fn netflix_scaling_preserves_density() {
        let full_density = PaperDataset::Netflix.full_edges() as f64
            / (f64::from(PaperDataset::Netflix.full_vertices())
                * f64::from(PaperDataset::Netflix.full_items().unwrap()));
        let r = PaperDataset::Netflix.instantiate_ratings(0.01).unwrap();
        let scaled_density =
            r.num_ratings() as f64 / (f64::from(r.num_users()) * f64::from(r.num_items()));
        assert!(
            (scaled_density / full_density - 1.0).abs() < 0.05,
            "density drifted: {scaled_density} vs {full_density}"
        );
    }

    #[test]
    fn unipartite_rejects_ratings_accessor() {
        assert!(PaperDataset::WikiVote.instantiate_ratings(0.1).is_err());
    }

    #[test]
    fn rejects_bad_scale() {
        assert!(PaperDataset::WikiVote.instantiate(0.0).is_err());
        assert!(PaperDataset::WikiVote.instantiate(f64::NAN).is_err());
        assert!(PaperDataset::WikiVote.instantiate(-1.0).is_err());
    }

    #[test]
    fn tiny_scale_clamps_to_minimums() {
        let g = PaperDataset::WikiVote.instantiate_graph(1e-9).unwrap();
        assert!(g.num_vertices() >= 16);
        assert!(g.num_edges() >= 32);
    }

    #[test]
    fn datasets_are_mutually_distinct() {
        let a = PaperDataset::WikiVote.instantiate_graph(0.01).unwrap();
        let b = PaperDataset::Slashdot.instantiate_graph(0.01).unwrap();
        assert_ne!(a.edges().first(), b.edges().first());
    }

    #[test]
    fn display_uses_abbrev() {
        assert_eq!(PaperDataset::LiveJournal.to_string(), "LJ");
    }
}
