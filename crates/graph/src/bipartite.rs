//! Bipartite user–item rating graphs for collaborative filtering.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::types::Edge;

/// An undirected bipartite rating graph between a user set and an item set.
///
/// This is the input to collaborative filtering in the paper (§IV): edges are
/// `(user, item, rating)` triples, the Netflix workload being 480 K users ×
/// 17.8 K movies with 99 M ratings.
///
/// Users and items have separate 0-based id spaces; [`BipartiteGraph::to_coo`]
/// maps items after users in one combined space when a unified graph is
/// needed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BipartiteGraph {
    num_users: u32,
    num_items: u32,
    ratings: Vec<Rating>,
}

/// A single user→item rating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// User id in `0..num_users`.
    pub user: u32,
    /// Item id in `0..num_items`.
    pub item: u32,
    /// Rating value (Netflix scale: 1.0–5.0).
    pub value: f32,
}

impl BipartiteGraph {
    /// Creates a rating graph from explicit triples.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if a user or item id is out
    /// of range.
    pub fn from_ratings(
        num_users: u32,
        num_items: u32,
        ratings: Vec<Rating>,
    ) -> Result<Self, GraphError> {
        for r in &ratings {
            if r.user >= num_users {
                return Err(GraphError::VertexOutOfRange {
                    vertex: r.user,
                    num_vertices: num_users,
                });
            }
            if r.item >= num_items {
                return Err(GraphError::VertexOutOfRange {
                    vertex: r.item,
                    num_vertices: num_items,
                });
            }
        }
        Ok(BipartiteGraph {
            num_users,
            num_items,
            ratings,
        })
    }

    /// Generates a synthetic rating graph with power-law item popularity.
    ///
    /// Item popularity follows a Zipf-like distribution (exponent ≈ 0.8,
    /// matching Netflix's head-heavy catalog); users are drawn uniformly.
    /// Ratings are integers 1–5.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if either side is empty while
    /// ratings are requested.
    pub fn synthetic(
        num_users: u32,
        num_items: u32,
        num_ratings: usize,
        seed: u64,
    ) -> Result<Self, GraphError> {
        if (num_users == 0 || num_items == 0) && num_ratings > 0 {
            return Err(GraphError::InvalidParameter(
                "bipartite: cannot rate with an empty side".into(),
            ));
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        // Zipf sampling via inverse-CDF over precomputed cumulative weights.
        let exponent = 0.8f64;
        let mut cum = Vec::with_capacity(num_items as usize);
        let mut total = 0.0f64;
        for i in 0..num_items {
            total += 1.0 / ((i as f64 + 1.0).powf(exponent));
            cum.push(total);
        }
        let mut ratings = Vec::with_capacity(num_ratings);
        for _ in 0..num_ratings {
            let user = rng.gen_range(0..num_users);
            let r = rng.gen::<f64>() * total;
            // gaasx-lint: allow(panic-in-lib) -- cumulative sums of finite popularity weights cannot be NaN
            let item = match cum.binary_search_by(|c| c.partial_cmp(&r).expect("finite")) {
                Ok(i) | Err(i) => (i as u32).min(num_items - 1),
            };
            let value = rng.gen_range(1..=5) as f32;
            ratings.push(Rating { user, item, value });
        }
        Ok(BipartiteGraph {
            num_users,
            num_items,
            ratings,
        })
    }

    /// Number of users.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of items.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of ratings.
    pub fn num_ratings(&self) -> usize {
        self.ratings.len()
    }

    /// The rating triples.
    pub fn ratings(&self) -> &[Rating] {
        &self.ratings
    }

    /// Iterates the rating triples.
    pub fn iter(&self) -> std::slice::Iter<'_, Rating> {
        self.ratings.iter()
    }

    /// Converts to a unified [`CooGraph`], mapping item `i` to vertex
    /// `num_users + i`. Edges run user → item carrying the rating as weight.
    pub fn to_coo(&self) -> CooGraph {
        let n = self.num_users + self.num_items;
        let edges = self
            .ratings
            .iter()
            .map(|r| Edge::new(r.user, self.num_users + r.item, r.value))
            .collect();
        // gaasx-lint: allow(panic-in-lib) -- user/item ids were range-checked when the ratings were generated
        CooGraph::from_edges(n, edges).expect("bipartite ids validated at construction")
    }

    /// Per-item rating counts (popularity profile).
    pub fn item_popularity(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_items as usize];
        for r in &self.ratings {
            counts[r.item as usize] += 1;
        }
        counts
    }

    /// Per-user rating counts.
    pub fn user_activity(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_users as usize];
        for r in &self.ratings {
            counts[r.user as usize] += 1;
        }
        counts
    }

    /// Mean rating value, or `None` for an empty graph.
    pub fn mean_rating(&self) -> Option<f32> {
        if self.ratings.is_empty() {
            return None;
        }
        Some(self.ratings.iter().map(|r| r.value).sum::<f32>() / self.ratings.len() as f32)
    }
}

impl<'a> IntoIterator for &'a BipartiteGraph {
    type Item = &'a Rating;
    type IntoIter = std::slice::Iter<'a, Rating>;

    fn into_iter(self) -> Self::IntoIter {
        self.ratings.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_shapes() {
        let g = BipartiteGraph::synthetic(100, 20, 1000, 42).unwrap();
        assert_eq!(g.num_users(), 100);
        assert_eq!(g.num_items(), 20);
        assert_eq!(g.num_ratings(), 1000);
        assert!(g.iter().all(|r| (1.0..=5.0).contains(&r.value)));
    }

    #[test]
    fn synthetic_popularity_is_skewed() {
        let g = BipartiteGraph::synthetic(500, 100, 20_000, 7).unwrap();
        let pop = g.item_popularity();
        // Head item should dominate the tail item by a wide margin.
        assert!(
            pop[0] > 5 * pop[99].max(1),
            "head {} tail {}",
            pop[0],
            pop[99]
        );
    }

    #[test]
    fn to_coo_offsets_items() {
        let g = BipartiteGraph::from_ratings(
            3,
            2,
            vec![Rating {
                user: 2,
                item: 1,
                value: 4.0,
            }],
        )
        .unwrap();
        let coo = g.to_coo();
        assert_eq!(coo.num_vertices(), 5);
        assert_eq!(coo.edges()[0].dst.raw(), 3 + 1);
    }

    #[test]
    fn validates_ids() {
        let bad = BipartiteGraph::from_ratings(
            1,
            1,
            vec![Rating {
                user: 0,
                item: 5,
                value: 1.0,
            }],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn mean_rating_handles_empty() {
        let g = BipartiteGraph::from_ratings(1, 1, vec![]).unwrap();
        assert!(g.mean_rating().is_none());
    }

    #[test]
    fn deterministic_generation() {
        let a = BipartiteGraph::synthetic(10, 10, 100, 3).unwrap();
        let b = BipartiteGraph::synthetic(10, 10, 100, 3).unwrap();
        assert_eq!(a, b);
    }
}
