//! Graph statistics backing the paper's motivation analysis.
//!
//! §II-C of the paper motivates sparse mapping with a tile-density study:
//! "90 % of the non-zero sub-blocks have only 10 % density" across
//! representative workloads. [`TileDensityProfile`] reproduces that analysis
//! for any graph and tile size, and [`DegreeStats`] summarizes the power-law
//! degree structure.

use serde::{Deserialize, Serialize};

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::partition::GridPartition;
use crate::types::VertexId;

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: u32,
    /// Maximum degree.
    pub max: u32,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: u32,
    /// 99th-percentile degree.
    pub p99: u32,
    /// Fraction of vertices with degree zero.
    pub zero_fraction: f64,
}

impl DegreeStats {
    /// Computes stats over a degree sequence.
    ///
    /// Returns `None` for an empty sequence.
    pub fn from_degrees(degrees: &[u32]) -> Option<Self> {
        if degrees.is_empty() {
            return None;
        }
        let mut sorted = degrees.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let sum: u64 = sorted.iter().map(|&d| d as u64).sum();
        Some(DegreeStats {
            min: sorted[0],
            max: sorted[n - 1],
            mean: sum as f64 / n as f64,
            median: sorted[n / 2],
            p99: sorted[((n as f64 * 0.99) as usize).min(n - 1)],
            zero_fraction: sorted.iter().take_while(|&&d| d == 0).count() as f64 / n as f64,
        })
    }

    /// Ratio of maximum to mean degree — a quick hub-iness indicator
    /// (≫ 1 for scale-free graphs, ≈ small constant for ER/grids).
    pub fn skew(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        self.max as f64 / self.mean
    }
}

/// Distribution of per-tile density over the non-empty tiles of an adjacency
/// matrix partitioned into `tile_size × tile_size` blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileDensityProfile {
    /// Tile side length used.
    pub tile_size: u32,
    /// Total number of tiles in the grid.
    pub total_tiles: usize,
    /// Number of tiles holding at least one edge.
    pub nonzero_tiles: usize,
    /// Density of each non-empty tile (unsorted).
    pub densities: Vec<f64>,
}

impl TileDensityProfile {
    /// Computes the profile of `graph` at the given tile size.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `tile_size` is zero or the
    /// graph is empty of vertices.
    pub fn compute(graph: &CooGraph, tile_size: u32) -> Result<Self, GraphError> {
        let grid = GridPartition::new(graph, tile_size)?;
        let total_tiles = (grid.num_intervals() as usize).pow(2);
        let densities: Vec<f64> = grid
            .shards()
            .filter(|s| !s.is_empty())
            .map(|s| s.density())
            .collect();
        Ok(TileDensityProfile {
            tile_size,
            total_tiles,
            nonzero_tiles: densities.len(),
            densities,
        })
    }

    /// Fraction of non-empty tiles whose density is at most `threshold`.
    ///
    /// The paper's headline number is `fraction_below(0.10) ≈ 0.9` for
    /// real-world graphs at 16×16 tiles.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.densities.is_empty() {
            return 0.0;
        }
        self.densities.iter().filter(|&&d| d <= threshold).count() as f64
            / self.densities.len() as f64
    }

    /// Mean density of non-empty tiles.
    pub fn mean_density(&self) -> f64 {
        if self.densities.is_empty() {
            return 0.0;
        }
        self.densities.iter().sum::<f64>() / self.densities.len() as f64
    }

    /// Fraction of all tiles that are completely empty (GraphR skips these).
    pub fn empty_tile_fraction(&self) -> f64 {
        if self.total_tiles == 0 {
            return 0.0;
        }
        (self.total_tiles - self.nonzero_tiles) as f64 / self.total_tiles as f64
    }
}

/// Mean local clustering coefficient over vertices with degree ≥ 2,
/// treating the graph as undirected.
///
/// Real crawled graphs (the paper's Table II datasets) have coefficients in
/// the 0.1–0.4 range while same-size Erdős–Rényi graphs sit near zero;
/// R-MAT's hub core already clusters strongly. `O(Σ deg²)`; intended for
/// analysis, not hot paths.
pub fn clustering_coefficient(graph: &CooGraph) -> f64 {
    use crate::csr::Csr;
    let sym = graph.symmetrized().without_self_loops();
    let csr = Csr::from_coo(&sym);
    let n = sym.num_vertices();
    let mut total = 0.0f64;
    let mut counted = 0usize;
    let mut mark = vec![false; n as usize];
    for v in VertexId::all(n) {
        let neigh = csr.neighbor_slice(v);
        let d = neigh.len();
        if d < 2 {
            continue;
        }
        for &u in neigh {
            mark[u as usize] = true;
        }
        let mut closed = 0usize;
        for &u in neigh {
            for &w in csr.neighbor_slice(VertexId::new(u)) {
                if w as usize != v.index() && mark[w as usize] {
                    closed += 1;
                }
            }
        }
        for &u in neigh {
            mark[u as usize] = false;
        }
        total += closed as f64 / (d * (d - 1)) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Maximum-likelihood estimate of the power-law exponent α of a degree
/// sequence (`p(d) ∝ d^-α` for `d ≥ d_min`), via the discrete Clauset–
/// Shalizi–Newman approximation `α ≈ 1 + n / Σ ln(d / (d_min − ½))`.
///
/// Returns `None` if fewer than 10 samples reach `d_min`. Scale-free graphs
/// land in α ∈ (1.5, 3.5); Erdős–Rényi degree tails give much larger α.
pub fn power_law_exponent(degrees: &[u32], d_min: u32) -> Option<f64> {
    let d_min = d_min.max(1);
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d >= d_min)
        .map(|&d| f64::from(d))
        .collect();
    if tail.len() < 10 {
        return None;
    }
    let denom: f64 = tail
        .iter()
        .map(|&d| (d / (f64::from(d_min) - 0.5)).ln())
        .sum();
    Some(1.0 + tail.len() as f64 / denom)
}

/// One-stop summary of a graph for reports and Table II-style output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSummary {
    /// Vertex count.
    pub num_vertices: u32,
    /// Edge count.
    pub num_edges: usize,
    /// Whole-matrix density `E / V²`.
    pub density: f64,
    /// Out-degree stats.
    pub out_degrees: DegreeStats,
    /// In-degree stats.
    pub in_degrees: DegreeStats,
}

impl GraphSummary {
    /// Computes the summary.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for a graph with no vertices.
    pub fn compute(graph: &CooGraph) -> Result<Self, GraphError> {
        let out = DegreeStats::from_degrees(&graph.out_degrees())
            .ok_or_else(|| GraphError::InvalidParameter("summary: graph has no vertices".into()))?;
        let inn = DegreeStats::from_degrees(&graph.in_degrees())
            // gaasx-lint: allow(panic-in-lib) -- both degree vectors have num_vertices entries; the out-degree check above already handled empty
            .expect("in-degrees nonempty if out-degrees were");
        Ok(GraphSummary {
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            density: graph.density(),
            out_degrees: out,
            in_degrees: inn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, RmatConfig};

    #[test]
    fn degree_stats_basics() {
        let s = DegreeStats::from_degrees(&[0, 0, 1, 2, 3, 10]).unwrap();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 10);
        assert!((s.mean - 16.0 / 6.0).abs() < 1e-12);
        assert!((s.zero_fraction - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty_is_none() {
        assert!(DegreeStats::from_degrees(&[]).is_none());
    }

    #[test]
    fn rmat_tiles_are_mostly_sparse() {
        // The paper's 90 %-below-10 %-density claim should hold for a
        // reasonably sized scale-free graph at 16×16 tiles.
        let g = generators::rmat(&RmatConfig::new(1 << 12, 40_000).with_seed(13)).unwrap();
        let profile = TileDensityProfile::compute(&g, 16).unwrap();
        assert!(
            profile.fraction_below(0.10) > 0.8,
            "fraction below 10% density: {}",
            profile.fraction_below(0.10)
        );
    }

    #[test]
    fn complete_graph_tiles_are_dense() {
        let g = generators::complete_graph(32);
        let profile = TileDensityProfile::compute(&g, 16).unwrap();
        // Diagonal tiles miss the self-loop diagonal; off-diagonal are full.
        assert!(profile.mean_density() > 0.9);
        assert_eq!(profile.empty_tile_fraction(), 0.0);
    }

    #[test]
    fn path_graph_tiles_nearly_empty_grid() {
        let g = generators::path_graph(64);
        let profile = TileDensityProfile::compute(&g, 16).unwrap();
        // A path only populates the diagonal band: 4 diagonal tiles plus 3
        // superdiagonal crossings.
        assert_eq!(profile.total_tiles, 16);
        assert_eq!(profile.nonzero_tiles, 7);
    }

    #[test]
    fn summary_roundtrip() {
        let g = generators::paper_fig7_graph();
        let s = GraphSummary::compute(&g).unwrap();
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 8);
        assert_eq!(s.in_degrees.max, 3);
    }

    #[test]
    fn clustering_is_high_for_complete_and_zero_for_star() {
        assert!((clustering_coefficient(&generators::complete_graph(8)) - 1.0).abs() < 1e-9);
        assert_eq!(clustering_coefficient(&generators::star_graph(8)), 0.0);
    }

    #[test]
    fn clustering_of_triangle() {
        let g = generators::cycle_graph(3);
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scale_free_graphs_cluster_more_than_random_ones() {
        let rmat = generators::rmat(&RmatConfig::new(1 << 11, 16_000).with_seed(4)).unwrap();
        let er = generators::erdos_renyi(
            &generators::ErdosRenyiConfig::new(1 << 11, 16_000).with_seed(4),
        )
        .unwrap();
        let c_rmat = clustering_coefficient(&rmat);
        let c_er = clustering_coefficient(&er);
        assert!(c_rmat > 3.0 * c_er, "rmat {c_rmat} vs er {c_er}");
    }

    #[test]
    fn power_law_exponent_separates_rmat_from_er() {
        let rmat = generators::rmat(&RmatConfig::new(1 << 12, 50_000).with_seed(2)).unwrap();
        let er = generators::erdos_renyi(
            &generators::ErdosRenyiConfig::new(1 << 12, 50_000).with_seed(2),
        )
        .unwrap();
        let a_rmat = power_law_exponent(&rmat.out_degrees(), 4).unwrap();
        let a_er = power_law_exponent(&er.out_degrees(), 4).unwrap();
        assert!(a_rmat < a_er, "rmat {a_rmat} vs er {a_er}");
        assert!((1.2..4.0).contains(&a_rmat), "rmat alpha {a_rmat}");
    }

    #[test]
    fn power_law_needs_enough_tail() {
        assert!(power_law_exponent(&[1, 2, 3], 2).is_none());
    }

    #[test]
    fn skew_separates_rmat_from_er() {
        let rmat = generators::rmat(&RmatConfig::new(1 << 10, 8192).with_seed(1)).unwrap();
        let er =
            generators::erdos_renyi(&generators::ErdosRenyiConfig::new(1 << 10, 8192).with_seed(1))
                .unwrap();
        let s_rmat = DegreeStats::from_degrees(&rmat.out_degrees()).unwrap();
        let s_er = DegreeStats::from_degrees(&er.out_degrees()).unwrap();
        assert!(s_rmat.skew() > 2.0 * s_er.skew());
    }
}
