//! Incremental graph construction with cleanup policies.

use crate::coo::CooGraph;
use crate::error::GraphError;
use crate::types::{Edge, Weight};

/// Builder for [`CooGraph`] with configurable cleanup.
///
/// Real edge-list files (and synthetic generators) routinely contain self
/// loops and duplicate edges; the paper's datasets are cleaned SNAP exports.
/// The builder makes the cleanup policy explicit instead of hiding it in the
/// constructors.
///
/// ```
/// use gaasx_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .drop_self_loops(true)
///     .dedup(true)
///     .edge(0, 1, 1.0)
///     .edge(0, 1, 9.0) // duplicate: dropped
///     .edge(2, 2, 1.0) // self loop: dropped
///     .build()?;
/// assert_eq!(g.num_edges(), 1);
/// # Ok::<(), gaasx_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: u32,
    edges: Vec<Edge>,
    drop_self_loops: bool,
    dedup: bool,
    symmetrize: bool,
}

impl GraphBuilder {
    /// Starts building a graph over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            drop_self_loops: false,
            dedup: false,
            symmetrize: false,
        }
    }

    /// If set, self loops are removed at [`GraphBuilder::build`] time.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// If set, duplicate `(src, dst)` pairs are removed at build time,
    /// keeping the first occurrence in `(src, dst)` order.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// If set, the reverse of every edge is added at build time
    /// (deduplicated), producing an undirected graph.
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// Adds a weighted edge.
    pub fn edge(mut self, src: u32, dst: u32, weight: Weight) -> Self {
        self.edges.push(Edge::new(src, dst, weight));
        self
    }

    /// Adds an unweighted edge (weight 1.0).
    pub fn unweighted_edge(self, src: u32, dst: u32) -> Self {
        self.edge(src, dst, 1.0)
    }

    /// Adds many edges at once.
    pub fn edges<I: IntoIterator<Item = Edge>>(mut self, iter: I) -> Self {
        self.edges.extend(iter);
        self
    }

    /// Number of edges currently staged (before cleanup).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph, applying the configured cleanup policies.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any staged edge endpoint
    /// is out of range.
    pub fn build(self) -> Result<CooGraph, GraphError> {
        let mut g = CooGraph::from_edges(self.num_vertices, self.edges)?;
        if self.drop_self_loops {
            g = g.without_self_loops();
        }
        if self.symmetrize {
            g = g.symmetrized();
        } else if self.dedup {
            g = g.deduplicated();
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_build_keeps_everything() {
        let g = GraphBuilder::new(3)
            .unweighted_edge(0, 0)
            .unweighted_edge(0, 1)
            .unweighted_edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let g = GraphBuilder::new(3)
            .unweighted_edge(0, 1)
            .unweighted_edge(1, 2)
            .symmetrize(true)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn build_validates_range() {
        let err = GraphBuilder::new(1).unweighted_edge(0, 3).build();
        assert!(err.is_err());
    }

    #[test]
    fn edges_bulk_add() {
        let g = GraphBuilder::new(5)
            .edges((0..4).map(|i| Edge::unweighted(i, i + 1)))
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 4);
    }
}
