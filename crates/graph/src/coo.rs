//! Coordinate-list (COO) graph representation.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::types::{Edge, VertexId, Weight};

/// A directed, weighted graph stored as a coordinate list of edges.
///
/// COO is the *native* on-device representation of GaaS-X: each edge's
/// `(src, dst)` pair occupies one CAM-crossbar row, its weight the matching
/// MAC-crossbar row (paper Fig 7). It is also the on-disk format the paper's
/// shard layout (Fig 2) slices into intervals.
///
/// The struct enforces one invariant: every edge endpoint is within
/// `0..num_vertices`.
///
/// ```
/// use gaasx_graph::{CooGraph, Edge};
///
/// let g = CooGraph::from_edges(4, vec![Edge::new(0, 1, 2.0), Edge::new(2, 3, 1.0)])?;
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), gaasx_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooGraph {
    num_vertices: u32,
    edges: Vec<Edge>,
}

impl CooGraph {
    /// Creates a graph with `num_vertices` vertices and no edges.
    pub fn empty(num_vertices: u32) -> Self {
        CooGraph {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a graph from an explicit edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any endpoint is
    /// `>= num_vertices`.
    pub fn from_edges(num_vertices: u32, edges: Vec<Edge>) -> Result<Self, GraphError> {
        for e in &edges {
            for v in [e.src, e.dst] {
                if v.raw() >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: v.raw(),
                        num_vertices,
                    });
                }
            }
        }
        Ok(CooGraph {
            num_vertices,
            edges,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns true if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edge list as a slice.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates over the edges.
    pub fn iter(&self) -> std::slice::Iter<'_, Edge> {
        self.edges.iter()
    }

    /// Consumes the graph and returns the raw edge list.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Appends an edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is out of
    /// range.
    pub fn push_edge(&mut self, edge: Edge) -> Result<(), GraphError> {
        for v in [edge.src, edge.dst] {
            if v.raw() >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v.raw(),
                    num_vertices: self.num_vertices,
                });
            }
        }
        self.edges.push(edge);
        Ok(())
    }

    /// Returns the graph with every edge reversed (the transpose).
    ///
    /// Pull-style algorithms (PageRank gather at destinations) run on the
    /// transpose of a push-style edge list.
    pub fn transposed(&self) -> Self {
        CooGraph {
            num_vertices: self.num_vertices,
            edges: self.edges.iter().map(|e| e.reversed()).collect(),
        }
    }

    /// Sorts edges by `(dst, src)`.
    ///
    /// The paper assumes "edges within a sub-shard are sorted by destination
    /// vertices" (§III-B); this is the whole-graph equivalent.
    pub fn sort_by_dst(&mut self) {
        self.edges
            .sort_unstable_by_key(|e| (e.dst.raw(), e.src.raw()));
    }

    /// Sorts edges by `(src, dst)`.
    pub fn sort_by_src(&mut self) {
        self.edges
            .sort_unstable_by_key(|e| (e.src.raw(), e.dst.raw()));
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.src.index()] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.dst.index()] += 1;
        }
        deg
    }

    /// Total edge weight leaving each vertex.
    pub fn out_weight_sums(&self) -> Vec<Weight> {
        let mut sums = vec![0.0; self.num_vertices as usize];
        for e in &self.edges {
            sums[e.src.index()] += e.weight;
        }
        sums
    }

    /// Returns a copy with self loops removed.
    pub fn without_self_loops(&self) -> Self {
        CooGraph {
            num_vertices: self.num_vertices,
            edges: self
                .edges
                .iter()
                .copied()
                .filter(|e| !e.is_self_loop())
                .collect(),
        }
    }

    /// Returns a copy with duplicate `(src, dst)` pairs removed, keeping the
    /// first occurrence.
    pub fn deduplicated(&self) -> Self {
        let mut edges = self.edges.clone();
        edges.sort_by_key(|e| (e.src.raw(), e.dst.raw()));
        edges.dedup_by_key(|e| (e.src.raw(), e.dst.raw()));
        CooGraph {
            num_vertices: self.num_vertices,
            edges,
        }
    }

    /// Edge density relative to a complete directed graph (`E / V²`).
    pub fn density(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        self.edges.len() as f64 / (self.num_vertices as f64 * self.num_vertices as f64)
    }

    /// Returns the undirected closure: for every edge `(u, v)` the edge
    /// `(v, u)` is also present (deduplicated).
    pub fn symmetrized(&self) -> Self {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        edges.extend_from_slice(&self.edges);
        edges.extend(self.edges.iter().map(|e| e.reversed()));
        CooGraph {
            num_vertices: self.num_vertices,
            edges,
        }
        .deduplicated()
    }
}

impl<'a> IntoIterator for &'a CooGraph {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

impl Extend<Edge> for CooGraph {
    /// Extends the edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range; use [`CooGraph::push_edge`]
    /// for fallible insertion.
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        for e in iter {
            // gaasx-lint: allow(panic-in-lib) -- the Extend trait cannot return a Result; the panic contract is documented on the impl
            self.push_edge(e).expect("edge endpoint out of range");
        }
    }
}

impl VertexId {
    /// Iterates all vertex ids of a graph with `n` vertices.
    pub fn all(n: u32) -> impl Iterator<Item = VertexId> {
        (0..n).map(VertexId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CooGraph {
        CooGraph::from_edges(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 2.0),
                Edge::new(1, 3, 3.0),
                Edge::new(2, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_edges_validates_endpoints() {
        let err = CooGraph::from_edges(2, vec![Edge::new(0, 5, 1.0)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn transpose_involution() {
        let g = diamond();
        assert_eq!(g.transposed().transposed(), g);
    }

    #[test]
    fn transpose_swaps_degrees() {
        let g = diamond();
        assert_eq!(g.transposed().out_degrees(), g.in_degrees());
    }

    #[test]
    fn sorting_by_dst() {
        let mut g = diamond();
        g.sort_by_dst();
        let dsts: Vec<u32> = g.iter().map(|e| e.dst.raw()).collect();
        assert!(dsts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let g = CooGraph::from_edges(
            3,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(0, 1, 9.0),
                Edge::new(1, 2, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(g.deduplicated().num_edges(), 2);
    }

    #[test]
    fn self_loop_removal() {
        let g = CooGraph::from_edges(2, vec![Edge::new(0, 0, 1.0), Edge::new(0, 1, 1.0)]).unwrap();
        assert_eq!(g.without_self_loops().num_edges(), 1);
    }

    #[test]
    fn symmetrize_doubles_asymmetric_edges() {
        let g = diamond();
        let s = g.symmetrized();
        assert_eq!(s.num_edges(), 8);
        // Symmetrizing twice changes nothing further.
        assert_eq!(s.symmetrized().num_edges(), 8);
    }

    #[test]
    fn density_of_diamond() {
        let g = diamond();
        assert!((g.density() - 4.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn push_edge_validates() {
        let mut g = CooGraph::empty(2);
        assert!(g.push_edge(Edge::new(0, 1, 1.0)).is_ok());
        assert!(g.push_edge(Edge::new(0, 2, 1.0)).is_err());
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn out_weight_sums_accumulate() {
        let g = diamond();
        let sums = g.out_weight_sums();
        assert_eq!(sums, vec![3.0, 3.0, 4.0, 0.0]);
    }
}
