//! Property-based tests of the graph substrate.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use gaasx_graph::generators::{self, RmatConfig};
use gaasx_graph::io;
use gaasx_graph::partition::GridPartition;
use gaasx_graph::{reorder, CooGraph, Csc, Csr, VertexId};

fn arb_graph() -> impl Strategy<Value = CooGraph> {
    (2u32..80, 0usize..300, any::<u64>()).prop_map(|(n, m, seed)| {
        generators::rmat(&RmatConfig::new(n, m.max(1)).with_seed(seed)).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binary_io_roundtrips(g in arb_graph()) {
        prop_assert_eq!(io::from_binary(io::to_binary(&g)).unwrap(), g);
    }

    #[test]
    fn text_io_preserves_edges(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_edge_list(&mut buf, &g).unwrap();
        let back = io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(back.num_edges(), g.num_edges());
        // Text reader infers the vertex count from max id; edges match.
        prop_assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn degree_sums_equal_edge_count(g in arb_graph()) {
        let out: u64 = g.out_degrees().iter().map(|&d| u64::from(d)).sum();
        let inn: u64 = g.in_degrees().iter().map(|&d| u64::from(d)).sum();
        prop_assert_eq!(out, g.num_edges() as u64);
        prop_assert_eq!(inn, g.num_edges() as u64);
    }

    #[test]
    fn csr_csc_agree_on_edge_multiset(g in arb_graph()) {
        let csr = Csr::from_coo(&g);
        let csc = Csc::from_coo(&g);
        let mut fwd: Vec<(u32, u32)> = Vec::new();
        let mut bwd: Vec<(u32, u32)> = Vec::new();
        for v in VertexId::all(g.num_vertices()) {
            for (u, _) in csr.neighbors(v) {
                fwd.push((v.raw(), u.raw()));
            }
            for (u, _) in csc.in_neighbors(v) {
                bwd.push((u.raw(), v.raw()));
            }
        }
        fwd.sort_unstable();
        bwd.sort_unstable();
        prop_assert_eq!(fwd, bwd);
    }

    #[test]
    fn partition_tiles_cover_all_edges(g in arb_graph(), interval in 1u32..40) {
        let grid = GridPartition::new(&g, interval).unwrap();
        prop_assert_eq!(grid.total_edges(), g.num_edges());
        prop_assert!(grid.num_nonempty_shards() <= g.num_edges().max(1));
    }

    #[test]
    fn symmetrize_is_idempotent(g in arb_graph()) {
        let s = g.symmetrized();
        prop_assert_eq!(s.symmetrized(), s.clone());
        // Symmetric graphs have equal in/out degrees.
        prop_assert_eq!(s.out_degrees(), s.in_degrees());
    }

    #[test]
    fn random_reorder_preserves_degree_multiset(g in arb_graph(), seed in any::<u64>()) {
        let r = reorder::random(&g, seed);
        let mut a = g.out_degrees();
        let mut b = r.out_degrees();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dedup_never_grows(g in arb_graph()) {
        let d = g.deduplicated();
        prop_assert!(d.num_edges() <= g.num_edges());
        prop_assert_eq!(d.deduplicated().num_edges(), d.num_edges());
    }
}
