//! Property-based tests of the crossbar device models.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use gaasx_xbar::fault::CamFaultState;
use gaasx_xbar::fixed::Quantizer;
use gaasx_xbar::geometry::{CamGeometry, MacGeometry};
use gaasx_xbar::{
    CamCrossbar, FaultModel, Fidelity, HitVector, MacCrossbar, MacDirection, SearchMode,
};

/// Strategy: cell contents for up to 16 rows × 16 cols plus matching
/// active-row inputs.
fn mac_setup() -> impl Strategy<Value = (Vec<Vec<u32>>, Vec<u32>)> {
    let rows = prop::collection::vec(prop::collection::vec(0u32..=0xFFFF, 1..=16), 1..=16);
    rows.prop_flat_map(|cells| {
        let n = cells.len();
        (Just(cells), prop::collection::vec(0u32..=0xFFFF, n..=n))
    })
}

fn loaded_mac(cells: &[Vec<u32>]) -> MacCrossbar {
    let mut mac = MacCrossbar::new(MacGeometry::paper(), Fidelity::Exact);
    for (r, row) in cells.iter().enumerate() {
        mac.write_row(r, row).unwrap();
    }
    mac
}

/// Decodes one raw tuple into a CAM operation — program, invalidate
/// (single row or bulk, the same paths spare-row remap exercises), or a
/// search over the src field, the dst field, the exact key, or an
/// arbitrary ternary mask — and applies it. Searches push their hit
/// vector into `out`.
fn apply_cam_op(cam: &mut CamCrossbar, op: (u8, u8, u8, u8), out: &mut Vec<HitVector>) {
    const SRC_MASK: u128 = 0xFFFF_FFFF_0000_0000;
    const DST_MASK: u128 = 0xFFFF_FFFF;
    let (code, a, b, c) = op;
    let row = usize::from(a) % 128;
    // Small vertex spaces force key collisions across rows.
    let src = u32::from(b) % 8;
    let dst = u32::from(c) % 8;
    let key = (u128::from(src) << 32) | u128::from(dst);
    match code % 8 {
        // Bias toward writes so searches see populated arrays.
        0..=2 => cam.write(row, key).unwrap(),
        3 => cam.invalidate(row).unwrap(),
        4 => cam.invalidate_all(),
        5 => out.push(cam.search(u128::from(src) << 32, SRC_MASK)),
        6 => out.push(cam.search(u128::from(dst), DST_MASK)),
        _ => out.push(cam.search(key, (u128::from(b) << 32) | u128::from(c))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of program/invalidate/remap/search operations —
    /// with or without a seeded fault model — yields identical hit
    /// vectors, device stats, and fault stats under `SearchMode::Linear`,
    /// `SearchMode::Indexed`, and (unresolved) `SearchMode::Auto`.
    #[test]
    fn linear_and_indexed_modes_agree(
        ops in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..80,
        ),
        seed in any::<u64>(),
        faulty in any::<bool>(),
    ) {
        let g = CamGeometry::paper();
        let run = |mode: SearchMode| {
            let mut cam = CamCrossbar::new(g);
            cam.set_search_mode(mode);
            if faulty {
                cam.set_faults(Some(CamFaultState::new(
                    FaultModel {
                        seed,
                        cam_stuck_ber: 0.01,
                        write_fail_rate: 0.05,
                        cam_upset_rate: 0.02,
                        ..FaultModel::none()
                    },
                    &g,
                )));
            }
            let mut hits = Vec::new();
            for &op in &ops {
                apply_cam_op(&mut cam, op, &mut hits);
            }
            (hits, cam.stats().clone(), cam.fault_stats().copied())
        };
        let lin = run(SearchMode::Linear);
        for mode in [SearchMode::Indexed, SearchMode::Auto] {
            let other = run(mode);
            prop_assert_eq!(&lin.0, &other.0, "hit vectors diverged under {}", mode);
            prop_assert_eq!(&lin.1, &other.1, "device stats diverged under {}", mode);
            prop_assert_eq!(&lin.2, &other.2, "fault stats diverged under {}", mode);
        }
    }

    /// The exact MAC equals the host-side dot product, per column.
    #[test]
    fn exact_mac_matches_host_math((cells, inputs) in mac_setup()) {
        let mut mac = loaded_mac(&cells);
        let active: Vec<usize> = (0..cells.len()).collect();
        let out = mac.mac(MacDirection::RowsToColumns, &active, &inputs).unwrap();
        for (col, &got) in out.iter().enumerate().take(16) {
            let want: u64 = cells
                .iter()
                .zip(&inputs)
                .map(|(row, &x)| u64::from(x) * u64::from(row.get(col).copied().unwrap_or(0)))
                .sum();
            prop_assert_eq!(got, want);
        }
    }

    /// MAC is additive over disjoint activation sets.
    #[test]
    fn mac_is_additive_over_row_sets((cells, inputs) in mac_setup()) {
        let mut mac = loaded_mac(&cells);
        let n = cells.len();
        let all: Vec<usize> = (0..n).collect();
        let whole = mac.mac(MacDirection::RowsToColumns, &all, &inputs).unwrap();
        let split = n / 2;
        let a = mac
            .mac(MacDirection::RowsToColumns, &all[..split], &inputs[..split])
            .unwrap();
        let b = mac
            .mac(MacDirection::RowsToColumns, &all[split..], &inputs[split..])
            .unwrap();
        for col in 0..16 {
            prop_assert_eq!(whole[col], a[col] + b[col]);
        }
    }

    /// Quantized (ADC-saturating) outputs never exceed exact outputs.
    #[test]
    fn quantized_never_exceeds_exact((cells, inputs) in mac_setup()) {
        let mut exact = loaded_mac(&cells);
        let mut quant = MacCrossbar::new(MacGeometry::paper(), Fidelity::Quantized);
        for (r, row) in cells.iter().enumerate() {
            quant.write_row(r, row).unwrap();
        }
        let active: Vec<usize> = (0..cells.len()).collect();
        let e = exact.mac(MacDirection::RowsToColumns, &active, &inputs).unwrap();
        let q = quant.mac(MacDirection::RowsToColumns, &active, &inputs).unwrap();
        for col in 0..16 {
            prop_assert!(q[col] <= e[col], "col {}: {} > {}", col, q[col], e[col]);
        }
    }

    /// Transposing the direction transposes the computation.
    #[test]
    fn transposed_mac_matches_host_math((cells, _inputs) in mac_setup()) {
        let mut mac = loaded_mac(&cells);
        // Drive the first min(cols, 16) columns with their index as input.
        let active: Vec<usize> = (0..8).collect();
        let inputs: Vec<u32> = (0..8).map(|i| i as u32 * 3 + 1).collect();
        let out = mac.mac(MacDirection::ColumnsToRows, &active, &inputs).unwrap();
        for (r, row) in cells.iter().enumerate() {
            let want: u64 = active
                .iter()
                .zip(&inputs)
                .map(|(&c, &x)| u64::from(x) * u64::from(row.get(c).copied().unwrap_or(0)))
                .sum();
            prop_assert_eq!(out[r], want);
        }
    }

    /// CAM search equals a brute-force masked-match filter.
    #[test]
    fn cam_search_matches_brute_force(
        entries in prop::collection::vec(any::<u64>(), 1..100),
        key in any::<u64>(),
        mask in any::<u64>(),
    ) {
        let mut cam = CamCrossbar::new(CamGeometry::paper());
        for (i, &e) in entries.iter().enumerate() {
            cam.write(i, u128::from(e)).unwrap();
        }
        let hits = cam.search(u128::from(key), u128::from(mask));
        for (i, &e) in entries.iter().enumerate() {
            let expect = (e ^ key) & mask == 0;
            prop_assert_eq!(hits.get(i), expect, "row {}", i);
        }
        // Rows beyond the written range never match.
        for i in entries.len()..128 {
            prop_assert!(!hits.get(i));
        }
    }

    /// Quantizer: encode∘decode error is bounded by one step, and encode
    /// is monotone.
    #[test]
    fn quantizer_roundtrip_and_monotonicity(
        max in 0.5f32..1000.0,
        bits in 4u32..20,
        a in 0.0f32..1.0,
        b in 0.0f32..1.0,
    ) {
        let q = Quantizer::for_max_value(max, bits).unwrap();
        let (va, vb) = (a * max, b * max);
        // Half a step plus slack for f32 division landing a hair past the
        // rounding boundary.
        prop_assert!((q.decode(q.encode(va)) - va).abs() <= q.step() * 0.505);
        if va <= vb {
            prop_assert!(q.encode(va) <= q.encode(vb));
        }
    }
}
