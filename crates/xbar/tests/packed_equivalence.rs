//! Packed-kernel equivalence gate: the word-parallel bit-plane kernels
//! must be **bit-identical** — same hit vectors, same MAC sums, same
//! device and fault stats — to the scalar reference kernels under any
//! interleaving of operations, any search mode, any fault seed, and any
//! bank depth (including partial last words, `rows % 64 != 0`). The
//! kernel is a pure host-speed knob; any observable divergence is a bug.

#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use gaasx_xbar::fault::{CamFaultState, MacFaultState};
use gaasx_xbar::geometry::{CamGeometry, MacGeometry};
use gaasx_xbar::{
    CamCrossbar, FaultModel, Fidelity, HitVector, Kernel, MacCrossbar, MacDirection, SearchMode,
};

/// Bank depths straddling the 64-row word boundary: one word exactly, a
/// partial single word, partial and full multi-word, and the paper depth.
const DEPTHS: [usize; 5] = [64, 70, 128, 130, 192];

const MODES: [SearchMode; 3] = [SearchMode::Linear, SearchMode::Indexed, SearchMode::Auto];

/// Decodes one raw tuple into a CAM operation — program, invalidate
/// (single row or bulk), kernel switch mid-stream, or a search over the
/// src field, the dst field, the exact key, or an arbitrary ternary mask.
fn apply_cam_op(
    cam: &mut CamCrossbar,
    rows: usize,
    flip_kernels: bool,
    op: (u8, u8, u8, u8),
    out: &mut Vec<HitVector>,
) {
    const SRC_MASK: u128 = 0xFFFF_FFFF_0000_0000;
    const DST_MASK: u128 = 0xFFFF_FFFF;
    let (code, a, b, c) = op;
    let row = usize::from(a) % rows;
    // Small vertex spaces force key collisions across rows.
    let src = u32::from(b) % 8;
    let dst = u32::from(c) % 8;
    let key = (u128::from(src) << 32) | u128::from(dst);
    match code % 9 {
        // Bias toward writes so searches see populated arrays.
        0..=2 => cam.write(row, key).unwrap(),
        3 => cam.invalidate(row).unwrap(),
        4 => cam.invalidate_all(),
        5 => out.push(cam.search(u128::from(src) << 32, SRC_MASK)),
        6 => out.push(cam.search(u128::from(dst), DST_MASK)),
        7 => out.push(cam.search(key, (u128::from(b) << 32) | u128::from(c))),
        _ => {
            // Mid-stream kernel switches must be seamless (they trigger
            // the lazy plane rebuild). Only the Packed run flips; the
            // Scalar reference stays scalar throughout.
            if flip_kernels {
                let other = match cam.kernel() {
                    Kernel::Packed => Kernel::Scalar,
                    Kernel::Scalar => Kernel::Packed,
                };
                cam.set_kernel(other);
            }
            out.push(cam.search(key, SRC_MASK | DST_MASK));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any op interleaving on any bank depth — fault-free or seeded-
    /// faulty, in every search mode, with kernel switches mid-stream —
    /// yields hit vectors, device stats, and fault stats bit-identical
    /// to the scalar linear-scan reference.
    #[test]
    fn packed_cam_matches_scalar(
        ops in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..80,
        ),
        depth_ix in 0usize..DEPTHS.len(),
        seed in any::<u64>(),
        faulty in any::<bool>(),
        mode_ix in 0usize..MODES.len(),
    ) {
        let rows = DEPTHS[depth_ix];
        let mode = MODES[mode_ix];
        let g = CamGeometry {
            rows,
            ..CamGeometry::paper()
        };
        let run = |kernel: Kernel, flip: bool| {
            let mut cam = CamCrossbar::new(g);
            cam.set_search_mode(mode);
            cam.set_kernel(kernel);
            if faulty {
                cam.set_faults(Some(CamFaultState::new(
                    FaultModel {
                        seed,
                        cam_stuck_ber: 0.01,
                        write_fail_rate: 0.05,
                        cam_upset_rate: 0.02,
                        ..FaultModel::none()
                    },
                    &g,
                )));
            }
            let mut hits = Vec::new();
            for &op in &ops {
                apply_cam_op(&mut cam, rows, flip, op, &mut hits);
            }
            (hits, cam.stats().clone(), cam.fault_stats().copied())
        };
        let scalar = run(Kernel::Scalar, false);
        let packed = run(Kernel::Packed, false);
        let flappy = run(Kernel::Packed, true);
        prop_assert_eq!(&scalar.0, &packed.0, "hit vectors diverged");
        prop_assert_eq!(&scalar.1, &packed.1, "device stats diverged");
        prop_assert_eq!(&scalar.2, &packed.2, "fault stats diverged");
        prop_assert_eq!(&scalar.0, &flappy.0, "kernel flip changed hits");
        prop_assert_eq!(&scalar.1, &flappy.1, "kernel flip changed stats");
    }

    /// Quantized MAC bursts — full (`mac`) and restricted read-out
    /// (`mac_lines_into`), both directions, fault-free or stuck-cell
    /// seeded — produce bit-identical sums and stats in both kernels.
    #[test]
    fn packed_mac_matches_scalar(
        cells in prop::collection::vec(
            prop::collection::vec(0u32..=0xFFFF, 1..=16),
            1..=16,
        ),
        seed in any::<u64>(),
        faulty in any::<bool>(),
        transposed in any::<bool>(),
    ) {
        let g = MacGeometry::paper();
        let n = cells.len();
        let inputs: Vec<u32> = (0..n).map(|i| (i as u32 * 7919 + 13) & 0xFFFF).collect();
        let active: Vec<usize> = (0..n).collect();
        let direction = if transposed {
            MacDirection::ColumnsToRows
        } else {
            MacDirection::RowsToColumns
        };
        // Restricted read-out lines: every other crossed line.
        let crossed = if transposed { g.rows } else { g.cols };
        let lines: Vec<usize> = (0..crossed).step_by(2).collect();
        let run = |kernel: Kernel| {
            let mut mac = MacCrossbar::new(g, Fidelity::Quantized);
            mac.set_kernel(kernel);
            if faulty {
                mac.set_faults(Some(MacFaultState::new(
                    FaultModel {
                        seed,
                        mac_stuck_ber: 0.02,
                        ..FaultModel::none()
                    },
                    &g,
                )));
            }
            for (r, row) in cells.iter().enumerate() {
                mac.write_row(r, row).unwrap();
            }
            let full = mac.mac(direction, &active, &inputs).unwrap();
            let mut restricted = Vec::new();
            mac.mac_lines_into(direction, &active, &inputs, &lines, &mut restricted)
                .unwrap();
            (full, restricted, mac.stats().clone())
        };
        let scalar = run(Kernel::Scalar);
        let packed = run(Kernel::Packed);
        prop_assert_eq!(&scalar.0, &packed.0, "full-burst sums diverged");
        prop_assert_eq!(&scalar.1, &packed.1, "restricted sums diverged");
        prop_assert_eq!(&scalar.2, &packed.2, "device stats diverged");
        // Restricted read-out agrees with the full burst line-for-line.
        for (i, &l) in lines.iter().enumerate() {
            prop_assert_eq!(packed.1[i], packed.0[l], "line {}", l);
        }
    }
}
