//! An inline small-vector of crossbar row indices.
//!
//! The CAM exact-match index maps a field key to the rows storing it. Most
//! keys match only a handful of rows (a vertex's edges inside one 128-edge
//! block), so the row list stays inline — no heap allocation — and spills
//! to a `Vec` only for hub vertices whose fan-in exceeds the inline
//! capacity.

/// Rows held inline before spilling to the heap.
const INLINE: usize = 6;

/// A row-index list that stores up to [`INLINE`] entries without
/// allocating.
#[derive(Debug, Clone)]
pub(crate) enum SmallRows {
    /// The common case: few rows, stored in place.
    Inline {
        /// Occupied prefix of `rows`.
        len: u8,
        /// Inline storage; only `rows[..len]` is meaningful.
        rows: [u32; INLINE],
    },
    /// Hub case: the list outgrew the inline capacity.
    Spilled(Vec<u32>),
}

impl SmallRows {
    /// An empty list (inline, no allocation).
    pub fn new() -> Self {
        SmallRows::Inline {
            len: 0,
            rows: [0; INLINE],
        }
    }

    /// Number of rows held.
    pub fn len(&self) -> usize {
        match self {
            SmallRows::Inline { len, .. } => *len as usize,
            SmallRows::Spilled(v) => v.len(),
        }
    }

    /// Whether no rows are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a row (order is not meaningful — the consumer sets bits in
    /// a [`HitVector`](crate::HitVector)).
    pub fn push(&mut self, row: u32) {
        match self {
            SmallRows::Inline { len, rows } => {
                let n = *len as usize;
                if n < INLINE {
                    rows[n] = row;
                    *len += 1;
                } else {
                    // gaasx-lint: allow(hot-reachable-alloc) -- one-time inline->heap spill per long row; steady-state searches never re-enter this arm
                    let mut spilled = Vec::with_capacity(INLINE * 2);
                    spilled.extend_from_slice(&rows[..]);
                    spilled.push(row);
                    *self = SmallRows::Spilled(spilled);
                }
            }
            SmallRows::Spilled(v) => v.push(row),
        }
    }

    /// Removes one occurrence of `row` (swap-remove; order is not
    /// meaningful). Returns whether the row was present.
    pub fn remove(&mut self, row: u32) -> bool {
        match self {
            SmallRows::Inline { len, rows } => {
                let n = *len as usize;
                match rows[..n].iter().position(|&r| r == row) {
                    Some(p) => {
                        rows[p] = rows[n - 1];
                        *len -= 1;
                        true
                    }
                    None => false,
                }
            }
            SmallRows::Spilled(v) => match v.iter().position(|&r| r == row) {
                Some(p) => {
                    v.swap_remove(p);
                    true
                }
                None => false,
            },
        }
    }

    /// Iterates the held rows (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let (inline, spilled): (&[u32], &[u32]) = match self {
            SmallRows::Inline { len, rows } => (&rows[..*len as usize], &[]),
            SmallRows::Spilled(v) => (&[], v.as_slice()),
        };
        inline.iter().chain(spilled.iter()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(s: &SmallRows) -> Vec<u32> {
        let mut v: Vec<u32> = s.iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut s = SmallRows::new();
        assert!(s.is_empty());
        for i in 0..INLINE as u32 {
            s.push(i);
        }
        assert!(matches!(s, SmallRows::Inline { .. }));
        assert_eq!(s.len(), INLINE);
        assert_eq!(sorted(&s), (0..INLINE as u32).collect::<Vec<_>>());
    }

    #[test]
    fn spills_past_capacity_and_keeps_all_rows() {
        let mut s = SmallRows::new();
        for i in 0..40u32 {
            s.push(i);
        }
        assert!(matches!(s, SmallRows::Spilled(_)));
        assert_eq!(s.len(), 40);
        assert_eq!(sorted(&s), (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn remove_works_inline_and_spilled() {
        let mut s = SmallRows::new();
        for i in 0..4u32 {
            s.push(i);
        }
        assert!(s.remove(2));
        assert!(!s.remove(2));
        assert_eq!(sorted(&s), vec![0, 1, 3]);

        let mut big = SmallRows::new();
        for i in 0..20u32 {
            big.push(i);
        }
        assert!(big.remove(7));
        assert!(!big.remove(99));
        assert_eq!(big.len(), 19);
        assert!(!big.iter().any(|r| r == 7));
    }

    #[test]
    fn duplicate_rows_remove_one_at_a_time() {
        let mut s = SmallRows::new();
        s.push(5);
        s.push(5);
        assert!(s.remove(5));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(s.is_empty());
    }
}
