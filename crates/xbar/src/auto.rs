//! Analytical cost model resolving [`SearchMode::Auto`] to a concrete
//! host search algorithm per loaded block.
//!
//! [`SearchMode`] is a pure host-speed knob — both fixed modes produce
//! bit-identical hit vectors and device accounting — but neither fixed
//! choice is uniformly fastest. `results/BENCH_06.json` measured the
//! Indexed default *slowing down* three of four algorithms on the Table I
//! geometry fault-free (BFS to 0.60×) while winning 2.6–3.9× on deep
//! banks: whether an exact-match [`FieldIndex`](crate::CamCrossbar) pays
//! for itself depends on how many searches amortize its build.
//!
//! [`SearchCostModel`] captures that trade-off analytically. For one
//! loaded block it estimates
//!
//! * the **linear** host cost: every physical search scans all geometry
//!   rows, `Q × rows × scan_row_ns`;
//! * the **indexed** host cost: one index build over the block's valid
//!   entries plus `Q` hash probes and their hit enumeration,
//!   `occupancy × index_build_row_ns + Q × (index_probe_ns +
//!   (occupancy / distinct_keys) × index_hit_ns)`;
//!
//! where `Q`, the expected physical searches per block visit, comes from
//! the algorithm's declared [`SearchProfile`] (dense sweeps search every
//! distinct key; frontier traversals search a sparse active subset) times
//! the physical-per-logical multiplier (3 under CAM majority voting,
//! else 1). The per-op constants are calibrated as fractions of the
//! device time base ([`DeviceEnergyModel::cam_search_ns`], the same
//! 4 ns unit `energy`/`periphery` bill a search at), chosen so the
//! model reproduces the measured winner on every BENCH_06 row — see
//! [`SearchCostModel::calibrated`].
//!
//! The engine resolves `Auto` at block-program time, so a single run can
//! mix modes block-by-block; billing is mode-independent, so reports stay
//! bit-identical to both fixed modes no matter how blocks resolve.

use serde::{Deserialize, Serialize};

use gaasx_sim::Nanos;

use crate::cam::SearchMode;
use crate::energy::DeviceEnergyModel;

/// How an algorithm queries the blocks it loads — the access-pattern
/// input of the [`SearchCostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SearchProfile {
    /// One search per distinct key in the block on every visit — the
    /// dense sweep shape (PageRank, SpMV, GCN, collaborative filtering
    /// gather every distinct destination each iteration).
    #[default]
    OnePerKey,
    /// Searches only an algorithm-maintained active subset of the
    /// block's keys per visit (BFS/SSSP/CC expand frontier sources
    /// only). Modeled as `sqrt(distinct_keys)` expected searches: the
    /// frontier sweeps from a handful of sources to (rarely) all of
    /// them, and the geometric middle reproduces the measured BENCH_06
    /// decisions on both bank geometries.
    Frontier,
}

/// Shape of one loaded block, as the cost model sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockShape {
    /// Geometry rows the linear scan walks per search (scan length is
    /// the bank depth, not the occupancy — invalid rows still cost a
    /// compare).
    pub rows: usize,
    /// Valid entries in the block (index build size).
    pub occupancy: usize,
    /// Distinct values of the searched key field in the block.
    pub distinct_keys: usize,
    /// Physical searches issued per logical search: 3 when CAM
    /// majority voting re-searches under an active fault model, else 1.
    pub physical_per_logical: u32,
    /// The querying algorithm's declared access pattern.
    pub profile: SearchProfile,
}

/// Host-side per-operation costs of the two search algorithms, in
/// nanoseconds of host work. See the module docs for the decision rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchCostModel {
    /// Cost to compare one stored row in the linear scan.
    pub scan_row_ns: Nanos,
    /// Cost to hash-insert one valid entry while (re)building a
    /// [`FieldIndex`](crate::CamCrossbar) after a block load.
    pub index_build_row_ns: Nanos,
    /// Cost of one exact-match index probe.
    pub index_probe_ns: Nanos,
    /// Cost to enumerate one hit row out of a probe's match set.
    pub index_hit_ns: Nanos,
}

impl SearchCostModel {
    /// The model calibrated against the device time base: every constant
    /// is a fixed fraction of `energy.cam_search_ns` (4 ns in the Table I
    /// model), so sweeping the device model rescales the host model
    /// coherently. The fractions — scan 0.15×, build 2×, probe 5×,
    /// hit-enumeration 0.5× — were fit to `results/BENCH_06.json`: they
    /// reproduce the measured faster mode on all 20 rows (paper-bank
    /// fault-free frontier traversals → Linear; every fault row, every
    /// dense sweep, and every deep-bank row → Indexed).
    pub fn calibrated(energy: &DeviceEnergyModel) -> Self {
        let unit = energy.cam_search_ns;
        SearchCostModel {
            scan_row_ns: 0.15 * unit,
            index_build_row_ns: 2.0 * unit,
            index_probe_ns: 5.0 * unit,
            index_hit_ns: 0.5 * unit,
        }
    }

    /// [`calibrated`](Self::calibrated), adjusted for the host evaluation
    /// kernel — which, per `results/BENCH_08.json`, means *not at all*:
    /// the packed matcher evaluates 64 rows per plane word, but the
    /// fitted `scan_row_ns` is not a literal compare cost. It absorbs the
    /// per-search work the kernel cannot touch (hit-vector reset, stats,
    /// memo lookkeeping, fault-RNG draws), and BENCH_08 measured the same
    /// winner as the scalar BENCH_07 run on **every** row: fault rows
    /// still favor Indexed 1.2–1.4× (the memo is off, so O(1) probes beat
    /// even a word-parallel scan at high search volume) and fault-free
    /// paper rows sit at parity. An earlier 1/16 scan discount flipped
    /// paper dense/fault blocks to Linear and regressed Auto to 0.70–0.95×
    /// of the better fixed mode; any discount past ~1.3× flips fault-row
    /// frontier blocks first. Decision identity across kernels is also
    /// what keeps `Auto` runs bit-identical in *schedule* regardless of
    /// the host kernel a replay happens to use.
    pub fn calibrated_for(energy: &DeviceEnergyModel, kernel: crate::Kernel) -> Self {
        let _ = kernel;
        Self::calibrated(energy)
    }

    /// Expected physical searches against the block per visit: the
    /// profile's logical-search estimate times the
    /// [`physical_per_logical`](BlockShape::physical_per_logical)
    /// multiplier.
    pub fn expected_searches(&self, shape: &BlockShape) -> f64 {
        let d = shape.distinct_keys.max(1) as f64;
        let logical = match shape.profile {
            SearchProfile::OnePerKey => d,
            SearchProfile::Frontier => d.sqrt(),
        };
        logical * f64::from(shape.physical_per_logical.max(1))
    }

    /// Modeled host cost of serving one block visit with the linear scan.
    pub fn linear_ns(&self, shape: &BlockShape) -> Nanos {
        (self.expected_searches(shape) * shape.rows as f64) * self.scan_row_ns
    }

    /// Modeled host cost of serving one block visit through the index:
    /// one build over the valid entries, then per-search probe plus hit
    /// enumeration (average hits per probe = occupancy / distinct keys).
    pub fn indexed_ns(&self, shape: &BlockShape) -> Nanos {
        let d = shape.distinct_keys.max(1) as f64;
        let hits_per_probe = shape.occupancy as f64 / d;
        shape.occupancy as f64 * self.index_build_row_ns
            + self.expected_searches(shape)
                * (self.index_probe_ns + hits_per_probe * self.index_hit_ns)
    }

    /// Resolves a block to the cheaper concrete mode. Never returns
    /// [`SearchMode::Auto`].
    pub fn resolve(&self, shape: &BlockShape) -> SearchMode {
        if self.indexed_ns(shape) < self.linear_ns(shape) {
            SearchMode::Indexed
        } else {
            SearchMode::Linear
        }
    }
}

impl Default for SearchCostModel {
    fn default() -> Self {
        SearchCostModel::calibrated(&DeviceEnergyModel::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SearchCostModel {
        SearchCostModel::calibrated(&DeviceEnergyModel::paper())
    }

    /// A full paper-geometry block as the BENCH_06 workload shapes it:
    /// 128 rows, fully occupied, ~96 distinct values in the searched field.
    fn paper_block(profile: SearchProfile, voting: u32) -> BlockShape {
        BlockShape {
            rows: 128,
            occupancy: 128,
            distinct_keys: 96,
            physical_per_logical: voting,
            profile,
        }
    }

    #[test]
    fn paper_frontier_traversals_resolve_linear() {
        // The BENCH_06 regression rows: fault-free BFS/CC/SSSP on Table I
        // banks ran up to 1.66x slower under Indexed. The model must pick
        // Linear for the frontier profile at this geometry.
        let m = model();
        assert_eq!(
            m.resolve(&paper_block(SearchProfile::Frontier, 1)),
            SearchMode::Linear
        );
    }

    #[test]
    fn paper_dense_sweeps_resolve_indexed() {
        // Paper-bank PageRank measured 1.04-1.14x faster under Indexed:
        // a dense sweep issues one search per distinct key, enough to
        // amortize the build even at 128 rows.
        let m = model();
        assert_eq!(
            m.resolve(&paper_block(SearchProfile::OnePerKey, 1)),
            SearchMode::Indexed
        );
    }

    #[test]
    fn cam_majority_voting_flips_frontier_blocks_to_indexed() {
        // Every fault=true BENCH_06 row favored Indexed (1.06-1.50x):
        // 3-way search voting triples the physical searches per logical
        // one, which pushes even frontier traversals past break-even.
        let m = model();
        assert_eq!(
            m.resolve(&paper_block(SearchProfile::Frontier, 3)),
            SearchMode::Indexed
        );
    }

    #[test]
    fn deep_banks_resolve_indexed() {
        // The deep-bank PageRank rows (2.6-3.9x Indexed wins): at 2048
        // rows the O(rows) scan dwarfs everything else.
        let m = model();
        let deep = BlockShape {
            rows: 2048,
            occupancy: 2048,
            distinct_keys: 1200,
            physical_per_logical: 1,
            profile: SearchProfile::OnePerKey,
        };
        assert_eq!(m.resolve(&deep), SearchMode::Indexed);
    }

    #[test]
    fn degenerate_key_sets_resolve_linear_even_for_dense_sweeps() {
        // A block whose searched field holds 2 distinct values sees 2
        // searches per visit: no number of hits amortizes a 128-entry
        // build. (This is the shape the engine's mixed-bank memo
        // regression test uses.)
        let m = model();
        let skewed = BlockShape {
            distinct_keys: 2,
            ..paper_block(SearchProfile::OnePerKey, 1)
        };
        assert_eq!(m.resolve(&skewed), SearchMode::Linear);
    }

    #[test]
    fn resolution_is_monotone_in_search_count() {
        // More expected searches can only make the index more attractive:
        // once a shape resolves Indexed, scaling distinct_keys up (dense
        // profile: queries scale with it faster than hit enumeration
        // shrinks) never flips it back.
        let m = model();
        let mut last_indexed = false;
        for d in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let shape = BlockShape {
                distinct_keys: d,
                ..paper_block(SearchProfile::OnePerKey, 1)
            };
            let indexed = m.resolve(&shape) == SearchMode::Indexed;
            assert!(indexed || !last_indexed, "resolution flipped back at d={d}");
            last_indexed = indexed;
        }
        assert!(last_indexed, "full-width dense block must resolve Indexed");
    }

    #[test]
    fn calibration_is_kernel_invariant() {
        // BENCH_08 measured the same winner as scalar BENCH_07 on every
        // row, so the packed kernel must not perturb resolution: fitted
        // constants model per-search totals, not raw compare loops.
        use crate::Kernel;
        let e = DeviceEnergyModel::paper();
        assert_eq!(
            SearchCostModel::calibrated_for(&e, Kernel::Scalar),
            SearchCostModel::calibrated(&e)
        );
        assert_eq!(
            SearchCostModel::calibrated_for(&e, Kernel::Packed),
            SearchCostModel::calibrated(&e)
        );
    }

    #[test]
    fn costs_scale_with_the_device_time_base() {
        // Calibration contract: constants are fractions of cam_search_ns,
        // so a 2x device model yields exactly 2x host estimates and the
        // same decisions.
        let paper = DeviceEnergyModel::paper();
        let slow = DeviceEnergyModel {
            cam_search_ns: 2.0 * paper.cam_search_ns,
            ..paper
        };
        let (a, b) = (
            SearchCostModel::calibrated(&paper),
            SearchCostModel::calibrated(&slow),
        );
        let shape = paper_block(SearchProfile::OnePerKey, 1);
        assert!((b.linear_ns(&shape) - 2.0 * a.linear_ns(&shape)).ns().abs() < 1e-9);
        assert!(
            (b.indexed_ns(&shape) - 2.0 * a.indexed_ns(&shape))
                .ns()
                .abs()
                < 1e-9
        );
        assert_eq!(a.resolve(&shape), b.resolve(&shape));
    }
}
