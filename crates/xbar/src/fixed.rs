//! Fixed-point quantization between host `f32` values and crossbar codes.
//!
//! MAC crossbars store unsigned codes of `weight_bits` precision (16 bits in
//! the paper's geometry). The [`Quantizer`] owns the scale between real
//! values and codes so every layer (accelerator, baselines, oracles) agrees
//! on the representable range.

use serde::{Deserialize, Serialize};

use crate::error::XbarError;

/// A linear quantizer: `code = round(value / step)`, saturating at the code
/// range of `bits` unsigned bits.
///
/// ```
/// use gaasx_xbar::fixed::Quantizer;
///
/// let q = Quantizer::for_max_value(16.0, 16)?;
/// let code = q.encode(7.25);
/// assert!((q.decode(code) - 7.25).abs() < 2.0 * q.step());
/// # Ok::<(), gaasx_xbar::XbarError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    step: f32,
    bits: u32,
}

impl Quantizer {
    /// Creates a quantizer with an explicit step size.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] if `step` is not positive and
    /// finite, or `bits` is outside `1..=32`.
    pub fn new(step: f32, bits: u32) -> Result<Self, XbarError> {
        if !(step.is_finite() && step > 0.0) {
            return Err(XbarError::InvalidParameter(format!(
                "quantizer step must be positive and finite, got {step}"
            )));
        }
        if bits == 0 || bits > 32 {
            return Err(XbarError::InvalidParameter(format!(
                "quantizer bits {bits} outside 1..=32"
            )));
        }
        Ok(Quantizer { step, bits })
    }

    /// Creates a quantizer whose full code range spans `[0, max_value]`.
    ///
    /// # Errors
    ///
    /// As [`Quantizer::new`].
    pub fn for_max_value(max_value: f32, bits: u32) -> Result<Self, XbarError> {
        if !(max_value.is_finite() && max_value > 0.0) {
            return Err(XbarError::InvalidParameter(format!(
                "quantizer max_value must be positive and finite, got {max_value}"
            )));
        }
        if bits == 0 || bits > 32 {
            return Err(XbarError::InvalidParameter(format!(
                "quantizer bits {bits} outside 1..=32"
            )));
        }
        let levels = ((1u64 << bits) - 1) as f32;
        Quantizer::new(max_value / levels, bits)
    }

    /// The quantization step.
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Code precision in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest representable code.
    pub fn max_code(&self) -> u32 {
        (((1u64 << self.bits) - 1) as u32).max(1)
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        self.max_code() as f32 * self.step
    }

    /// Encodes a value, clamping negatives to zero and saturating above the
    /// representable range.
    pub fn encode(&self, value: f32) -> u32 {
        if !value.is_finite() || value <= 0.0 {
            return 0;
        }
        let code = (value / self.step).round();
        if code >= self.max_code() as f32 {
            self.max_code()
        } else {
            code as u32
        }
    }

    /// Decodes a code back to a value.
    pub fn decode(&self, code: u32) -> f32 {
        code.min(self.max_code()) as f32 * self.step
    }

    /// Decodes an accumulated sum of products of two coded operands, i.e.
    /// `Σ code_a · code_b` where both sides used `self` and `other`.
    pub fn decode_product_sum(&self, other: &Quantizer, sum: u64) -> f32 {
        sum as f32 * self.step * other.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_step() {
        let q = Quantizer::for_max_value(10.0, 12).unwrap();
        for v in [0.0f32, 0.1, 3.7, 9.99, 10.0] {
            let back = q.decode(q.encode(v));
            assert!((back - v).abs() <= q.step(), "{v} -> {back}");
        }
    }

    #[test]
    fn saturates_and_clamps() {
        let q = Quantizer::for_max_value(4.0, 4).unwrap();
        assert_eq!(q.encode(100.0), q.max_code());
        assert_eq!(q.encode(-3.0), 0);
        assert_eq!(q.encode(f32::NAN), 0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Quantizer::new(0.0, 8).is_err());
        assert!(Quantizer::new(1.0, 0).is_err());
        assert!(Quantizer::new(1.0, 33).is_err());
        assert!(Quantizer::for_max_value(-1.0, 8).is_err());
    }

    #[test]
    fn product_sum_decoding() {
        let qa = Quantizer::new(0.5, 8).unwrap();
        let qb = Quantizer::new(0.25, 8).unwrap();
        // (2 * 0.5) * (4 * 0.25) = 1.0; coded product-sum = 8.
        assert!((qa.decode_product_sum(&qb, 8) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn max_value_is_representable() {
        let q = Quantizer::for_max_value(16.0, 16).unwrap();
        assert!((q.max_value() - 16.0).abs() < 1e-3);
        assert_eq!(q.encode(16.0), q.max_code());
    }
}
