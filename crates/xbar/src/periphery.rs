//! Explicit models of the analog periphery: DAC, ADC, sample-and-hold, and
//! the shift-and-add reduction tree.
//!
//! [`crate::MacCrossbar`] folds these components into its bit-sliced MAC
//! evaluation for speed; this module exposes each stage as a standalone,
//! testable unit so periphery-level studies (converter resolution, sharing
//! ratios, sampling-rate limits) can be run without a full crossbar, and so
//! the folded implementation has an independent reference to agree with.

use serde::{Deserialize, Serialize};

use crate::error::XbarError;

/// A digital-to-analog converter of `bits` resolution.
///
/// Table I: 2-bit DACs, 256 per crossbar (one per row per bit-slice group).
/// The DAC turns one `bits`-wide digital input slice into a word-line
/// voltage level; a 16-bit input therefore streams over
/// `ceil(16 / bits)` conversion steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dac {
    bits: u32,
}

impl Dac {
    /// Creates a DAC with the given resolution.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] for zero or >16 bits.
    pub fn new(bits: u32) -> Result<Self, XbarError> {
        if bits == 0 || bits > 16 {
            return Err(XbarError::InvalidParameter(format!(
                "dac resolution {bits} outside 1..=16"
            )));
        }
        Ok(Dac { bits })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of conversion steps to stream an `input_bits`-wide value.
    pub fn steps_for(&self, input_bits: u32) -> u32 {
        input_bits.div_ceil(self.bits)
    }

    /// Extracts the digital slice driven at `step` (LSB-first).
    pub fn slice(&self, value: u32, step: u32) -> u32 {
        let mask = (1u32 << self.bits) - 1;
        (value >> (step * self.bits)) & mask
    }
}

/// An analog-to-digital converter of `bits` resolution: values above the
/// full scale saturate (the physical behaviour the `Quantized` fidelity
/// mode models).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    bits: u32,
    sample_rate_gsps: f64,
}

impl Adc {
    /// Creates an ADC (Table I: 6-bit at 1.2 GS/s).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] for zero/large resolutions
    /// or a non-positive sample rate.
    pub fn new(bits: u32, sample_rate_gsps: f64) -> Result<Self, XbarError> {
        if bits == 0 || bits > 16 {
            return Err(XbarError::InvalidParameter(format!(
                "adc resolution {bits} outside 1..=16"
            )));
        }
        if !(sample_rate_gsps.is_finite() && sample_rate_gsps > 0.0) {
            return Err(XbarError::InvalidParameter(
                "adc sample rate must be positive".into(),
            ));
        }
        Ok(Adc {
            bits,
            sample_rate_gsps,
        })
    }

    /// The paper's Table I ADC: 6-bit, 1.2 GS/s.
    pub fn paper() -> Self {
        Adc {
            bits: 6,
            sample_rate_gsps: 1.2,
        }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest representable sample.
    pub fn full_scale(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Samples an analog accumulation, saturating at full scale.
    pub fn sample(&self, analog: u64) -> u64 {
        analog.min(self.full_scale())
    }

    /// Whether `analog` would clip.
    pub fn clips(&self, analog: u64) -> bool {
        analog > self.full_scale()
    }

    /// Time to take `samples` conversions, ns.
    pub fn conversion_ns(&self, samples: u64) -> f64 {
        samples as f64 / self.sample_rate_gsps
    }

    /// Largest row count whose worst-case single-slice partial sum still
    /// fits: with `dac_bits`-wide input slices and `cell_bits`-wide cells,
    /// a row contributes at most `(2^dac − 1)(2^cell − 1)`.
    pub fn max_safe_rows(&self, dac_bits: u32, cell_bits: u32) -> u64 {
        let per_row = (((1u64 << dac_bits) - 1) * ((1u64 << cell_bits) - 1)).max(1);
        self.full_scale() / per_row
    }
}

/// A bank of sample-and-hold capacitors decoupling the analog column
/// currents from the shared ADC (Table I: 1152 per crossbar).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleHold {
    slots: Vec<Option<u64>>,
}

impl SampleHold {
    /// A bank with `slots` capacitors.
    pub fn new(slots: usize) -> Self {
        SampleHold {
            slots: vec![None; slots],
        }
    }

    /// Number of capacitors.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Captures an analog value into `slot`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::ColumnOutOfRange`] for a bad slot.
    pub fn capture(&mut self, slot: usize, analog: u64) -> Result<(), XbarError> {
        let cols = self.slots.len();
        *self
            .slots
            .get_mut(slot)
            .ok_or(XbarError::ColumnOutOfRange { col: slot, cols })? = Some(analog);
        Ok(())
    }

    /// Releases the value held in `slot` (destructive read, like the
    /// capacitor discharging into the ADC).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::ColumnOutOfRange`] for a bad slot or
    /// [`XbarError::InvalidParameter`] if the slot holds nothing.
    pub fn release(&mut self, slot: usize) -> Result<u64, XbarError> {
        let cols = self.slots.len();
        self.slots
            .get_mut(slot)
            .ok_or(XbarError::ColumnOutOfRange { col: slot, cols })?
            .take()
            .ok_or_else(|| XbarError::InvalidParameter(format!("slot {slot} holds no sample")))
    }
}

/// The shift-and-add reduction combining per-(step, slice) ADC samples into
/// the final digital dot product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShiftAdd {
    dac_bits: u32,
    cell_bits: u32,
}

impl ShiftAdd {
    /// Creates the reducer for given input/weight slice widths.
    pub fn new(dac_bits: u32, cell_bits: u32) -> Self {
        ShiftAdd {
            dac_bits,
            cell_bits,
        }
    }

    /// Weight of the partial at input `step` and weight `slice`:
    /// `2^(step·dac_bits + slice·cell_bits)`.
    pub fn weight(&self, step: u32, slice: u32) -> u64 {
        1u64 << (step * self.dac_bits + slice * self.cell_bits)
    }

    /// Reduces `(step, slice, sample)` partials into the final value.
    pub fn reduce(&self, partials: impl IntoIterator<Item = (u32, u32, u64)>) -> u64 {
        partials
            .into_iter()
            .map(|(step, slice, sample)| sample * self.weight(step, slice))
            .sum()
    }
}

/// Reference bit-sliced dot product built from the standalone periphery
/// stages — used by tests to validate [`crate::MacCrossbar`]'s folded
/// implementation.
pub fn reference_dot_product(
    weights: &[u32],
    inputs: &[u32],
    dac: Dac,
    adc: Adc,
    slices: u32,
    cell_bits: u32,
    input_bits: u32,
) -> u64 {
    let sa = ShiftAdd::new(dac.bits(), cell_bits);
    let cell_mask = (1u32 << cell_bits) - 1;
    let mut partials = Vec::new();
    for step in 0..dac.steps_for(input_bits) {
        for slice in 0..slices {
            let analog: u64 = weights
                .iter()
                .zip(inputs)
                .map(|(&w, &x)| {
                    u64::from(dac.slice(x, step))
                        * u64::from((w >> (slice * cell_bits)) & cell_mask)
                })
                .sum();
            partials.push((step, slice, adc.sample(analog)));
        }
    }
    sa.reduce(partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::MacGeometry;
    use crate::{Fidelity, MacCrossbar, MacDirection};

    #[test]
    fn dac_slices_lsb_first() {
        let dac = Dac::new(2).unwrap();
        assert_eq!(dac.steps_for(16), 8);
        assert_eq!(dac.slice(0b11_01_10, 0), 0b10);
        assert_eq!(dac.slice(0b11_01_10, 1), 0b01);
        assert_eq!(dac.slice(0b11_01_10, 2), 0b11);
    }

    #[test]
    fn adc_saturates() {
        let adc = Adc::paper();
        assert_eq!(adc.full_scale(), 63);
        assert_eq!(adc.sample(50), 50);
        assert_eq!(adc.sample(100), 63);
        assert!(adc.clips(64));
        assert!(!adc.clips(63));
    }

    #[test]
    fn adc_safe_rows_motivates_the_16_row_cap() {
        // With 2-bit inputs and 2-bit cells, one row contributes ≤ 9, so a
        // 6-bit ADC is only safe up to 7 rows at absolute worst case; the
        // paper's 16-row cap relies on typical (sparse, small-valued)
        // accumulations, which the ablation quantifies.
        let adc = Adc::paper();
        assert_eq!(adc.max_safe_rows(2, 2), 7);
        assert_eq!(Adc::new(8, 1.2).unwrap().max_safe_rows(2, 2), 28);
    }

    #[test]
    fn adc_timing() {
        let adc = Adc::paper();
        assert!((adc.conversion_ns(12) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sample_hold_is_destructive() {
        let mut sh = SampleHold::new(4);
        sh.capture(2, 99).unwrap();
        assert_eq!(sh.release(2).unwrap(), 99);
        assert!(sh.release(2).is_err());
        assert!(sh.capture(9, 1).is_err());
    }

    #[test]
    fn shift_add_weights() {
        let sa = ShiftAdd::new(2, 2);
        assert_eq!(sa.weight(0, 0), 1);
        assert_eq!(sa.weight(1, 0), 4);
        assert_eq!(sa.weight(0, 1), 4);
        assert_eq!(sa.weight(3, 7), 1 << 20);
        assert_eq!(sa.reduce([(0, 0, 3), (1, 0, 1)]), 7);
    }

    #[test]
    fn reference_pipeline_matches_folded_quantized_mac() {
        let geometry = MacGeometry::paper();
        let mut mac = MacCrossbar::new(geometry, Fidelity::Quantized);
        let weights: Vec<u32> = (0..8).map(|i| 0x1234 ^ (i * 977)).collect();
        let inputs: Vec<u32> = (0..8).map(|i| 0xBEE ^ (i * 313)).collect();
        for (r, &w) in weights.iter().enumerate() {
            mac.write_row(r, &[w]).unwrap();
        }
        let active: Vec<usize> = (0..8).collect();
        let folded = mac
            .mac(MacDirection::RowsToColumns, &active, &inputs)
            .unwrap()[0];
        let reference = reference_dot_product(
            &weights,
            &inputs,
            Dac::new(geometry.dac_bits).unwrap(),
            Adc::paper(),
            geometry.slices as u32,
            geometry.bits_per_cell,
            16,
        );
        assert_eq!(folded, reference);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Dac::new(0).is_err());
        assert!(Dac::new(20).is_err());
        assert!(Adc::new(0, 1.0).is_err());
        assert!(Adc::new(6, 0.0).is_err());
    }
}
