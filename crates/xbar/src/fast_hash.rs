//! A minimal multiply-fold hasher for the simulator's hot-path hash maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, but costs tens of nanoseconds per 16-byte CAM key — more
//! than the entire crossbar scan it is supposed to replace. The indexed
//! search path and the search memo hash millions of fixed-width integer
//! keys per run, all derived from graph data the process itself generated,
//! so collision-flooding resistance buys nothing here. [`FxHasher`] is the
//! classic Firefox/rustc multiply-rotate fold: one wrapping multiply per
//! word, a few instructions per key.
//!
//! Only integer-keyed maps should use this hasher; anything hashing
//! attacker-controlled strings should stay on the default hasher.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        assert_eq!(hash_of(42u128), hash_of(42u128));
        assert_ne!(hash_of(42u128), hash_of(43u128));
        // High and low halves both contribute.
        assert_ne!(hash_of(1u128 << 64), hash_of(1u128));
        assert_ne!(hash_of((1u128, 2u128)), hash_of((2u128, 1u128)));
    }

    #[test]
    fn byte_writes_cover_tail() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: FxHashMap<u128, u32> = FxHashMap::default();
        for i in 0..1000u128 {
            m.insert(i << 32, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(999u128 << 32)), Some(&999));
    }
}
