//! Ternary content-addressable memory (TCAM) crossbar model.

use serde::{Deserialize, Serialize};

use crate::error::XbarError;
use crate::fast_hash::FxHashMap;
use crate::fault::{CamFaultState, FaultStats};
use crate::geometry::CamGeometry;
use crate::hit_vector::HitVector;
use crate::kernel::Kernel;
use crate::packed::PackedPlanes;
use crate::XbarStats;

/// How the *functional* side of a CAM search computes its hit vector.
///
/// The simulated hardware always performs the same parallel TCAM operation
/// — all modes count identical [`XbarStats`] and return identical hit
/// vectors — the mode only selects the host algorithm that derives the
/// result:
///
/// * [`Linear`](SearchMode::Linear): scan all rows, O(rows) per search.
/// * [`Indexed`](SearchMode::Indexed): consult a per-field exact-match
///   index, O(hits) per search, with the linear scan retained for
///   arbitrary ternary masks and as a `debug_assert!` cross-check.
/// * [`Auto`](SearchMode::Auto) (the default): let the engine resolve
///   each loaded block to `Linear` or `Indexed` through the analytical
///   [`SearchCostModel`](crate::auto::SearchCostModel). Resolution
///   happens above the device — an `Auto` left unresolved on the
///   crossbar itself behaves exactly like `Indexed` (always correct,
///   and what standalone device users got before `Auto` existed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SearchMode {
    /// Scan every row per search (the pre-index reference path).
    Linear,
    /// Serve full-field searches from an incremental exact-match index.
    Indexed,
    /// Resolve per block via the cost model (device-side: as `Indexed`).
    #[default]
    Auto,
}

impl SearchMode {
    /// Whether this is a concrete host algorithm rather than the
    /// resolve-per-block marker.
    pub fn is_resolved(self) -> bool {
        self != SearchMode::Auto
    }
}

impl std::fmt::Display for SearchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SearchMode::Linear => "linear",
            SearchMode::Indexed => "indexed",
            SearchMode::Auto => "auto",
        })
    }
}

impl std::str::FromStr for SearchMode {
    type Err = String;

    /// Parses the CLI spelling (`linear | indexed | auto`), matching the
    /// serde snake_case encoding.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "linear" => Ok(SearchMode::Linear),
            "indexed" => Ok(SearchMode::Indexed),
            "auto" => Ok(SearchMode::Auto),
            other => Err(format!(
                "invalid search mode '{other}' (linear | indexed | auto)"
            )),
        }
    }
}

/// Most distinct search masks indexed before falling back to the linear
/// scan. Real workloads use exactly two (the src field and the dst field).
const MAX_INDEXED_MASKS: usize = 4;

/// A candidate set stored as a row-word bitmask — the same word layout a
/// [`HitVector`] uses, so an index probe is a straight word copy into the
/// packed result instead of a per-row scatter.
#[derive(Debug, Clone)]
struct RowMask {
    words: Vec<u64>,
    count: u32,
}

impl RowMask {
    // Method names are deliberately unique (`zeroed`, not `new`): the
    // lint's name-based call resolution would otherwise drag every
    // workspace `new`/`clear` into the index-patch hot fence.
    fn zeroed(words: usize) -> Self {
        RowMask {
            // gaasx-lint: allow(hot-reachable-alloc) -- one word-bitmask allocation per distinct field value at index (re)build; probes and patches are allocation-free
            words: vec![0; words],
            count: 0,
        }
    }

    fn set_row(&mut self, row: u32) {
        let w = &mut self.words[row as usize / 64];
        let bit = 1u64 << (row % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.count += 1;
        }
    }

    fn clear_row(&mut self, row: u32) {
        let w = &mut self.words[row as usize / 64];
        let bit = 1u64 << (row % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.count -= 1;
        }
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Exact-match index over one maskable field: `stored_bits & mask` → rows.
///
/// Built from the *post-fault* stored bits, so stuck-cell corruption is
/// indexed exactly as the device would match it. An index is **clean** when
/// `clean_epoch` equals the crossbar's entry-store epoch; single-row
/// mutations patch clean indexes in place, while bulk invalidation only
/// bumps the epoch and lets the index rebuild lazily on its next use.
#[derive(Debug, Clone)]
struct FieldIndex {
    mask: u128,
    /// Keyed through [`FxHashMap`]: the default SipHash hasher costs more
    /// per 16-byte key than the whole linear scan it replaces.
    rows: FxHashMap<u128, RowMask>,
    /// Row words per candidate bitmask (`⌈rows/64⌉` of the geometry).
    row_words: usize,
    clean_epoch: u64,
}

impl FieldIndex {
    fn new(mask: u128, row_words: usize) -> Self {
        FieldIndex {
            mask,
            rows: FxHashMap::default(),
            row_words,
            clean_epoch: 0,
        }
    }

    fn insert_row(&mut self, bits: u128, row: u32) {
        let row_words = self.row_words;
        self.rows
            .entry(bits & self.mask)
            .or_insert_with(|| RowMask::zeroed(row_words))
            .set_row(row);
    }

    fn remove_row(&mut self, bits: u128, row: u32) {
        let key = bits & self.mask;
        if let Some(rows) = self.rows.get_mut(&key) {
            rows.clear_row(row);
            if rows.is_empty() {
                self.rows.remove(&key);
            }
        }
    }
}

/// One stored CAM entry: up to 128 bits of content plus a valid flag.
///
/// GaaS-X packs an edge's `(src, dst)` vertex pair into one entry; the
/// ternary search masks whichever field is not being matched (paper §IV:
/// "The ternary CAM operation enables the flexibility to identify the edges
/// corresponding to a particular source or destination vertex").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CamEntry {
    /// The stored bits.
    pub bits: u128,
    /// Whether the row holds live data (cleared rows never match).
    pub valid: bool,
}

/// A ReRAM TCAM crossbar (paper Fig 3(b)).
///
/// Each search broadcasts a `(key, mask)` pair to all rows in parallel; a
/// row matches when every *unmasked* bit equals the key. The entire search
/// costs one 4 ns CAM operation regardless of how many rows match.
///
/// ```
/// use gaasx_xbar::{CamCrossbar, CamEntry};
/// use gaasx_xbar::geometry::CamGeometry;
///
/// let mut cam = CamCrossbar::new(CamGeometry::paper());
/// cam.write(0, 0xAB_01)?; // e.g. src=0xAB, dst=0x01
/// cam.write(1, 0xCD_01)?;
/// // Search dst field (low 8 bits) for 0x01, masking the src field.
/// let hits = cam.search(0x01, 0xFF);
/// assert_eq!(hits.count(), 2);
/// # Ok::<(), gaasx_xbar::XbarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CamCrossbar {
    geometry: CamGeometry,
    /// Stored entries. Always the *post-fault* view: stuck bits are applied
    /// as entries are written, so the hot search loop reads them unchanged.
    entries: Vec<CamEntry>,
    width_mask: u128,
    faults: Option<CamFaultState>,
    stats: XbarStats,
    /// Host algorithm used to derive hit vectors (device behaviour and
    /// accounting are identical in both modes).
    mode: SearchMode,
    /// Host kernel evaluating the linear matcher (packed word-parallel or
    /// scalar row-at-a-time; results and accounting are identical).
    kernel: Kernel,
    /// Bit-plane transposed mirror of `entries`, maintained incrementally
    /// while the packed kernel is active and rebuilt lazily after a spell
    /// on the scalar kernel.
    packed: PackedPlanes,
    /// Entry-store version, bumped on every mutation. An index whose
    /// `clean_epoch` matches is exact; anything else rebuilds lazily.
    epoch: u64,
    /// Lazily created per-mask exact-match indexes (at most
    /// [`MAX_INDEXED_MASKS`]; further masks use the linear scan).
    indexes: Vec<FieldIndex>,
    /// How many of `indexes` are clean at the current epoch. Block loading
    /// issues one `write` per edge while every index is stale, so the
    /// per-write patch loop reduces to a single zero-check here.
    clean_indexes: u32,
    /// Debug-build scratch for cross-checking indexed results against the
    /// linear scan without allocating per search.
    #[cfg(debug_assertions)]
    check_hv: HitVector,
}

impl CamCrossbar {
    /// Creates an empty CAM with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid; construct via a validated
    /// [`CamGeometry`] to avoid this.
    pub fn new(geometry: CamGeometry) -> Self {
        // gaasx-lint: allow(panic-in-lib) -- documented panic contract of new(); validated presets cannot hit it
        geometry.validate().expect("invalid CAM geometry");
        let width_mask = if geometry.width_bits == 128 {
            u128::MAX
        } else {
            (1u128 << geometry.width_bits) - 1
        };
        CamCrossbar {
            geometry,
            entries: vec![
                CamEntry {
                    bits: 0,
                    valid: false
                };
                geometry.rows
            ],
            width_mask,
            faults: None,
            stats: XbarStats::new(),
            mode: SearchMode::default(),
            kernel: Kernel::default(),
            packed: PackedPlanes::new(geometry.rows, geometry.width_bits as usize),
            epoch: 1,
            indexes: Vec::new(),
            clean_indexes: 0,
            #[cfg(debug_assertions)]
            check_hv: HitVector::new(0),
        }
    }

    /// Selects the host search algorithm. Switching drops any built
    /// indexes; they are rebuilt lazily when indexed searches resume.
    pub fn set_search_mode(&mut self, mode: SearchMode) {
        if mode != self.mode {
            self.mode = mode;
            self.indexes.clear();
            self.clean_indexes = 0;
        }
    }

    /// The active host search algorithm.
    pub fn search_mode(&self) -> SearchMode {
        self.mode
    }

    /// Selects the host kernel for the linear matcher. Switching to the
    /// packed kernel marks the bit planes stale; they rebuild from the
    /// entry store on the next packed search.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        if kernel != self.kernel {
            self.kernel = kernel;
            if kernel == Kernel::Packed {
                self.packed.mark_dirty();
            }
        }
    }

    /// The active host kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Attaches seeded device-fault state. Stuck bits corrupt entries as
    /// they are written; transient write failures and search upsets draw
    /// from the state's RNG. `None` detaches all fault behaviour.
    pub fn set_faults(&mut self, faults: Option<CamFaultState>) {
        self.faults = faults;
    }

    /// Injected-fault counters, when fault state is attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(CamFaultState::stats)
    }

    /// Folds a sibling crossbar's injected-fault counters into this one
    /// (no-op without attached fault state).
    pub fn merge_fault_stats(&mut self, other: Option<&FaultStats>) {
        if let (Some(f), Some(o)) = (self.faults.as_mut(), other) {
            f.merge_stats(o);
        }
    }

    /// Cumulative per-row wear counts from the attached fault state.
    /// `None` when no fault state is attached or endurance tracking is off.
    pub fn fault_wear(&self) -> Option<&[u64]> {
        self.faults
            .as_ref()
            .map(CamFaultState::wear)
            .filter(|w| !w.is_empty())
    }

    /// Restores a wear map into the attached fault state (no-op without
    /// one, or on a geometry mismatch).
    pub fn restore_fault_wear(&mut self, wear: &[u64]) {
        if let Some(f) = self.faults.as_mut() {
            f.restore_wear(wear);
        }
    }

    /// Clears the attached fault state's injected-event counters for a new
    /// accounting window, preserving wear and the transient RNG stream
    /// (no-op without fault state).
    pub fn reset_fault_stats(&mut self) {
        if let Some(f) = self.faults.as_mut() {
            f.reset_stats();
        }
    }

    /// The geometry this CAM was built with.
    pub fn geometry(&self) -> CamGeometry {
        self.geometry
    }

    /// Number of rows currently holding valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Writes an entry into `row`, counting the cell programming cost.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] if `row` exceeds the geometry.
    pub fn write(&mut self, row: usize, bits: u128) -> Result<(), XbarError> {
        if row >= self.geometry.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        let masked = bits & self.width_mask;
        let stored = CamEntry {
            bits: match self.faults.as_mut() {
                Some(faults) => faults.programmed(row, masked) & self.width_mask,
                None => masked,
            },
            valid: true,
        };
        let old = self.entries[row];
        self.entries[row] = stored;
        if self.kernel == Kernel::Packed && !self.packed.is_dirty() {
            // Diff-based plane patch: block programs rewrite whole banks,
            // so per-write cost decides the packed kernel's end-to-end
            // win — only the planes whose bit flipped are touched.
            self.packed.update_row(row, old.bits, stored.bits);
        }
        self.patch_indexes(old, stored, row);
        self.stats.row_writes += 1;
        // A TCAM cell is a complementary ReRAM pair: 2 device writes per bit.
        self.stats.cells_written += 2 * self.geometry.width_bits as u64;
        Ok(())
    }

    /// Invalidates `row` without counting a programming burst (valid bits
    /// live in CMOS latches).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] if `row` exceeds the geometry.
    pub fn invalidate(&mut self, row: usize) -> Result<(), XbarError> {
        if row >= self.geometry.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        let old = self.entries[row];
        if old.valid {
            self.entries[row].valid = false;
            if self.kernel == Kernel::Packed && !self.packed.is_dirty() {
                self.packed.invalidate(row);
            }
            self.patch_indexes(old, self.entries[row], row);
        }
        Ok(())
    }

    /// Invalidates every row (start of a new shard load).
    pub fn invalidate_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
        // Cheap for the planes too: only the valid words clear (plane bits
        // stay stale-but-unmatched, like the entry bits below).
        self.packed.invalidate_all();
        // Bulk clears only bump the epoch: every index turns stale at once
        // and rebuilds lazily on its next indexed search. Memoized
        // steady-state iterations never physically search a reloaded block
        // again, so they pay no index maintenance here at all.
        self.epoch = self.epoch.wrapping_add(1);
        self.clean_indexes = 0;
    }

    /// Bumps the entry-store epoch and patches any index that was clean
    /// across the single-row mutation `old → new`, keeping it clean. Stale
    /// indexes are left alone; they rebuild lazily on their next use.
    fn patch_indexes(&mut self, old: CamEntry, new: CamEntry, row: usize) {
        let next = self.epoch.wrapping_add(1);
        if self.clean_indexes == 0 {
            // Nothing to patch (the block-loading fast path): stale indexes
            // stay stale across the bump and rebuild lazily later.
            self.epoch = next;
            return;
        }
        // gaasx-lint: hot
        for ix in &mut self.indexes {
            if ix.clean_epoch != self.epoch {
                continue;
            }
            if old.valid {
                ix.remove_row(old.bits, row as u32);
            }
            if new.valid {
                ix.insert_row(new.bits, row as u32);
            }
            ix.clean_epoch = next;
        }
        // gaasx-lint: end-hot
        self.epoch = next;
    }

    /// Returns the position of a clean index over `mask`, building or
    /// rebuilding it from the valid post-fault entries when needed.
    /// `None` once the distinct-mask cap is hit — callers fall back to the
    /// linear scan, which is always correct.
    fn ensure_index(&mut self, mask: u128) -> Option<usize> {
        let pos = match self.indexes.iter().position(|ix| ix.mask == mask) {
            Some(p) => p,
            None => {
                if self.indexes.len() >= MAX_INDEXED_MASKS {
                    return None;
                }
                self.indexes
                    .push(FieldIndex::new(mask, self.geometry.rows.div_ceil(64)));
                self.indexes.len() - 1
            }
        };
        let epoch = self.epoch;
        let ix = &mut self.indexes[pos];
        if ix.clean_epoch != epoch {
            ix.rows.clear();
            // gaasx-lint: hot
            for (row, e) in self.entries.iter().enumerate() {
                if e.valid {
                    ix.insert_row(e.bits, row as u32);
                }
            }
            // gaasx-lint: end-hot
            ix.clean_epoch = epoch;
            self.clean_indexes += 1;
        }
        Some(pos)
    }

    /// Ternary search: returns the hit vector of valid rows where
    /// `(stored ^ key) & mask == 0`. Bits outside the geometry width are
    /// ignored. One call = one 4 ns CAM operation.
    pub fn search(&mut self, key: u128, mask: u128) -> HitVector {
        let mut hv = HitVector::new(self.geometry.rows);
        self.search_into(key, mask, &mut hv);
        hv
    }

    /// [`search`](Self::search), writing the result into a caller-owned
    /// buffer so the steady state allocates nothing. `out` is resized (to
    /// the row count) and overwritten; prior contents are irrelevant.
    pub fn search_into(&mut self, key: u128, mask: u128, out: &mut HitVector) {
        self.stats.cam_searches += 1;
        let key = key & self.width_mask;
        let mask = mask & self.width_mask;
        out.reset(self.geometry.rows);
        let mut via_index = false;
        // An unresolved `Auto` takes the indexed path (see the enum docs);
        // engines resolve it per block before searching.
        if self.mode != SearchMode::Linear {
            if let Some(pos) = self.ensure_index(mask) {
                let ix = &self.indexes[pos];
                // gaasx-lint: hot
                if let Some(rows) = ix.rows.get(&(key & mask)) {
                    // Candidate sets are row-word bitmasks: the probe is a
                    // straight word copy into the packed hit vector.
                    for (w, &word) in rows.words.iter().enumerate() {
                        out.set_word(w, word);
                    }
                }
                // gaasx-lint: end-hot
                via_index = true;
            }
        }
        if !via_index {
            match self.kernel {
                Kernel::Packed => {
                    if self.packed.is_dirty() {
                        self.packed.rebuild(&self.entries);
                    }
                    self.packed.search_into(key, mask, out);
                }
                Kernel::Scalar => Self::linear_scan_into(&self.entries, key, mask, out),
            }
        }
        #[cfg(debug_assertions)]
        if via_index || self.kernel == Kernel::Packed {
            let mut check = std::mem::replace(&mut self.check_hv, HitVector::new(0));
            check.reset(self.geometry.rows);
            Self::linear_scan_into(&self.entries, key, mask, &mut check);
            debug_assert!(
                *out == check,
                "indexed search diverged from linear scan (key={key:#x}, mask={mask:#x})"
            );
            self.check_hv = check;
        }
        if let Some(faults) = self.faults.as_mut() {
            faults.upset(out);
        }
    }

    /// The scalar reference path: O(rows) scan over the post-fault
    /// entries. Retained as the oracle for [`Kernel::Scalar`] and the
    /// debug-build cross-check of every indexed or packed result.
    fn linear_scan_into(entries: &[CamEntry], key: u128, mask: u128, out: &mut HitVector) {
        // gaasx-lint: hot
        for (i, e) in entries.iter().enumerate() {
            if e.valid && (e.bits ^ key) & mask == 0 {
                out.set(i);
            }
        }
        // gaasx-lint: end-hot
    }

    /// Counts one CAM search without recomputing a hit vector.
    ///
    /// The engine's per-block search memo replays a previously derived hit
    /// vector when the loaded block is untouched — but the simulated
    /// hardware still performs the physical search every time, so the
    /// device counter (and therefore energy accounting) must advance
    /// exactly as for [`search`](Self::search).
    pub fn count_replayed_search(&mut self) {
        self.stats.cam_searches += 1;
    }

    /// Reads back the entry at `row` (peripheral read, not a search).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] if `row` exceeds the geometry.
    pub fn read(&self, row: usize) -> Result<CamEntry, XbarError> {
        self.entries
            .get(row)
            .copied()
            .ok_or(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            })
    }

    /// Device operation counters.
    pub fn stats(&self) -> &XbarStats {
        &self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = XbarStats::new();
    }

    /// Adds externally accumulated counters into this device's stats —
    /// how a primary engine absorbs the device activity of sibling worker
    /// engines when merging a sharded run.
    pub fn merge_stats(&mut self, other: &XbarStats) {
        self.stats.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> CamCrossbar {
        CamCrossbar::new(CamGeometry::paper())
    }

    #[test]
    fn exact_search() {
        let mut c = cam();
        c.write(0, 42).unwrap();
        c.write(5, 43).unwrap();
        let hv = c.search(42, u128::MAX);
        assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn ternary_mask_ignores_fields() {
        let mut c = cam();
        // Entries share the low byte but differ in the next byte.
        c.write(0, 0x01_10).unwrap();
        c.write(1, 0x02_10).unwrap();
        c.write(2, 0x02_20).unwrap();
        let hv = c.search(0x10, 0xFF);
        assert_eq!(hv.count(), 2);
    }

    #[test]
    fn invalid_rows_never_match() {
        let mut c = cam();
        c.write(0, 7).unwrap();
        c.invalidate(0).unwrap();
        assert_eq!(c.search(7, u128::MAX).count(), 0);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn stats_count_operations() {
        let mut c = cam();
        c.write(0, 1).unwrap();
        c.write(1, 2).unwrap();
        c.search(1, u128::MAX);
        assert_eq!(c.stats().row_writes, 2);
        assert_eq!(c.stats().cam_searches, 1);
        assert_eq!(c.stats().cells_written, 2 * 2 * 128);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut c = cam();
        assert!(c.write(128, 0).is_err());
        assert!(c.invalidate(500).is_err());
        assert!(c.read(128).is_err());
    }

    #[test]
    fn width_mask_truncates() {
        let mut c = CamCrossbar::new(CamGeometry {
            rows: 4,
            width_bits: 8,
        });
        c.write(0, 0x1FF).unwrap(); // stored as 0xFF
        assert_eq!(c.read(0).unwrap().bits, 0xFF);
        assert_eq!(c.search(0xFF, u128::MAX).count(), 1);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = cam();
        for i in 0..10 {
            c.write(i, i as u128).unwrap();
        }
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidate_is_free_of_programming_cost() {
        // Valid bits live in CMOS latches: neither per-row nor bulk
        // invalidation may count as device programming, and a failed
        // invalidate must not perturb stats either.
        let mut c = cam();
        for i in 0..10 {
            c.write(i, i as u128).unwrap();
        }
        let (writes, cells) = (c.stats().row_writes, c.stats().cells_written);
        c.invalidate(3).unwrap();
        c.invalidate(3).unwrap(); // idempotent, still free
        c.invalidate_all();
        assert!(c.invalidate(999).is_err());
        assert_eq!(c.stats().row_writes, writes);
        assert_eq!(c.stats().cells_written, cells);
        assert_eq!(c.stats().cam_searches, 0);
        // The stored bits survive invalidation; only the valid flag drops.
        assert_eq!(c.read(3).unwrap().bits, 3);
        assert!(!c.read(3).unwrap().valid);
    }

    #[test]
    fn stuck_bits_corrupt_stored_entries() {
        use crate::fault::{CamFaultState, FaultModel};
        let g = CamGeometry::paper();
        let mut c = CamCrossbar::new(g);
        c.set_faults(Some(CamFaultState::new(
            FaultModel {
                seed: 7,
                cam_stuck_ber: 0.02,
                ..FaultModel::none()
            },
            &g,
        )));
        let mut corrupted = 0;
        for row in 0..g.rows {
            let key = 0xA5A5_A5A5_A5A5_A5A5u128;
            c.write(row, key).unwrap();
            if c.read(row).unwrap().bits != key {
                corrupted += 1;
            }
        }
        assert!(corrupted > 0, "2% BER over 128×128 bits must corrupt rows");
        // An exact search for the intended key misses every corrupted row.
        let hits = c.search(0xA5A5_A5A5_A5A5_A5A5, u128::MAX);
        assert_eq!(hits.count(), g.rows - corrupted);
    }

    /// Runs the same op sequence in every mode (including a device-level
    /// unresolved `Auto`) and asserts identical hit vectors and stats.
    /// (Debug builds additionally cross-check every indexed search
    /// against the linear scan inside `search_into`.)
    fn assert_modes_agree(ops: impl Fn(&mut CamCrossbar) -> Vec<HitVector>) {
        let mut linear = cam();
        linear.set_search_mode(SearchMode::Linear);
        let a = ops(&mut linear);
        for mode in [SearchMode::Indexed, SearchMode::Auto] {
            let mut other = cam();
            other.set_search_mode(mode);
            let b = ops(&mut other);
            assert_eq!(a, b, "hit vectors diverged between Linear and {mode}");
            assert_eq!(
                linear.stats(),
                other.stats(),
                "stats diverged between Linear and {mode}"
            );
        }
    }

    const SRC_MASK: u128 = 0xFFFF_FFFF_0000_0000;
    const DST_MASK: u128 = 0xFFFF_FFFF;

    #[test]
    fn indexed_matches_linear_on_field_searches() {
        assert_modes_agree(|c| {
            for i in 0..20 {
                let key = (u128::from(i as u32 % 5) << 32) | u128::from(i as u32 % 7);
                c.write(i, key).unwrap();
            }
            let mut out = Vec::new();
            for v in 0..8u32 {
                out.push(c.search(u128::from(v) << 32, SRC_MASK));
            }
            for v in 0..8u32 {
                out.push(c.search(u128::from(v), DST_MASK));
            }
            out
        });
    }

    #[test]
    fn indexed_matches_linear_across_invalidate_and_rewrite() {
        assert_modes_agree(|c| {
            let mut out = Vec::new();
            for i in 0..16 {
                c.write(i, (u128::from(i as u32) << 32) | 1).unwrap();
            }
            out.push(c.search(1, DST_MASK));
            c.invalidate(3).unwrap();
            c.invalidate(3).unwrap(); // idempotent
            out.push(c.search(1, DST_MASK));
            c.write(3, (7u128 << 32) | 2).unwrap(); // remap-style rewrite
            out.push(c.search(2, DST_MASK));
            out.push(c.search(7u128 << 32, SRC_MASK));
            c.invalidate_all();
            out.push(c.search(1, DST_MASK));
            for i in 0..4 {
                c.write(i, (9u128 << 32) | u128::from(i as u32)).unwrap();
            }
            out.push(c.search(9u128 << 32, SRC_MASK));
            out
        });
    }

    #[test]
    fn mask_cap_falls_back_to_linear_scan() {
        assert_modes_agree(|c| {
            for i in 0..12 {
                c.write(i, u128::from(i as u32) * 3).unwrap();
            }
            // More distinct masks than MAX_INDEXED_MASKS: the excess must
            // still return correct results via the linear fallback.
            (0..(MAX_INDEXED_MASKS as u32 + 3))
                .map(|b| c.search(0, 1u128 << b))
                .collect()
        });
    }

    #[test]
    fn indexed_search_reflects_post_fault_bits() {
        use crate::fault::{CamFaultState, FaultModel};
        let g = CamGeometry::paper();
        let model = FaultModel {
            seed: 7,
            cam_stuck_ber: 0.02,
            ..FaultModel::none()
        };
        let run = |mode: SearchMode| {
            let mut c = CamCrossbar::new(g);
            c.set_search_mode(mode);
            c.set_faults(Some(CamFaultState::new(model, &g)));
            let key = 0xA5A5_A5A5_A5A5_A5A5u128;
            for row in 0..g.rows {
                c.write(row, key).unwrap();
            }
            c.search(key, u128::MAX)
        };
        // Stuck bits corrupt entries identically (same seed), and the index
        // is built over the corrupted bits, so both modes miss the same rows.
        assert_eq!(run(SearchMode::Linear), run(SearchMode::Indexed));
    }

    #[test]
    fn search_into_reuses_the_buffer_and_counts() {
        let mut c = cam();
        c.write(0, 42).unwrap();
        c.write(9, 42).unwrap();
        let mut hv = HitVector::new(0);
        c.search_into(42, u128::MAX, &mut hv);
        assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![0, 9]);
        c.search_into(7, u128::MAX, &mut hv);
        assert_eq!(hv.count(), 0);
        assert_eq!(hv.len(), CamGeometry::paper().rows);
        assert_eq!(c.stats().cam_searches, 2);
    }

    #[test]
    fn replayed_searches_only_advance_the_counter() {
        let mut c = cam();
        c.write(0, 5).unwrap();
        let (writes, cells) = (c.stats().row_writes, c.stats().cells_written);
        c.count_replayed_search();
        c.count_replayed_search();
        assert_eq!(c.stats().cam_searches, 2);
        assert_eq!(c.stats().row_writes, writes);
        assert_eq!(c.stats().cells_written, cells);
    }

    #[test]
    fn switching_modes_mid_stream_stays_correct() {
        let mut c = cam();
        for i in 0..10 {
            c.write(i, u128::from(i as u32 % 3)).unwrap();
        }
        let a = c.search(1, DST_MASK);
        c.set_search_mode(SearchMode::Linear);
        let b = c.search(1, DST_MASK);
        c.set_search_mode(SearchMode::Indexed);
        let d = c.search(1, DST_MASK);
        assert_eq!(a, b);
        assert_eq!(b, d);
        assert_eq!(c.stats().cam_searches, 3);
    }

    #[test]
    fn auto_is_the_default_and_round_trips_its_spellings() {
        assert_eq!(SearchMode::default(), SearchMode::Auto);
        assert!(!SearchMode::Auto.is_resolved());
        for mode in [SearchMode::Linear, SearchMode::Indexed, SearchMode::Auto] {
            assert!(mode.to_string().parse::<SearchMode>() == Ok(mode));
        }
        assert!("fast".parse::<SearchMode>().is_err());
    }

    /// Runs the same op sequence under both kernels (in Linear mode, so
    /// the matcher — not the index — derives every result) and asserts
    /// identical hit vectors and stats.
    fn assert_kernels_agree(rows: usize, ops: impl Fn(&mut CamCrossbar) -> Vec<HitVector>) {
        let g = CamGeometry {
            rows,
            width_bits: 128,
        };
        let mut scalar = CamCrossbar::new(g);
        scalar.set_search_mode(SearchMode::Linear);
        scalar.set_kernel(Kernel::Scalar);
        let a = ops(&mut scalar);
        let mut packed = CamCrossbar::new(g);
        packed.set_search_mode(SearchMode::Linear);
        packed.set_kernel(Kernel::Packed);
        let b = ops(&mut packed);
        assert_eq!(a, b, "hit vectors diverged between kernels ({rows} rows)");
        assert_eq!(scalar.stats(), packed.stats(), "stats diverged");
    }

    #[test]
    fn packed_kernel_matches_scalar_including_partial_last_word() {
        for rows in [64, 70, 128, 130] {
            assert_kernels_agree(rows, |c| {
                for i in 0..c.geometry().rows {
                    let key = (u128::from(i as u32 % 5) << 32) | u128::from(i as u32 % 7);
                    c.write(i, key).unwrap();
                }
                let mut out = Vec::new();
                for v in 0..8u32 {
                    out.push(c.search(u128::from(v) << 32, SRC_MASK));
                    out.push(c.search(u128::from(v), DST_MASK));
                }
                out.push(c.search(0, u128::MAX));
                out.push(c.search((1u128 << 32) | 1, SRC_MASK | DST_MASK));
                out
            });
        }
    }

    #[test]
    fn packed_kernel_matches_scalar_across_invalidate_and_rewrite() {
        assert_kernels_agree(70, |c| {
            let mut out = Vec::new();
            for i in 0..70 {
                c.write(i, (u128::from(i as u32 % 9) << 32) | 1).unwrap();
            }
            out.push(c.search(1, DST_MASK));
            c.invalidate(3).unwrap();
            c.invalidate(69).unwrap();
            out.push(c.search(1, DST_MASK));
            c.write(3, (7u128 << 32) | 2).unwrap();
            out.push(c.search(2, DST_MASK));
            out.push(c.search(7u128 << 32, SRC_MASK));
            c.invalidate_all();
            out.push(c.search(1, DST_MASK));
            for i in 0..4 {
                c.write(i, (9u128 << 32) | u128::from(i as u32)).unwrap();
            }
            out.push(c.search(9u128 << 32, SRC_MASK));
            out
        });
    }

    #[test]
    fn packed_kernel_reflects_post_fault_bits() {
        use crate::fault::{CamFaultState, FaultModel};
        let g = CamGeometry::paper();
        let model = FaultModel {
            seed: 7,
            cam_stuck_ber: 0.02,
            ..FaultModel::none()
        };
        let run = |kernel: Kernel| {
            let mut c = CamCrossbar::new(g);
            c.set_search_mode(SearchMode::Linear);
            c.set_kernel(kernel);
            c.set_faults(Some(CamFaultState::new(model, &g)));
            let key = 0xA5A5_A5A5_A5A5_A5A5u128;
            for row in 0..g.rows {
                c.write(row, key).unwrap();
            }
            c.search(key, u128::MAX)
        };
        assert_eq!(run(Kernel::Scalar), run(Kernel::Packed));
    }

    #[test]
    fn switching_kernels_mid_stream_rebuilds_the_planes() {
        let mut c = cam();
        c.set_search_mode(SearchMode::Linear);
        c.set_kernel(Kernel::Scalar);
        for i in 0..10 {
            c.write(i, u128::from(i as u32 % 3)).unwrap();
        }
        let a = c.search(1, DST_MASK);
        // Writes while scalar skipped plane maintenance; the switch must
        // rebuild before the packed matcher answers.
        c.set_kernel(Kernel::Packed);
        assert_eq!(c.kernel(), Kernel::Packed);
        let b = c.search(1, DST_MASK);
        assert_eq!(a, b);
        c.write(5, 1).unwrap(); // incremental maintenance after rebuild
        let d = c.search(1, DST_MASK);
        assert_eq!(d.count(), a.count() + 1);
    }

    #[test]
    fn search_upsets_perturb_single_rows() {
        use crate::fault::{CamFaultState, FaultModel};
        let g = CamGeometry::paper();
        let mut c = CamCrossbar::new(g);
        c.set_faults(Some(CamFaultState::new(
            FaultModel {
                seed: 11,
                cam_upset_rate: 1.0,
                ..FaultModel::none()
            },
            &g,
        )));
        c.write(0, 99).unwrap();
        let hits = c.search(99, u128::MAX);
        // Exactly one match line toggled relative to the true result {0}.
        let wrong = (0..g.rows).filter(|&r| hits.get(r) != (r == 0)).count();
        assert_eq!(wrong, 1);
        assert_eq!(c.fault_stats().unwrap().cam_upsets, 1);
    }
}
