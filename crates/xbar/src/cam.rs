//! Ternary content-addressable memory (TCAM) crossbar model.

use serde::{Deserialize, Serialize};

use crate::error::XbarError;
use crate::fault::{CamFaultState, FaultStats};
use crate::geometry::CamGeometry;
use crate::hit_vector::HitVector;
use crate::XbarStats;

/// One stored CAM entry: up to 128 bits of content plus a valid flag.
///
/// GaaS-X packs an edge's `(src, dst)` vertex pair into one entry; the
/// ternary search masks whichever field is not being matched (paper §IV:
/// "The ternary CAM operation enables the flexibility to identify the edges
/// corresponding to a particular source or destination vertex").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CamEntry {
    /// The stored bits.
    pub bits: u128,
    /// Whether the row holds live data (cleared rows never match).
    pub valid: bool,
}

/// A ReRAM TCAM crossbar (paper Fig 3(b)).
///
/// Each search broadcasts a `(key, mask)` pair to all rows in parallel; a
/// row matches when every *unmasked* bit equals the key. The entire search
/// costs one 4 ns CAM operation regardless of how many rows match.
///
/// ```
/// use gaasx_xbar::{CamCrossbar, CamEntry};
/// use gaasx_xbar::geometry::CamGeometry;
///
/// let mut cam = CamCrossbar::new(CamGeometry::paper());
/// cam.write(0, 0xAB_01)?; // e.g. src=0xAB, dst=0x01
/// cam.write(1, 0xCD_01)?;
/// // Search dst field (low 8 bits) for 0x01, masking the src field.
/// let hits = cam.search(0x01, 0xFF);
/// assert_eq!(hits.count(), 2);
/// # Ok::<(), gaasx_xbar::XbarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CamCrossbar {
    geometry: CamGeometry,
    /// Stored entries. Always the *post-fault* view: stuck bits are applied
    /// as entries are written, so the hot search loop reads them unchanged.
    entries: Vec<CamEntry>,
    width_mask: u128,
    faults: Option<CamFaultState>,
    stats: XbarStats,
}

impl CamCrossbar {
    /// Creates an empty CAM with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid; construct via a validated
    /// [`CamGeometry`] to avoid this.
    pub fn new(geometry: CamGeometry) -> Self {
        // gaasx-lint: allow(panic-in-lib) -- documented panic contract of new(); validated presets cannot hit it
        geometry.validate().expect("invalid CAM geometry");
        let width_mask = if geometry.width_bits == 128 {
            u128::MAX
        } else {
            (1u128 << geometry.width_bits) - 1
        };
        CamCrossbar {
            geometry,
            entries: vec![
                CamEntry {
                    bits: 0,
                    valid: false
                };
                geometry.rows
            ],
            width_mask,
            faults: None,
            stats: XbarStats::new(),
        }
    }

    /// Attaches seeded device-fault state. Stuck bits corrupt entries as
    /// they are written; transient write failures and search upsets draw
    /// from the state's RNG. `None` detaches all fault behaviour.
    pub fn set_faults(&mut self, faults: Option<CamFaultState>) {
        self.faults = faults;
    }

    /// Injected-fault counters, when fault state is attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(CamFaultState::stats)
    }

    /// Folds a sibling crossbar's injected-fault counters into this one
    /// (no-op without attached fault state).
    pub fn merge_fault_stats(&mut self, other: Option<&FaultStats>) {
        if let (Some(f), Some(o)) = (self.faults.as_mut(), other) {
            f.merge_stats(o);
        }
    }

    /// The geometry this CAM was built with.
    pub fn geometry(&self) -> CamGeometry {
        self.geometry
    }

    /// Number of rows currently holding valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Writes an entry into `row`, counting the cell programming cost.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] if `row` exceeds the geometry.
    pub fn write(&mut self, row: usize, bits: u128) -> Result<(), XbarError> {
        if row >= self.geometry.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        let masked = bits & self.width_mask;
        self.entries[row] = CamEntry {
            bits: match self.faults.as_mut() {
                Some(faults) => faults.programmed(row, masked) & self.width_mask,
                None => masked,
            },
            valid: true,
        };
        self.stats.row_writes += 1;
        // A TCAM cell is a complementary ReRAM pair: 2 device writes per bit.
        self.stats.cells_written += 2 * self.geometry.width_bits as u64;
        Ok(())
    }

    /// Invalidates `row` without counting a programming burst (valid bits
    /// live in CMOS latches).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] if `row` exceeds the geometry.
    pub fn invalidate(&mut self, row: usize) -> Result<(), XbarError> {
        if row >= self.geometry.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        self.entries[row].valid = false;
        Ok(())
    }

    /// Invalidates every row (start of a new shard load).
    pub fn invalidate_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }

    /// Ternary search: returns the hit vector of valid rows where
    /// `(stored ^ key) & mask == 0`. Bits outside the geometry width are
    /// ignored. One call = one 4 ns CAM operation.
    pub fn search(&mut self, key: u128, mask: u128) -> HitVector {
        self.stats.cam_searches += 1;
        let key = key & self.width_mask;
        let mask = mask & self.width_mask;
        let mut hv = HitVector::new(self.geometry.rows);
        // gaasx-lint: hot
        for (i, e) in self.entries.iter().enumerate() {
            if e.valid && (e.bits ^ key) & mask == 0 {
                hv.set(i);
            }
        }
        // gaasx-lint: end-hot
        if let Some(faults) = self.faults.as_mut() {
            faults.upset(&mut hv);
        }
        hv
    }

    /// Reads back the entry at `row` (peripheral read, not a search).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] if `row` exceeds the geometry.
    pub fn read(&self, row: usize) -> Result<CamEntry, XbarError> {
        self.entries
            .get(row)
            .copied()
            .ok_or(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            })
    }

    /// Device operation counters.
    pub fn stats(&self) -> &XbarStats {
        &self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = XbarStats::new();
    }

    /// Adds externally accumulated counters into this device's stats —
    /// how a primary engine absorbs the device activity of sibling worker
    /// engines when merging a sharded run.
    pub fn merge_stats(&mut self, other: &XbarStats) {
        self.stats.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> CamCrossbar {
        CamCrossbar::new(CamGeometry::paper())
    }

    #[test]
    fn exact_search() {
        let mut c = cam();
        c.write(0, 42).unwrap();
        c.write(5, 43).unwrap();
        let hv = c.search(42, u128::MAX);
        assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn ternary_mask_ignores_fields() {
        let mut c = cam();
        // Entries share the low byte but differ in the next byte.
        c.write(0, 0x01_10).unwrap();
        c.write(1, 0x02_10).unwrap();
        c.write(2, 0x02_20).unwrap();
        let hv = c.search(0x10, 0xFF);
        assert_eq!(hv.count(), 2);
    }

    #[test]
    fn invalid_rows_never_match() {
        let mut c = cam();
        c.write(0, 7).unwrap();
        c.invalidate(0).unwrap();
        assert_eq!(c.search(7, u128::MAX).count(), 0);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn stats_count_operations() {
        let mut c = cam();
        c.write(0, 1).unwrap();
        c.write(1, 2).unwrap();
        c.search(1, u128::MAX);
        assert_eq!(c.stats().row_writes, 2);
        assert_eq!(c.stats().cam_searches, 1);
        assert_eq!(c.stats().cells_written, 2 * 2 * 128);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut c = cam();
        assert!(c.write(128, 0).is_err());
        assert!(c.invalidate(500).is_err());
        assert!(c.read(128).is_err());
    }

    #[test]
    fn width_mask_truncates() {
        let mut c = CamCrossbar::new(CamGeometry {
            rows: 4,
            width_bits: 8,
        });
        c.write(0, 0x1FF).unwrap(); // stored as 0xFF
        assert_eq!(c.read(0).unwrap().bits, 0xFF);
        assert_eq!(c.search(0xFF, u128::MAX).count(), 1);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = cam();
        for i in 0..10 {
            c.write(i, i as u128).unwrap();
        }
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidate_is_free_of_programming_cost() {
        // Valid bits live in CMOS latches: neither per-row nor bulk
        // invalidation may count as device programming, and a failed
        // invalidate must not perturb stats either.
        let mut c = cam();
        for i in 0..10 {
            c.write(i, i as u128).unwrap();
        }
        let (writes, cells) = (c.stats().row_writes, c.stats().cells_written);
        c.invalidate(3).unwrap();
        c.invalidate(3).unwrap(); // idempotent, still free
        c.invalidate_all();
        assert!(c.invalidate(999).is_err());
        assert_eq!(c.stats().row_writes, writes);
        assert_eq!(c.stats().cells_written, cells);
        assert_eq!(c.stats().cam_searches, 0);
        // The stored bits survive invalidation; only the valid flag drops.
        assert_eq!(c.read(3).unwrap().bits, 3);
        assert!(!c.read(3).unwrap().valid);
    }

    #[test]
    fn stuck_bits_corrupt_stored_entries() {
        use crate::fault::{CamFaultState, FaultModel};
        let g = CamGeometry::paper();
        let mut c = CamCrossbar::new(g);
        c.set_faults(Some(CamFaultState::new(
            FaultModel {
                seed: 7,
                cam_stuck_ber: 0.02,
                ..FaultModel::none()
            },
            &g,
        )));
        let mut corrupted = 0;
        for row in 0..g.rows {
            let key = 0xA5A5_A5A5_A5A5_A5A5u128;
            c.write(row, key).unwrap();
            if c.read(row).unwrap().bits != key {
                corrupted += 1;
            }
        }
        assert!(corrupted > 0, "2% BER over 128×128 bits must corrupt rows");
        // An exact search for the intended key misses every corrupted row.
        let hits = c.search(0xA5A5_A5A5_A5A5_A5A5, u128::MAX);
        assert_eq!(hits.count(), g.rows - corrupted);
    }

    #[test]
    fn search_upsets_perturb_single_rows() {
        use crate::fault::{CamFaultState, FaultModel};
        let g = CamGeometry::paper();
        let mut c = CamCrossbar::new(g);
        c.set_faults(Some(CamFaultState::new(
            FaultModel {
                seed: 11,
                cam_upset_rate: 1.0,
                ..FaultModel::none()
            },
            &g,
        )));
        c.write(0, 99).unwrap();
        let hits = c.search(99, u128::MAX);
        // Exactly one match line toggled relative to the true result {0}.
        let wrong = (0..g.rows).filter(|&r| hits.get(r) != (r == 0)).count();
        assert_eq!(wrong, 1);
        assert_eq!(c.fault_stats().unwrap().cam_upsets, 1);
    }
}
