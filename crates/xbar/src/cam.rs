//! Ternary content-addressable memory (TCAM) crossbar model.

use serde::{Deserialize, Serialize};

use crate::error::XbarError;
use crate::geometry::CamGeometry;
use crate::hit_vector::HitVector;
use crate::XbarStats;

/// One stored CAM entry: up to 128 bits of content plus a valid flag.
///
/// GaaS-X packs an edge's `(src, dst)` vertex pair into one entry; the
/// ternary search masks whichever field is not being matched (paper §IV:
/// "The ternary CAM operation enables the flexibility to identify the edges
/// corresponding to a particular source or destination vertex").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CamEntry {
    /// The stored bits.
    pub bits: u128,
    /// Whether the row holds live data (cleared rows never match).
    pub valid: bool,
}

/// A ReRAM TCAM crossbar (paper Fig 3(b)).
///
/// Each search broadcasts a `(key, mask)` pair to all rows in parallel; a
/// row matches when every *unmasked* bit equals the key. The entire search
/// costs one 4 ns CAM operation regardless of how many rows match.
///
/// ```
/// use gaasx_xbar::{CamCrossbar, CamEntry};
/// use gaasx_xbar::geometry::CamGeometry;
///
/// let mut cam = CamCrossbar::new(CamGeometry::paper());
/// cam.write(0, 0xAB_01)?; // e.g. src=0xAB, dst=0x01
/// cam.write(1, 0xCD_01)?;
/// // Search dst field (low 8 bits) for 0x01, masking the src field.
/// let hits = cam.search(0x01, 0xFF);
/// assert_eq!(hits.count(), 2);
/// # Ok::<(), gaasx_xbar::XbarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CamCrossbar {
    geometry: CamGeometry,
    entries: Vec<CamEntry>,
    width_mask: u128,
    stats: XbarStats,
}

impl CamCrossbar {
    /// Creates an empty CAM with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid; construct via a validated
    /// [`CamGeometry`] to avoid this.
    pub fn new(geometry: CamGeometry) -> Self {
        // gaasx-lint: allow(panic-in-lib) -- documented panic contract of new(); validated presets cannot hit it
        geometry.validate().expect("invalid CAM geometry");
        let width_mask = if geometry.width_bits == 128 {
            u128::MAX
        } else {
            (1u128 << geometry.width_bits) - 1
        };
        CamCrossbar {
            geometry,
            entries: vec![
                CamEntry {
                    bits: 0,
                    valid: false
                };
                geometry.rows
            ],
            width_mask,
            stats: XbarStats::new(),
        }
    }

    /// The geometry this CAM was built with.
    pub fn geometry(&self) -> CamGeometry {
        self.geometry
    }

    /// Number of rows currently holding valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Writes an entry into `row`, counting the cell programming cost.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] if `row` exceeds the geometry.
    pub fn write(&mut self, row: usize, bits: u128) -> Result<(), XbarError> {
        if row >= self.geometry.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        self.entries[row] = CamEntry {
            bits: bits & self.width_mask,
            valid: true,
        };
        self.stats.row_writes += 1;
        // A TCAM cell is a complementary ReRAM pair: 2 device writes per bit.
        self.stats.cells_written += 2 * self.geometry.width_bits as u64;
        Ok(())
    }

    /// Invalidates `row` without counting a programming burst (valid bits
    /// live in CMOS latches).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] if `row` exceeds the geometry.
    pub fn invalidate(&mut self, row: usize) -> Result<(), XbarError> {
        if row >= self.geometry.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        self.entries[row].valid = false;
        Ok(())
    }

    /// Invalidates every row (start of a new shard load).
    pub fn invalidate_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }

    /// Ternary search: returns the hit vector of valid rows where
    /// `(stored ^ key) & mask == 0`. Bits outside the geometry width are
    /// ignored. One call = one 4 ns CAM operation.
    pub fn search(&mut self, key: u128, mask: u128) -> HitVector {
        self.stats.cam_searches += 1;
        let key = key & self.width_mask;
        let mask = mask & self.width_mask;
        let mut hv = HitVector::new(self.geometry.rows);
        // gaasx-lint: hot
        for (i, e) in self.entries.iter().enumerate() {
            if e.valid && (e.bits ^ key) & mask == 0 {
                hv.set(i);
            }
        }
        // gaasx-lint: end-hot
        hv
    }

    /// Reads back the entry at `row` (peripheral read, not a search).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] if `row` exceeds the geometry.
    pub fn read(&self, row: usize) -> Result<CamEntry, XbarError> {
        self.entries
            .get(row)
            .copied()
            .ok_or(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            })
    }

    /// Device operation counters.
    pub fn stats(&self) -> &XbarStats {
        &self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = XbarStats::new();
    }

    /// Adds externally accumulated counters into this device's stats —
    /// how a primary engine absorbs the device activity of sibling worker
    /// engines when merging a sharded run.
    pub fn merge_stats(&mut self, other: &XbarStats) {
        self.stats.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> CamCrossbar {
        CamCrossbar::new(CamGeometry::paper())
    }

    #[test]
    fn exact_search() {
        let mut c = cam();
        c.write(0, 42).unwrap();
        c.write(5, 43).unwrap();
        let hv = c.search(42, u128::MAX);
        assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn ternary_mask_ignores_fields() {
        let mut c = cam();
        // Entries share the low byte but differ in the next byte.
        c.write(0, 0x01_10).unwrap();
        c.write(1, 0x02_10).unwrap();
        c.write(2, 0x02_20).unwrap();
        let hv = c.search(0x10, 0xFF);
        assert_eq!(hv.count(), 2);
    }

    #[test]
    fn invalid_rows_never_match() {
        let mut c = cam();
        c.write(0, 7).unwrap();
        c.invalidate(0).unwrap();
        assert_eq!(c.search(7, u128::MAX).count(), 0);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn stats_count_operations() {
        let mut c = cam();
        c.write(0, 1).unwrap();
        c.write(1, 2).unwrap();
        c.search(1, u128::MAX);
        assert_eq!(c.stats().row_writes, 2);
        assert_eq!(c.stats().cam_searches, 1);
        assert_eq!(c.stats().cells_written, 2 * 2 * 128);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut c = cam();
        assert!(c.write(128, 0).is_err());
        assert!(c.invalidate(500).is_err());
        assert!(c.read(128).is_err());
    }

    #[test]
    fn width_mask_truncates() {
        let mut c = CamCrossbar::new(CamGeometry {
            rows: 4,
            width_bits: 8,
        });
        c.write(0, 0x1FF).unwrap(); // stored as 0xFF
        assert_eq!(c.read(0).unwrap().bits, 0xFF);
        assert_eq!(c.search(0xFF, u128::MAX).count(), 1);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = cam();
        for i in 0..10 {
            c.write(i, i as u128).unwrap();
        }
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
    }
}
