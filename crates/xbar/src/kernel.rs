//! Host kernel selection for the crossbar hot paths.

use serde::{Deserialize, Serialize};

/// Which *host* implementation evaluates the crossbar hot loops.
///
/// Like [`SearchMode`](crate::SearchMode), this is purely a host-side
/// choice: the simulated hardware performs the same parallel operation
/// either way, both kernels count identical [`XbarStats`](crate::XbarStats)
/// and return bit-identical results — the kernel only selects how fast the
/// *simulator* derives them.
///
/// * [`Scalar`](Kernel::Scalar): row-at-a-time reference kernels — the
///   oracle the packed kernels are checked against.
/// * [`Packed`](Kernel::Packed) (the default): word-parallel packed
///   bit-plane kernels — one XOR/AND/NOT evaluates 64 CAM rows at a time,
///   and MAC partial products fold via per-bit-plane popcounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Kernel {
    /// Row-at-a-time reference kernels.
    Scalar,
    /// Word-parallel packed bit-plane kernels.
    #[default]
    Packed,
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Kernel::Scalar => "scalar",
            Kernel::Packed => "packed",
        })
    }
}

impl std::str::FromStr for Kernel {
    type Err = String;

    /// Parses the CLI spelling (`scalar | packed`), matching the serde
    /// snake_case encoding.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Kernel::Scalar),
            "packed" => Ok(Kernel::Packed),
            other => Err(format!("invalid kernel '{other}' (scalar | packed)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_is_the_default_and_round_trips_its_spellings() {
        assert_eq!(Kernel::default(), Kernel::Packed);
        for k in [Kernel::Scalar, Kernel::Packed] {
            assert!(k.to_string().parse::<Kernel>() == Ok(k));
        }
        assert!("simd".parse::<Kernel>().is_err());
    }
}
