//! Error type for crossbar device operations.

use std::fmt;

/// Errors raised by crossbar device models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XbarError {
    /// A row index exceeded the crossbar geometry.
    RowOutOfRange {
        /// Requested row.
        row: usize,
        /// Rows available.
        rows: usize,
    },
    /// A column index exceeded the crossbar geometry.
    ColumnOutOfRange {
        /// Requested column.
        col: usize,
        /// Columns available.
        cols: usize,
    },
    /// An input vector length did not match the crossbar dimension.
    DimensionMismatch {
        /// What the caller supplied.
        got: usize,
        /// What the geometry requires.
        expected: usize,
        /// Which dimension was violated.
        what: &'static str,
    },
    /// More rows were activated in one MAC burst than the periphery allows.
    TooManyActiveRows {
        /// Rows requested.
        requested: usize,
        /// Hardware limit (16 in the paper's configuration).
        limit: usize,
    },
    /// A geometry or model parameter was invalid.
    InvalidParameter(String),
}

impl fmt::Display for XbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XbarError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for {rows}-row crossbar")
            }
            XbarError::ColumnOutOfRange { col, cols } => {
                write!(f, "column {col} out of range for {cols}-column crossbar")
            }
            XbarError::DimensionMismatch {
                got,
                expected,
                what,
            } => write!(f, "{what} length {got} does not match expected {expected}"),
            XbarError::TooManyActiveRows { requested, limit } => write!(
                f,
                "{requested} active rows exceed the {limit}-row accumulation limit"
            ),
            XbarError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for XbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_limits() {
        let e = XbarError::TooManyActiveRows {
            requested: 20,
            limit: 16,
        };
        assert!(e.to_string().contains("16-row"));
    }
}
