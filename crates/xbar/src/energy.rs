//! Device energy/latency model derived from Table I of the paper.
//!
//! The paper characterizes its arrays with SPICE and reports aggregate
//! power/latency figures (Table I; §V-A: "The overall latency of MAC
//! operation is 30ns and CAM operation is 4ns"). This module reduces those
//! figures to per-operation energies, exactly the reduction the authors'
//! own simulator performs before system-level accounting.
//!
//! Derivations (documented per field):
//!
//! * MAC op: the per-crossbar share of MAC-array, ADC, DAC, and S&H power
//!   (307.20 + 328.96 + 1.64 + 2.56 mW over 2048 banks ≈ 0.313 mW) times
//!   the 30 ns op latency ≈ 9.4 pJ.
//! * CAM search: 614.40 mW / 2048 banks × 4 ns = 1.2 pJ.
//! * Cell writes are not in Table I; we adopt 20 pJ per programmed MLC MAC
//!   cell (multi-level program-and-verify), 1 pJ per binary TCAM device
//!   (single SET/RESET), and a 50 ns row-programming burst — standard 32 nm
//!   figures, the same class of assumption GraphR makes. All constants are
//!   fields, so sensitivity studies can sweep them.

use serde::{Deserialize, Serialize};

use gaasx_sim::{Nanojoules, Nanos, Picojoules};

use crate::XbarStats;

/// Number of MAC (and CAM) crossbar banks in the paper's configuration.
pub const PAPER_NUM_BANKS: u64 = 2048;

/// Per-operation device energy/latency constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceEnergyModel {
    /// Energy of one MAC burst (array + converter periphery share).
    pub mac_op_pj: Picojoules,
    /// Latency of one MAC burst.
    pub mac_op_ns: Nanos,
    /// Energy of one CAM search.
    pub cam_search_pj: Picojoules,
    /// Latency of one CAM search.
    pub cam_search_ns: Nanos,
    /// Energy to program one MLC MAC cell (program-and-verify).
    pub cell_write_pj: Picojoules,
    /// Energy to program one binary TCAM device (single SET/RESET).
    pub cam_bit_write_pj: Picojoules,
    /// Setup latency of one row-programming burst (word-line select,
    /// driver charge).
    pub row_write_ns: Nanos,
    /// Additional program-and-verify latency per logical value in the
    /// row. MLC cells program through serialized verify loops sharing the
    /// row's write driver, so a dense 16-value row costs
    /// `row_write_ns + 16 × value_program_ns` while a sparse 1-value row
    /// costs `row_write_ns + value_program_ns` — the timing face of the
    /// write redundancy in Fig 5.
    pub value_program_ns: Nanos,
    /// Energy of one write-verify read-back (peripheral digital read of a
    /// programmed row: CAM word or the written MAC cells).
    pub verify_read_pj: Picojoules,
    /// Latency of one write-verify read-back. Read-class access, far
    /// cheaper than the 50 ns programming burst it guards.
    pub verify_read_ns: Nanos,
    /// Energy of one scalar SFU operation (add/min/mul/compare).
    pub sfu_op_pj: Picojoules,
    /// Latency of one scalar SFU operation (1 GHz SFU clock).
    pub sfu_op_ns: Nanos,
    /// Always-on static power (controller plus buffer leakage), mW.
    pub static_mw: f64,
}

impl DeviceEnergyModel {
    /// The model derived from Table I as described in the module docs.
    pub fn paper() -> Self {
        let banks = PAPER_NUM_BANKS as f64;
        let mac_path_mw = (307.20 + 328.96 + 1.64 + 2.56) / banks;
        let cam_mw = 614.40 / banks;
        // Controller is always on; buffers leak ~20 % of their active power.
        let static_mw = 50.0 + 0.2 * (34.88 + 8.72 + 279.04);
        DeviceEnergyModel {
            mac_op_pj: Picojoules::from_pj(mac_path_mw * 30.0),
            mac_op_ns: Nanos::from_ns(30.0),
            cam_search_pj: Picojoules::from_pj(cam_mw * 4.0),
            cam_search_ns: Nanos::from_ns(4.0),
            cell_write_pj: Picojoules::from_pj(20.0),
            cam_bit_write_pj: Picojoules::from_pj(1.0),
            row_write_ns: Nanos::from_ns(50.0),
            value_program_ns: Nanos::from_ns(10.0),
            verify_read_pj: Picojoules::from_pj(2.0),
            verify_read_ns: Nanos::from_ns(10.0),
            sfu_op_pj: Picojoules::from_pj(2.0),
            sfu_op_ns: Nanos::from_ns(1.0),
            static_mw,
        }
    }

    /// Dynamic energy of a device stats block.
    pub fn dynamic_energy_nj(&self, stats: &XbarStats) -> Nanojoules {
        let pj = stats.mac_ops as f64 * self.mac_op_pj
            + stats.cam_searches as f64 * self.cam_search_pj
            + stats.cells_written as f64 * self.cell_write_pj;
        pj.to_nanojoules()
    }

    /// Static energy over an elapsed time (`mW × ns = pJ`).
    pub fn static_energy_nj(&self, elapsed_ns: Nanos) -> Nanojoules {
        Picojoules::from_pj(self.static_mw * elapsed_ns.ns()).to_nanojoules()
    }

    /// Latency to program one row holding `values` logical values.
    pub fn row_program_ns(&self, values: usize) -> Nanos {
        self.row_write_ns + values as f64 * self.value_program_ns
    }

    /// Serial latency of a stats block assuming no overlap. The
    /// accelerator's scheduler model refines this with its own overlap
    /// accounting; this is the pessimistic bound.
    pub fn serial_latency_ns(&self, stats: &XbarStats) -> Nanos {
        stats.mac_ops as f64 * self.mac_op_ns
            + stats.cam_searches as f64 * self.cam_search_ns
            + stats.row_writes as f64 * self.row_write_ns
    }
}

impl Default for DeviceEnergyModel {
    fn default() -> Self {
        DeviceEnergyModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_table1_derivation() {
        let m = DeviceEnergyModel::paper();
        // (307.20+328.96+1.64+2.56)/2048 mW * 30 ns ≈ 9.38 pJ.
        assert!((m.mac_op_pj.pj() - 9.38).abs() < 0.05, "{}", m.mac_op_pj);
        // 614.4/2048 * 4 = 1.2 pJ.
        assert!((m.cam_search_pj.pj() - 1.2).abs() < 1e-9);
        assert_eq!(m.mac_op_ns, Nanos::from_ns(30.0));
        assert_eq!(m.cam_search_ns, Nanos::from_ns(4.0));
    }

    #[test]
    fn dynamic_energy_accumulates() {
        let m = DeviceEnergyModel::paper();
        let mut s = XbarStats::new();
        s.mac_ops = 1000;
        s.cam_searches = 1000;
        s.cells_written = 100;
        let nj = m.dynamic_energy_nj(&s);
        let expect =
            (1000.0 * m.mac_op_pj.pj() + 1000.0 * m.cam_search_pj.pj() + 100.0 * 20.0) / 1000.0;
        assert!((nj.nj() - expect).abs() < 1e-9);
    }

    #[test]
    fn static_energy_scales_with_time() {
        let m = DeviceEnergyModel::paper();
        assert!((m.static_energy_nj(Nanos::from_ns(1000.0)).nj() - m.static_mw).abs() < 1e-9);
    }

    #[test]
    fn serial_latency_counts_all_op_kinds() {
        let m = DeviceEnergyModel::paper();
        let mut s = XbarStats::new();
        s.mac_ops = 2;
        s.cam_searches = 3;
        s.row_writes = 1;
        assert!((m.serial_latency_ns(&s).ns() - (60.0 + 12.0 + 50.0)).abs() < 1e-9);
    }
}
