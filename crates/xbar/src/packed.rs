//! Word-parallel packed bit-plane storage for the CAM search path.
//!
//! The scalar matcher walks one stored entry per iteration. Here the
//! stored bits are transposed into per-bit *planes* of `u64` words —
//! `planes[word * width_bits + bit]` holds bit `bit` of rows
//! `word*64 .. word*64+64` — so one XOR/AND/NOT per unmasked key bit
//! evaluates 64 rows at a time, and the accumulator going to zero ends the
//! word early. Searches over the paper's 32-bit src/dst fields touch at
//! most `32 × ⌈rows/64⌉` words instead of `rows` 128-bit entries.
//!
//! The planes always hold the *post-fault* stored bits (they are written
//! from [`CamEntry`] contents after stuck-bit corruption), so fault
//! composition is inherited from the entry store rather than re-modeled.
//! Invalidation only clears the `valid` words — stale plane bits can never
//! match, mirroring how `CamEntry::bits` survive invalidation.
//!
//! Maintenance is *diff-based*: the planes mirror `CamEntry::bits` for
//! **every** row, valid or not, so a rewrite only touches the planes whose
//! bit actually flipped (`old ^ new`, typically a handful of bits between
//! consecutive edge keys) instead of all `width_bits` of them. Writes are
//! the path the engine hammers — every block program rewrites the full
//! bank — so per-write cost, not per-search cost, decides whether the
//! packed kernel wins end-to-end.

use crate::cam::CamEntry;
use crate::hit_vector::HitVector;

/// Bit-plane transposed mirror of a CAM entry store.
#[derive(Debug, Clone)]
pub(crate) struct PackedPlanes {
    width_bits: usize,
    words: usize,
    /// `planes[word * width_bits + bit]`: bit `bit` of 64 consecutive rows.
    planes: Vec<u64>,
    /// One bit per row: whether the row holds live data.
    valid: Vec<u64>,
    /// Set while the planes are out of sync with the entry store (the
    /// scalar kernel skips maintenance); a packed search rebuilds first.
    dirty: bool,
}

impl PackedPlanes {
    /// All-invalid planes covering `rows × width_bits` cells.
    pub(crate) fn new(rows: usize, width_bits: usize) -> Self {
        let words = rows.div_ceil(64);
        PackedPlanes {
            width_bits,
            words,
            planes: vec![0; words * width_bits],
            valid: vec![0; words],
            dirty: false,
        }
    }

    /// Marks the planes stale; the next packed search rebuilds them from
    /// the entry store. Used when maintenance was skipped (scalar kernel).
    pub(crate) fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Whether the planes need a rebuild before the next packed search.
    pub(crate) fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Incremental rewrite: flips only the planes where the newly stored
    /// bits differ from what the planes currently hold for this row
    /// (`old_bits` — the entry's previous post-fault contents) and marks
    /// the row valid. Callers must pass the true prior stored bits or the
    /// mirror invariant breaks.
    pub(crate) fn update_row(&mut self, row: usize, old_bits: u128, new_bits: u128) {
        // gaasx-lint: hot
        let (w, b) = (row / 64, row % 64);
        let rbit = 1u64 << b;
        let base = w * self.width_bits;
        let mut diff = old_bits ^ new_bits;
        while diff != 0 {
            let bit = diff.trailing_zeros() as usize;
            diff &= diff - 1;
            self.planes[base + bit] ^= rbit;
        }
        self.valid[w] |= rbit;
        // gaasx-lint: end-hot
    }

    /// Clears one row's valid bit (plane bits stay, and stay unmatched).
    pub(crate) fn invalidate(&mut self, row: usize) {
        self.valid[row / 64] &= !(1u64 << (row % 64));
    }

    /// Bulk invalidation: clears only the valid words, exactly like the
    /// entry store's bulk clear keeps stored bits but drops valid flags.
    pub(crate) fn invalidate_all(&mut self) {
        for v in &mut self.valid {
            *v = 0;
        }
    }

    /// Full rebuild from the post-fault entry store (after the scalar
    /// kernel skipped incremental maintenance). Mirrors the stored bits
    /// of *every* row — invalid ones included — so that subsequent
    /// [`Self::update_row`] diffs against entry contents stay exact.
    pub(crate) fn rebuild(&mut self, entries: &[CamEntry]) {
        for p in &mut self.planes {
            *p = 0;
        }
        for v in &mut self.valid {
            *v = 0;
        }
        for (row, e) in entries.iter().enumerate() {
            if e.bits != 0 {
                self.update_row(row, 0, e.bits);
            }
            if e.valid {
                self.valid[row / 64] |= 1u64 << (row % 64);
            } else {
                self.invalidate(row);
            }
        }
        self.dirty = false;
    }

    /// Word-parallel ternary match: for each 64-row word the accumulator
    /// starts from the valid bits and AND-folds `plane` or `!plane` per
    /// unmasked key bit, ending the word as soon as it reaches zero.
    /// Every word of `out` is overwritten. `key`/`mask` must already be
    /// clipped to the geometry width.
    ///
    /// The mask is decomposed into `(plane offset, key bit)` pairs once,
    /// outside the word loop: the 128-bit `trailing_zeros`/`m &= m-1`
    /// fold compiles to multi-instruction double-word sequences, and
    /// paying them per *word* rather than per *search* used to cost more
    /// than the word-parallelism saved.
    pub(crate) fn search_into(&self, key: u128, mask: u128, out: &mut HitVector) {
        // gaasx-lint: hot
        let mut folds = [(0usize, false); 128];
        let mut n = 0;
        let mut m = mask;
        while m != 0 {
            let bit = m.trailing_zeros() as usize;
            m &= m - 1;
            folds[n] = (bit, key >> bit & 1 == 1);
            n += 1;
        }
        let folds = &folds[..n];
        for w in 0..self.words {
            let mut acc = self.valid[w];
            let base = w * self.width_bits;
            for &(bit, key_bit) in folds {
                if acc == 0 {
                    break;
                }
                let plane = self.planes[base + bit];
                acc &= if key_bit { plane } else { !plane };
            }
            out.set_word(w, acc);
        }
        // gaasx-lint: end-hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_scan(entries: &[CamEntry], key: u128, mask: u128) -> Vec<usize> {
        entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid && (e.bits ^ key) & mask == 0)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn packed_matches_scalar_on_partial_last_word() {
        // 70 rows: the last word has 6 live rows and 58 padding bits.
        let mut entries = vec![
            CamEntry {
                bits: 0,
                valid: false
            };
            70
        ];
        let mut planes = PackedPlanes::new(70, 64);
        for (row, e) in entries.iter_mut().enumerate() {
            let bits = ((row as u128 % 5) << 32) | (row as u128 % 7);
            *e = CamEntry { bits, valid: true };
            planes.update_row(row, 0, bits);
        }
        let mut out = HitVector::new(70);
        for v in 0..8u128 {
            for mask in [0xFFFF_FFFFu128, 0xFFFF_FFFF_0000_0000, u64::MAX as u128] {
                let key = if mask == 0xFFFF_FFFF { v } else { v << 32 };
                out.reset(70);
                planes.search_into(key, mask, &mut out);
                assert_eq!(
                    out.iter_ones().collect::<Vec<_>>(),
                    scalar_scan(&entries, key, mask),
                    "key={key:#x} mask={mask:#x}"
                );
            }
        }
    }

    #[test]
    fn invalidation_keeps_plane_bits_but_never_matches() {
        let mut planes = PackedPlanes::new(64, 8);
        planes.update_row(3, 0, 0xAB);
        planes.invalidate(3);
        let mut out = HitVector::new(64);
        planes.search_into(0xAB, 0xFF, &mut out);
        assert_eq!(out.count(), 0);
        planes.update_row(3, 0xAB, 0xAB);
        planes.search_into(0xAB, 0xFF, &mut out);
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![3]);
        planes.invalidate_all();
        planes.search_into(0xAB, 0xFF, &mut out);
        assert_eq!(out.count(), 0);
    }

    #[test]
    fn rebuild_recovers_from_dirty_planes() {
        let entries = vec![
            CamEntry {
                bits: 1,
                valid: true,
            },
            CamEntry {
                bits: 2,
                valid: false,
            },
            CamEntry {
                bits: 1,
                valid: true,
            },
        ];
        let mut planes = PackedPlanes::new(3, 2);
        planes.mark_dirty();
        assert!(planes.is_dirty());
        planes.rebuild(&entries);
        assert!(!planes.is_dirty());
        let mut out = HitVector::new(3);
        planes.search_into(1, 0b11, &mut out);
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }
}
