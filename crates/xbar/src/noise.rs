//! Device-variation noise injection for the analog MAC path.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Multiplicative Gaussian noise on analog partial sums, modeling ReRAM
/// conductance variation and wire IR drop.
///
/// Applied per (input-step, bit-slice) partial before ADC sampling, i.e. at
/// the point real variation enters the signal chain. The Box–Muller samples
/// are seeded, so noisy runs stay reproducible.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    sigma_rel: f64,
    rng: SmallRng,
    /// Cached second Box–Muller sample: each uniform pair yields a cosine
    /// *and* a sine deviate, consumed on alternating draws.
    spare: Option<f64>,
}

impl NoiseModel {
    /// Creates a noise model with relative standard deviation `sigma_rel`
    /// (e.g. `0.05` for 5 % variation).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_rel` is negative or not finite.
    pub fn new(sigma_rel: f64, seed: u64) -> Self {
        assert!(
            sigma_rel.is_finite() && sigma_rel >= 0.0,
            "sigma_rel must be a non-negative finite number"
        );
        NoiseModel {
            sigma_rel,
            rng: SmallRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// The configured relative sigma.
    pub fn sigma_rel(&self) -> f64 {
        self.sigma_rel
    }

    /// Perturbs an analog count, returning a non-negative rounded value.
    pub fn perturb_count(&mut self, value: u64) -> u64 {
        if self.sigma_rel == 0.0 || value == 0 {
            return value;
        }
        let gaussian = self.standard_normal();
        let noisy = value as f64 * (1.0 + self.sigma_rel * gaussian);
        noisy.round().max(0.0) as u64
    }

    /// Standard normal sample via Box–Muller, using both deviates of each
    /// uniform pair (the sine sample is cached for the next call).
    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mut n = NoiseModel::new(0.0, 1);
        assert_eq!(n.perturb_count(42), 42);
    }

    #[test]
    fn noise_is_centered_and_scaled() {
        let mut n = NoiseModel::new(0.05, 7);
        let base = 1000u64;
        let samples: Vec<u64> = (0..2000).map(|_| n.perturb_count(base)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 1000.0).abs() < 10.0, "mean {mean}");
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / samples.len() as f64;
        let sigma = var.sqrt();
        assert!((sigma - 50.0).abs() < 10.0, "sigma {sigma}");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = NoiseModel::new(0.1, 3);
        let mut b = NoiseModel::new(0.1, 3);
        // Odd draw count so the comparison crosses a cached-sine boundary.
        for v in [10u64, 100, 1000, 500, 50] {
            assert_eq!(a.perturb_count(v), b.perturb_count(v));
        }
    }

    #[test]
    fn both_box_muller_deviates_are_consumed() {
        // Pin the stream: draws 2k and 2k+1 come from ONE uniform pair —
        // the cosine deviate first, then the cached sine deviate.
        let mut n = NoiseModel::new(0.1, 3);
        let mut rng = SmallRng::seed_from_u64(3);
        let expect = |z: f64| {
            let noisy = 1_000_000.0 * (1.0 + 0.1 * z);
            noisy.round().max(0.0) as u64
        };
        for _ in 0..3 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            assert_eq!(n.perturb_count(1_000_000), expect(r * theta.cos()));
            assert_eq!(n.perturb_count(1_000_000), expect(r * theta.sin()));
        }
    }

    #[test]
    fn zero_input_stays_zero() {
        let mut n = NoiseModel::new(0.5, 1);
        assert_eq!(n.perturb_count(0), 0);
    }
}
