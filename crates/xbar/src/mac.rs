//! Analog multiply-and-accumulate crossbar model.

use crate::error::XbarError;
use crate::fault::{FaultStats, MacFaultState};
use crate::geometry::MacGeometry;
use crate::kernel::Kernel;
use crate::noise::NoiseModel;
use crate::XbarStats;

/// Orientation of a MAC operation on a transposable crossbar.
///
/// The paper (§III-A) requires MAC crossbars that "perform the MAC operation
/// selectively on data elements either row wise or column wise (i.e. they
/// are transposable crossbars \[29\])": traversal algorithms accumulate edge
/// weights down columns, while collaborative filtering also needs the
/// transposed direction over vertex-attribute matrices.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum MacDirection {
    /// Activate rows, accumulate along bit lines into per-column sums.
    #[default]
    RowsToColumns,
    /// Activate columns, accumulate along word lines into per-row sums.
    ColumnsToRows,
}

/// Numerical fidelity of the analog periphery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum Fidelity {
    /// Ideal periphery: exact integer dot products. Use for algorithm
    /// validation; cost accounting is identical to `Quantized`.
    #[default]
    Exact,
    /// Bit-sliced periphery: inputs stream `dac_bits` per step, each slice
    /// column is sampled by the `adc_bits` ADC and *saturates* at its full
    /// scale before shift-and-add reconstruction — the behaviour of real
    /// silicon when more charge accumulates than the converter can resolve.
    Quantized,
}

/// A ReRAM MAC crossbar (paper Fig 3(a)) storing unsigned fixed-point codes.
///
/// Functionally the array computes, for an operation with active rows `R`
/// and per-row digital inputs `x_r`:
///
/// ```text
/// out[c] = Σ_{r ∈ R} x_r · cell[r][c]        (RowsToColumns)
/// ```
///
/// Costs are tracked in [`XbarStats`]: one MAC op per call, DAC conversions
/// per active line per input step, and ADC samples per produced value per
/// input step per slice.
///
/// ```
/// use gaasx_xbar::{Fidelity, MacCrossbar, MacDirection};
/// use gaasx_xbar::geometry::MacGeometry;
///
/// let mut mac = MacCrossbar::new(MacGeometry::paper(), Fidelity::Exact);
/// mac.write_row(0, &[3, 0, 5])?;
/// mac.write_row(1, &[2, 1, 0])?;
/// let out = mac.mac(MacDirection::RowsToColumns, &[0, 1], &[10, 100])?;
/// assert_eq!(&out[..3], &[3 * 10 + 2 * 100, 100, 5 * 10]);
/// # Ok::<(), gaasx_xbar::XbarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MacCrossbar {
    geometry: MacGeometry,
    fidelity: Fidelity,
    /// Logical codes, row-major `rows × cols`. Always holds the *post-fault*
    /// view: stuck-at maps are applied when values land, so the hot MAC
    /// loops read the array unchanged.
    cells: Vec<u32>,
    noise: Option<NoiseModel>,
    faults: Option<MacFaultState>,
    stats: XbarStats,
    input_bits: u32,
    /// Host kernel for the clean quantized evaluation (packed lane
    /// bit-plane popcounts or the scalar reference loop; results and
    /// accounting are identical).
    kernel: Kernel,
    /// Reused full-width output buffer for [`MacCrossbar::mac_col`] /
    /// [`MacCrossbar::mac_lines_into`] calls that must fall back to
    /// evaluating every crossed line.
    col_scratch: Vec<u64>,
}

impl MacCrossbar {
    /// Creates a zeroed crossbar.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid; validate a custom [`MacGeometry`]
    /// first.
    pub fn new(geometry: MacGeometry, fidelity: Fidelity) -> Self {
        // gaasx-lint: allow(panic-in-lib) -- documented panic contract of new(); validated presets cannot hit it
        geometry.validate().expect("invalid MAC geometry");
        MacCrossbar {
            geometry,
            fidelity,
            cells: vec![0; geometry.rows * geometry.cols],
            noise: None,
            faults: None,
            stats: XbarStats::new(),
            input_bits: 16,
            kernel: Kernel::default(),
            col_scratch: Vec::new(),
        }
    }

    /// Selects the host kernel for the clean quantized evaluation. The
    /// MAC array keeps no packed mirror state, so switching is free.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// The active host kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Attaches a device-variation noise model (only observable under
    /// [`Fidelity::Quantized`]).
    pub fn set_noise(&mut self, noise: Option<NoiseModel>) {
        self.noise = noise;
    }

    /// Attaches seeded device-fault state. Stuck maps corrupt values as they
    /// are written or preloaded; transient write failures and ADC flips draw
    /// from the state's RNG. `None` detaches all fault behaviour.
    pub fn set_faults(&mut self, faults: Option<MacFaultState>) {
        self.faults = faults;
    }

    /// Injected-fault counters, when fault state is attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(MacFaultState::stats)
    }

    /// Folds a sibling crossbar's injected-fault counters into this one
    /// (no-op without attached fault state).
    pub fn merge_fault_stats(&mut self, other: Option<&FaultStats>) {
        if let (Some(f), Some(o)) = (self.faults.as_mut(), other) {
            f.merge_stats(o);
        }
    }

    /// Cumulative per-cell wear counts from the attached fault state,
    /// indexed `row * cols + col`. `None` when no fault state is attached
    /// or endurance tracking is off.
    pub fn fault_wear(&self) -> Option<&[u64]> {
        self.faults
            .as_ref()
            .map(MacFaultState::wear)
            .filter(|w| !w.is_empty())
    }

    /// Restores a wear map into the attached fault state (no-op without
    /// one, or on a geometry mismatch).
    pub fn restore_fault_wear(&mut self, wear: &[u64]) {
        if let Some(f) = self.faults.as_mut() {
            f.restore_wear(wear);
        }
    }

    /// Clears the attached fault state's injected-event counters for a new
    /// accounting window, preserving wear and the transient RNG stream
    /// (no-op without fault state).
    pub fn reset_fault_stats(&mut self) {
        if let Some(f) = self.faults.as_mut() {
            f.reset_stats();
        }
    }

    /// The geometry this crossbar was built with.
    pub fn geometry(&self) -> MacGeometry {
        self.geometry
    }

    /// The configured fidelity mode.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Largest storable cell code.
    pub fn max_code(&self) -> u32 {
        (((1u64 << self.geometry.weight_bits()) - 1) as u32).max(1)
    }

    /// Writes `codes` into the leading cells of `row`, zeroing the rest.
    /// Counts one row-programming burst and `len × slices` cell writes.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] or
    /// [`XbarError::DimensionMismatch`] if `codes` exceeds the column count,
    /// or [`XbarError::InvalidParameter`] if a code exceeds the cell range.
    pub fn write_row(&mut self, row: usize, codes: &[u32]) -> Result<(), XbarError> {
        if row >= self.geometry.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        if codes.len() > self.geometry.cols {
            return Err(XbarError::DimensionMismatch {
                got: codes.len(),
                expected: self.geometry.cols,
                what: "row codes",
            });
        }
        let max = self.max_code();
        for &c in codes {
            if c > max {
                return Err(XbarError::InvalidParameter(format!(
                    "code {c} exceeds {}-bit cell range",
                    self.geometry.weight_bits()
                )));
            }
        }
        let base = row * self.geometry.cols;
        if let Some(faults) = self.faults.as_mut() {
            for (col, &c) in codes.iter().enumerate() {
                self.cells[base + col] = faults.programmed(row, col, c);
            }
        } else {
            self.cells[base..base + codes.len()].copy_from_slice(codes);
        }
        for c in &mut self.cells[base + codes.len()..base + self.geometry.cols] {
            *c = 0;
        }
        self.stats.row_writes += 1;
        self.stats.cells_written += (codes.len() * self.geometry.slices) as u64;
        Ok(())
    }

    /// Writes a single cell. Counts one row burst and `slices` cell writes.
    ///
    /// # Errors
    ///
    /// Range and code errors as in [`MacCrossbar::write_row`].
    pub fn write_cell(&mut self, row: usize, col: usize, code: u32) -> Result<(), XbarError> {
        if row >= self.geometry.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        if col >= self.geometry.cols {
            return Err(XbarError::ColumnOutOfRange {
                col,
                cols: self.geometry.cols,
            });
        }
        if code > self.max_code() {
            return Err(XbarError::InvalidParameter(format!(
                "code {code} exceeds {}-bit cell range",
                self.geometry.weight_bits()
            )));
        }
        self.cells[row * self.geometry.cols + col] = match self.faults.as_mut() {
            Some(faults) => faults.programmed(row, col, code),
            None => code,
        };
        self.stats.row_writes += 1;
        self.stats.cells_written += self.geometry.slices as u64;
        Ok(())
    }

    /// Reads back a cell code (digital peripheral read).
    ///
    /// # Errors
    ///
    /// Returns a range error if the coordinates exceed the geometry.
    pub fn read_cell(&self, row: usize, col: usize) -> Result<u32, XbarError> {
        if row >= self.geometry.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        if col >= self.geometry.cols {
            return Err(XbarError::ColumnOutOfRange {
                col,
                cols: self.geometry.cols,
            });
        }
        Ok(self.cells[row * self.geometry.cols + col])
    }

    /// Performs one selective MAC burst.
    ///
    /// `active` lists the activated lines (rows for
    /// [`MacDirection::RowsToColumns`], columns otherwise) and `inputs[i]`
    /// is the digital input driven onto `active[i]`. Returns one accumulated
    /// sum per crossed line (per column, or per row when transposed).
    ///
    /// # Errors
    ///
    /// * [`XbarError::TooManyActiveRows`] if `active` exceeds the
    ///   accumulation cap (16 in the paper config);
    /// * [`XbarError::DimensionMismatch`] if `inputs` and `active` differ in
    ///   length;
    /// * range errors if an active index exceeds the geometry.
    pub fn mac(
        &mut self,
        direction: MacDirection,
        active: &[usize],
        inputs: &[u32],
    ) -> Result<Vec<u64>, XbarError> {
        let mut out = Vec::new();
        self.mac_into(direction, active, inputs, &mut out)?;
        Ok(out)
    }

    /// [`mac`](Self::mac), accumulating into a caller-owned buffer so the
    /// steady state allocates nothing. `out` is cleared and resized to the
    /// crossed-line count; prior contents are irrelevant. On error the
    /// buffer is left cleared and no cost is counted.
    ///
    /// # Errors
    ///
    /// As for [`mac`](Self::mac).
    pub fn mac_into(
        &mut self,
        direction: MacDirection,
        active: &[usize],
        inputs: &[u32],
        out: &mut Vec<u64>,
    ) -> Result<(), XbarError> {
        out.clear();
        let out_len = self.validate_op(direction, active, inputs)?;
        self.bill_op(active.len(), out_len);
        out.resize(out_len, 0);
        match self.fidelity {
            Fidelity::Exact => self.mac_exact(direction, active, inputs, out),
            Fidelity::Quantized => self.mac_quantized(direction, active, inputs, out),
        }
        Ok(())
    }

    /// [`mac_into`](Self::mac_into) for callers that consume a single
    /// crossed line: returns `out[col]` without materializing the others.
    ///
    /// The analog array always evaluates every crossed line, so the cost
    /// accounting is exactly that of a full [`mac_into`](Self::mac_into)
    /// burst — one MAC op and the full complement of ADC samples. Only the
    /// *functional* evaluation is restricted, and only when it is safe:
    /// with no noise model and no fault state attached each crossed line
    /// is independent, so the one sum computed here is bit-identical to
    /// the full burst's. When either is attached the full evaluation runs
    /// instead, keeping the RNG draw sequence unchanged.
    ///
    /// # Errors
    ///
    /// As for [`mac_into`](Self::mac_into), plus a range error when `col`
    /// exceeds the crossed-line count. On error no cost is counted.
    pub fn mac_col(
        &mut self,
        direction: MacDirection,
        active: &[usize],
        inputs: &[u32],
        col: usize,
    ) -> Result<u64, XbarError> {
        let out_len = self.validate_op(direction, active, inputs)?;
        if col >= out_len {
            return Err(match direction {
                MacDirection::RowsToColumns => XbarError::ColumnOutOfRange { col, cols: out_len },
                MacDirection::ColumnsToRows => XbarError::RowOutOfRange {
                    row: col,
                    rows: out_len,
                },
            });
        }
        self.bill_op(active.len(), out_len);
        if self.noise.is_some() || self.faults.is_some() {
            let mut out = std::mem::take(&mut self.col_scratch);
            out.clear();
            out.resize(out_len, 0);
            match self.fidelity {
                Fidelity::Exact => self.mac_exact(direction, active, inputs, &mut out),
                Fidelity::Quantized => self.mac_quantized(direction, active, inputs, &mut out),
            }
            let value = out[col];
            self.col_scratch = out;
            return Ok(value);
        }
        Ok(match self.fidelity {
            Fidelity::Exact => {
                // gaasx-lint: hot
                let mut slot = 0u64;
                for (&a, &x) in active.iter().zip(inputs) {
                    slot += u64::from(x) * u64::from(self.crossed_cell(direction, a, col));
                }
                slot
                // gaasx-lint: end-hot
            }
            Fidelity::Quantized => {
                if self.kernel == Kernel::Packed && active.len() <= 64 {
                    let x_planes = pack_bit_planes(inputs);
                    self.quantized_line_packed(direction, active, &x_planes, col)
                } else {
                    self.quantized_line_clean(direction, active, inputs, col)
                }
            }
        })
    }

    /// [`mac_into`](Self::mac_into) for callers that consume a *subset* of
    /// the crossed lines: fills `out` with one sum per entry of `lines`,
    /// in order.
    ///
    /// Like [`mac_col`](Self::mac_col), the analog array still evaluates
    /// every crossed line, so the cost accounting is exactly that of a
    /// full burst. Only the functional evaluation is restricted, and only
    /// when no noise model and no fault state is attached (each crossed
    /// line is then independent); otherwise the full evaluation runs so
    /// the RNG draw sequence stays identical to [`mac_into`](Self::mac_into).
    ///
    /// # Errors
    ///
    /// As for [`mac_into`](Self::mac_into), plus a range error when an
    /// entry of `lines` exceeds the crossed-line count. On error `out` is
    /// left cleared and no cost is counted.
    pub fn mac_lines_into(
        &mut self,
        direction: MacDirection,
        active: &[usize],
        inputs: &[u32],
        lines: &[usize],
        out: &mut Vec<u64>,
    ) -> Result<(), XbarError> {
        out.clear();
        let out_len = self.validate_op(direction, active, inputs)?;
        for &l in lines {
            if l >= out_len {
                return Err(match direction {
                    MacDirection::RowsToColumns => XbarError::ColumnOutOfRange {
                        col: l,
                        cols: out_len,
                    },
                    MacDirection::ColumnsToRows => XbarError::RowOutOfRange {
                        row: l,
                        rows: out_len,
                    },
                });
            }
        }
        self.bill_op(active.len(), out_len);
        if self.noise.is_some() || self.faults.is_some() {
            let mut full = std::mem::take(&mut self.col_scratch);
            full.clear();
            full.resize(out_len, 0);
            match self.fidelity {
                Fidelity::Exact => self.mac_exact(direction, active, inputs, &mut full),
                Fidelity::Quantized => self.mac_quantized(direction, active, inputs, &mut full),
            }
            out.extend(lines.iter().map(|&l| full[l]));
            self.col_scratch = full;
            return Ok(());
        }
        out.reserve(lines.len());
        match self.fidelity {
            Fidelity::Exact => {
                // gaasx-lint: hot
                for &l in lines {
                    let mut slot = 0u64;
                    for (&a, &x) in active.iter().zip(inputs) {
                        slot += u64::from(x) * u64::from(self.crossed_cell(direction, a, l));
                    }
                    out.push(slot);
                }
                // gaasx-lint: end-hot
            }
            Fidelity::Quantized => {
                if self.kernel == Kernel::Packed && active.len() <= 64 {
                    let x_planes = pack_bit_planes(inputs);
                    for &l in lines {
                        out.push(self.quantized_line_packed(direction, active, &x_planes, l));
                    }
                } else {
                    for &l in lines {
                        out.push(self.quantized_line_clean(direction, active, inputs, l));
                    }
                }
            }
        }
        Ok(())
    }

    /// Shared argument validation for MAC bursts; returns the crossed-line
    /// count.
    fn validate_op(
        &self,
        direction: MacDirection,
        active: &[usize],
        inputs: &[u32],
    ) -> Result<usize, XbarError> {
        if active.len() > self.geometry.max_active_rows {
            return Err(XbarError::TooManyActiveRows {
                requested: active.len(),
                limit: self.geometry.max_active_rows,
            });
        }
        if active.len() != inputs.len() {
            return Err(XbarError::DimensionMismatch {
                got: inputs.len(),
                expected: active.len(),
                what: "mac inputs",
            });
        }
        let (line_limit, out_len) = match direction {
            MacDirection::RowsToColumns => (self.geometry.rows, self.geometry.cols),
            MacDirection::ColumnsToRows => (self.geometry.cols, self.geometry.rows),
        };
        for &a in active {
            if a >= line_limit {
                return Err(match direction {
                    MacDirection::RowsToColumns => XbarError::RowOutOfRange {
                        row: a,
                        rows: line_limit,
                    },
                    MacDirection::ColumnsToRows => XbarError::ColumnOutOfRange {
                        col: a,
                        cols: line_limit,
                    },
                });
            }
        }
        Ok(out_len)
    }

    /// Counts the periphery cost of one MAC burst: one MAC op, one DAC
    /// conversion per active line per input step, one ADC sample per
    /// crossed line per input step per slice.
    fn bill_op(&mut self, active_len: usize, out_len: usize) {
        let input_steps = self.input_bits.div_ceil(self.geometry.dac_bits) as u64;
        self.stats.record_mac(active_len);
        self.stats.dac_conversions += active_len as u64 * input_steps;
        self.stats.adc_samples += out_len as u64 * input_steps * self.geometry.slices as u64;
    }

    fn cell(&self, row: usize, col: usize) -> u32 {
        self.cells[row * self.geometry.cols + col]
    }

    fn crossed_cell(&self, direction: MacDirection, active: usize, out: usize) -> u32 {
        match direction {
            MacDirection::RowsToColumns => self.cell(active, out),
            MacDirection::ColumnsToRows => self.cell(out, active),
        }
    }

    /// Fills `out` (pre-sized and zeroed by [`mac_into`](Self::mac_into)).
    fn mac_exact(
        &self,
        direction: MacDirection,
        active: &[usize],
        inputs: &[u32],
        out: &mut [u64],
    ) {
        // gaasx-lint: hot
        for (o, slot) in out.iter_mut().enumerate() {
            for (&a, &x) in active.iter().zip(inputs) {
                *slot += u64::from(x) * u64::from(self.crossed_cell(direction, a, o));
            }
        }
        // gaasx-lint: end-hot
    }

    /// Bit-sliced evaluation: inputs stream `dac_bits` per step (LSB first),
    /// weights are split into `slices` groups of `bits_per_cell`, each
    /// (step, slice) partial is an analog sum that saturates at the ADC full
    /// scale, then shift-and-add reconstructs the product sum.
    fn mac_quantized(
        &mut self,
        direction: MacDirection,
        active: &[usize],
        inputs: &[u32],
        out: &mut [u64],
    ) {
        let g = self.geometry;
        let dac_mask = (1u32 << g.dac_bits) - 1;
        let cell_mask = (1u32 << g.bits_per_cell) - 1;
        let adc_full_scale = (1u64 << g.adc_bits) - 1;
        let steps = self.input_bits.div_ceil(g.dac_bits);
        if self.noise.is_none()
            && self.faults.is_none()
            && self.kernel == Kernel::Packed
            && active.len() <= 64
        {
            // Clean burst, packed kernel: every crossed line is independent
            // and no RNG is consumed, so the lane bit-plane evaluation is
            // free to replace the scalar loop (integer-identical results).
            let x_planes = pack_bit_planes(inputs);
            for (o, slot) in out.iter_mut().enumerate() {
                *slot = self.quantized_line_packed(direction, active, &x_planes, o);
            }
            return;
        }
        // gaasx-lint: hot
        for (o, slot) in out.iter_mut().enumerate() {
            let mut acc = 0u64;
            for step in 0..steps {
                for slice in 0..g.slices as u32 {
                    let mut partial = 0u64;
                    for (&a, &x) in active.iter().zip(inputs) {
                        let x_bits = (x >> (step * g.dac_bits)) & dac_mask;
                        let w_bits = (self.crossed_cell(direction, a, o)
                            >> (slice * g.bits_per_cell))
                            & cell_mask;
                        partial += u64::from(x_bits) * u64::from(w_bits);
                    }
                    if let Some(noise) = &mut self.noise {
                        partial = noise.perturb_count(partial);
                    }
                    let mut sampled = partial.min(adc_full_scale);
                    if let Some(faults) = &mut self.faults {
                        sampled = faults.perturb_sample(sampled);
                    }
                    acc += sampled << (step * g.dac_bits + slice * g.bits_per_cell);
                }
            }
            *slot = acc;
        }
        // gaasx-lint: end-hot
    }

    /// One crossed line of [`mac_quantized`](Self::mac_quantized) with no
    /// noise or fault state attached (so no RNG is consumed): identical
    /// bit-slicing and ADC saturation, restricted to slot `o`.
    fn quantized_line_clean(
        &self,
        direction: MacDirection,
        active: &[usize],
        inputs: &[u32],
        o: usize,
    ) -> u64 {
        let g = self.geometry;
        let dac_mask = (1u32 << g.dac_bits) - 1;
        let cell_mask = (1u32 << g.bits_per_cell) - 1;
        let adc_full_scale = (1u64 << g.adc_bits) - 1;
        let steps = self.input_bits.div_ceil(g.dac_bits);
        // gaasx-lint: hot
        let mut acc = 0u64;
        for step in 0..steps {
            for slice in 0..g.slices as u32 {
                let mut partial = 0u64;
                for (&a, &x) in active.iter().zip(inputs) {
                    let x_bits = (x >> (step * g.dac_bits)) & dac_mask;
                    let w_bits = (self.crossed_cell(direction, a, o) >> (slice * g.bits_per_cell))
                        & cell_mask;
                    partial += u64::from(x_bits) * u64::from(w_bits);
                }
                acc += partial.min(adc_full_scale) << (step * g.dac_bits + slice * g.bits_per_cell);
            }
        }
        acc
        // gaasx-lint: end-hot
    }

    /// One crossed line of the clean quantized path, evaluated by lane
    /// bit-plane popcounts instead of per-lane multiply-adds.
    ///
    /// Each `(step, slice)` partial is
    /// `Σ_lanes x_bits · w_bits = Σ_{p<dac_bits, q<bits_per_cell} 2^{p+q} ·
    /// popcount(x_plane[step·dac+p] & w_plane[slice·cell+q])`, which is
    /// integer-identical to the scalar expansion, then saturates at the
    /// ADC full scale and shift-adds exactly as
    /// [`quantized_line_clean`](Self::quantized_line_clean) does. The
    /// `Exact` paths stay scalar on purpose: without the per-partial ADC
    /// clip the bit-plane expansion performs the same number of operations
    /// as the plain multiply-add, so there is nothing to win there.
    ///
    /// Callers must ensure `active.len() <= 64` (one lane per mask bit).
    fn quantized_line_packed(
        &self,
        direction: MacDirection,
        active: &[usize],
        x_planes: &[u64; 64],
        o: usize,
    ) -> u64 {
        let g = self.geometry;
        let adc_full_scale = (1u64 << g.adc_bits) - 1;
        let steps = self.input_bits.div_ceil(g.dac_bits);
        // gaasx-lint: hot
        let mut w_planes = [0u64; 64];
        for (lane, &a) in active.iter().enumerate() {
            let mut bits = self.crossed_cell(direction, a, o);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                w_planes[b] |= 1 << lane;
            }
        }
        let mut acc = 0u64;
        for step in 0..steps {
            for slice in 0..g.slices as u32 {
                let mut partial = 0u64;
                for p in 0..g.dac_bits {
                    let x = x_planes[(step * g.dac_bits + p) as usize];
                    if x == 0 {
                        continue;
                    }
                    for q in 0..g.bits_per_cell {
                        let w = w_planes[(slice * g.bits_per_cell + q) as usize];
                        partial += u64::from((x & w).count_ones()) << (p + q);
                    }
                }
                acc += partial.min(adc_full_scale) << (step * g.dac_bits + slice * g.bits_per_cell);
            }
        }
        acc
        // gaasx-lint: end-hot
    }

    /// Device operation counters.
    pub fn stats(&self) -> &XbarStats {
        &self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = XbarStats::new();
    }

    /// Adds externally accumulated counters into this device's stats —
    /// how a primary engine absorbs the device activity of sibling worker
    /// engines when merging a sharded run.
    pub fn merge_stats(&mut self, other: &XbarStats) {
        self.stats.merge(other);
    }

    /// Zeroes all cells *without* counting writes (simulation reset, not a
    /// device operation).
    pub fn clear(&mut self) {
        self.cells.fill(0);
    }

    /// Re-materializes a row *without* counting writes.
    ///
    /// The functional simulator multiplexes one working array over the many
    /// physical banks that hold data concurrently; when a value set was
    /// already loaded (and its programming cost counted) this call restores
    /// it into the working array before an operation. It performs the same
    /// validation as [`MacCrossbar::write_row`] but records no device
    /// activity.
    ///
    /// # Errors
    ///
    /// Range and code errors as in [`MacCrossbar::write_row`].
    pub fn preload_row(&mut self, row: usize, codes: &[u32]) -> Result<(), XbarError> {
        if row >= self.geometry.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        if codes.len() > self.geometry.cols {
            return Err(XbarError::DimensionMismatch {
                got: codes.len(),
                expected: self.geometry.cols,
                what: "row codes",
            });
        }
        let max = self.max_code();
        for &c in codes {
            if c > max {
                return Err(XbarError::InvalidParameter(format!(
                    "code {c} exceeds {}-bit cell range",
                    self.geometry.weight_bits()
                )));
            }
        }
        let base = row * self.geometry.cols;
        if let Some(faults) = self.faults.as_ref() {
            // Stuck-at is positional physics: a preload restores the same
            // post-fault view a counted write produced, without wear or
            // transient rolls (the data was programmed once already).
            for (col, &c) in codes.iter().enumerate() {
                self.cells[base + col] = faults.materialize(row, col, c);
            }
        } else {
            self.cells[base..base + codes.len()].copy_from_slice(codes);
        }
        for c in &mut self.cells[base + codes.len()..base + self.geometry.cols] {
            *c = 0;
        }
        Ok(())
    }
}

/// Transposes up to 64 lane input words into per-bit lane masks:
/// `planes[b]` has bit `lane` set when `inputs[lane]` has bit `b` set.
/// Bits the bit-sliced walk never visits sit unread in the high planes, so
/// no masking is needed to stay identical to the scalar expansion.
fn pack_bit_planes(inputs: &[u32]) -> [u64; 64] {
    let mut planes = [0u64; 64];
    for (lane, &x) in inputs.iter().enumerate() {
        let mut bits = x;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            planes[b] |= 1 << lane;
        }
    }
    planes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(fidelity: Fidelity) -> MacCrossbar {
        MacCrossbar::new(MacGeometry::paper(), fidelity)
    }

    #[test]
    fn exact_dot_products() {
        let mut m = mac(Fidelity::Exact);
        m.write_row(2, &[1, 2, 3]).unwrap();
        m.write_row(7, &[4, 5, 6]).unwrap();
        let out = m
            .mac(MacDirection::RowsToColumns, &[2, 7], &[10, 1])
            .unwrap();
        assert_eq!(&out[..3], &[14, 25, 36]);
        assert!(out[3..].iter().all(|&v| v == 0));
    }

    #[test]
    fn transposed_direction() {
        let mut m = mac(Fidelity::Exact);
        m.write_row(0, &[1, 2]).unwrap();
        m.write_row(1, &[3, 4]).unwrap();
        // Activate columns 0 and 1 with inputs (5, 6): out[r] = 5*c[r][0] + 6*c[r][1].
        let out = m
            .mac(MacDirection::ColumnsToRows, &[0, 1], &[5, 6])
            .unwrap();
        assert_eq!(out[0], 17);
        assert_eq!(out[1], 39);
    }

    #[test]
    fn quantized_matches_exact_within_adc_range() {
        // Small operands keep every (step, slice) partial below the 6-bit
        // ADC full scale, so quantized must equal exact.
        let mut me = mac(Fidelity::Exact);
        let mut mq = mac(Fidelity::Quantized);
        for (r, codes) in [(0usize, [3u32, 7, 1]), (1, [2, 0, 5])] {
            me.write_row(r, &codes).unwrap();
            mq.write_row(r, &codes).unwrap();
        }
        let inputs = [9u32, 13];
        let a = me
            .mac(MacDirection::RowsToColumns, &[0, 1], &inputs)
            .unwrap();
        let b = mq
            .mac(MacDirection::RowsToColumns, &[0, 1], &inputs)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_saturates_on_overload() {
        // 16 rows of max 2-bit slice content with max 2-bit input slices
        // overloads a 6-bit ADC: the quantized result must fall below exact.
        let mut me = mac(Fidelity::Exact);
        let mut mq = mac(Fidelity::Quantized);
        let rows: Vec<usize> = (0..16).collect();
        for &r in &rows {
            me.write_row(r, &[0xFFFF]).unwrap();
            mq.write_row(r, &[0xFFFF]).unwrap();
        }
        let inputs = vec![0xFFFFu32; 16];
        let exact = me.mac(MacDirection::RowsToColumns, &rows, &inputs).unwrap()[0];
        let quant = mq.mac(MacDirection::RowsToColumns, &rows, &inputs).unwrap()[0];
        assert!(quant < exact, "quant {quant} should saturate below {exact}");
    }

    #[test]
    fn enforces_active_row_cap() {
        let mut m = mac(Fidelity::Exact);
        let rows: Vec<usize> = (0..17).collect();
        let inputs = vec![1u32; 17];
        assert!(matches!(
            m.mac(MacDirection::RowsToColumns, &rows, &inputs),
            Err(XbarError::TooManyActiveRows { limit: 16, .. })
        ));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let mut m = mac(Fidelity::Exact);
        assert!(m.mac(MacDirection::RowsToColumns, &[0, 1], &[1]).is_err());
    }

    #[test]
    fn rejects_out_of_range_lines() {
        let mut m = mac(Fidelity::Exact);
        assert!(m.mac(MacDirection::RowsToColumns, &[500], &[1]).is_err());
        assert!(m.mac(MacDirection::ColumnsToRows, &[16], &[1]).is_err());
        assert!(m.write_row(128, &[1]).is_err());
        assert!(m.write_cell(0, 16, 1).is_err());
    }

    #[test]
    fn rejects_code_overflow() {
        let mut m = mac(Fidelity::Exact);
        assert!(m.write_row(0, &[0x1_0000]).is_err());
        assert!(m.write_cell(0, 0, 0x1_0000).is_err());
    }

    #[test]
    fn write_row_zeroes_tail() {
        let mut m = mac(Fidelity::Exact);
        m.write_row(0, &[9; 16]).unwrap();
        m.write_row(0, &[1, 2]).unwrap();
        assert_eq!(m.read_cell(0, 2).unwrap(), 0);
        assert_eq!(m.read_cell(0, 15).unwrap(), 0);
    }

    #[test]
    fn stats_account_periphery() {
        let mut m = mac(Fidelity::Exact);
        m.write_row(0, &[1, 2, 3]).unwrap();
        m.mac(MacDirection::RowsToColumns, &[0], &[5]).unwrap();
        let s = m.stats();
        assert_eq!(s.mac_ops, 1);
        assert_eq!(s.rows_activated, 1);
        assert_eq!(s.row_writes, 1);
        assert_eq!(s.cells_written, 3 * 8);
        // 16-bit inputs at 2 bits/step = 8 steps; 16 outputs × 8 slices.
        assert_eq!(s.dac_conversions, 8);
        assert_eq!(s.adc_samples, 16 * 8 * 8);
    }

    #[test]
    fn empty_activation_is_legal() {
        let mut m = mac(Fidelity::Exact);
        let out = m.mac(MacDirection::RowsToColumns, &[], &[]).unwrap();
        assert!(out.iter().all(|&v| v == 0));
        assert_eq!(m.stats().rows_per_mac.iter().sum::<u64>(), 1);
    }

    #[test]
    fn mac_col_matches_full_burst_and_billing() {
        for fidelity in [Fidelity::Exact, Fidelity::Quantized] {
            let mut full = mac(fidelity);
            let mut single = mac(fidelity);
            for (r, codes) in [(0usize, [0xFFu32, 7, 1]), (3, [2, 0x3FF, 5])] {
                full.write_row(r, &codes).unwrap();
                single.write_row(r, &codes).unwrap();
            }
            let inputs = [0x1234u32, 0xBEEF];
            let out = full
                .mac(MacDirection::RowsToColumns, &[0, 3], &inputs)
                .unwrap();
            for (col, &want) in out.iter().enumerate() {
                let v = single
                    .mac_col(MacDirection::RowsToColumns, &[0, 3], &inputs, col)
                    .unwrap();
                assert_eq!(v, want, "{fidelity:?} col {col}");
            }
            // Billing is per burst, not per line read: 16 mac_col calls
            // cost 16× one full burst.
            assert_eq!(single.stats().mac_ops, 16 * full.stats().mac_ops);
            assert_eq!(
                single.stats().dac_conversions,
                16 * full.stats().dac_conversions
            );
            assert_eq!(single.stats().adc_samples, 16 * full.stats().adc_samples);
        }
    }

    #[test]
    fn mac_col_transposed_and_range_checks() {
        let mut m = mac(Fidelity::Exact);
        m.write_row(0, &[1, 2]).unwrap();
        m.write_row(1, &[3, 4]).unwrap();
        let v = m
            .mac_col(MacDirection::ColumnsToRows, &[0, 1], &[5, 6], 1)
            .unwrap();
        assert_eq!(v, 39);
        let before = m.stats().mac_ops;
        assert!(matches!(
            m.mac_col(MacDirection::RowsToColumns, &[0], &[1], 16),
            Err(XbarError::ColumnOutOfRange { col: 16, cols: 16 })
        ));
        assert!(matches!(
            m.mac_col(MacDirection::ColumnsToRows, &[0], &[1], 128),
            Err(XbarError::RowOutOfRange {
                row: 128,
                rows: 128
            })
        ));
        assert!(m
            .mac_col(MacDirection::RowsToColumns, &[500], &[1], 0)
            .is_err());
        assert_eq!(m.stats().mac_ops, before, "failed bursts cost nothing");
    }

    #[test]
    fn mac_col_with_faults_matches_full_burst_rng_sequence() {
        use crate::fault::{FaultModel, MacFaultState};
        let g = MacGeometry::paper();
        let model = FaultModel {
            seed: 21,
            adc_flip_rate: 0.05,
            ..FaultModel::none()
        };
        let mut full = MacCrossbar::new(g, Fidelity::Quantized);
        full.set_faults(Some(MacFaultState::new(model, &g)));
        let mut single = MacCrossbar::new(g, Fidelity::Quantized);
        single.set_faults(Some(MacFaultState::new(model, &g)));
        for m in [&mut full, &mut single] {
            m.write_row(0, &[0x1FF, 0x2A]).unwrap();
        }
        // First burst: the fallback path must consume the same RNG draws as
        // a full evaluation...
        let a = full
            .mac(MacDirection::RowsToColumns, &[0], &[0x7777])
            .unwrap();
        let b = single
            .mac_col(MacDirection::RowsToColumns, &[0], &[0x7777], 1)
            .unwrap();
        assert_eq!(b, a[1]);
        // ...so a second burst still agrees bit-for-bit.
        let a2 = full
            .mac(MacDirection::RowsToColumns, &[0], &[0x1234])
            .unwrap();
        let b2 = single
            .mac_col(MacDirection::RowsToColumns, &[0], &[0x1234], 0)
            .unwrap();
        assert_eq!(b2, a2[0]);
    }

    #[test]
    fn mac_lines_matches_full_burst_and_billing() {
        for fidelity in [Fidelity::Exact, Fidelity::Quantized] {
            let mut full = mac(fidelity);
            let mut lines = mac(fidelity);
            for (r, codes) in [(0usize, [0xFFu32, 7, 1]), (3, [2, 0x3FF, 5])] {
                full.write_row(r, &codes).unwrap();
                lines.write_row(r, &codes).unwrap();
            }
            let inputs = [0x1234u32, 0xBEEF];
            let out = full
                .mac(MacDirection::RowsToColumns, &[0, 3], &inputs)
                .unwrap();
            let mut got = Vec::new();
            lines
                .mac_lines_into(
                    MacDirection::RowsToColumns,
                    &[0, 3],
                    &inputs,
                    &[5, 0, 2],
                    &mut got,
                )
                .unwrap();
            assert_eq!(got, vec![out[5], out[0], out[2]], "{fidelity:?}");
            // One restricted call bills exactly one full burst.
            assert_eq!(lines.stats().mac_ops, full.stats().mac_ops);
            assert_eq!(lines.stats().dac_conversions, full.stats().dac_conversions);
            assert_eq!(lines.stats().adc_samples, full.stats().adc_samples);
        }
    }

    #[test]
    fn mac_lines_rejects_out_of_range_lines_costlessly() {
        let mut m = mac(Fidelity::Exact);
        let mut out = vec![99];
        assert!(matches!(
            m.mac_lines_into(MacDirection::RowsToColumns, &[0], &[1], &[16], &mut out),
            Err(XbarError::ColumnOutOfRange { col: 16, cols: 16 })
        ));
        assert!(matches!(
            m.mac_lines_into(MacDirection::ColumnsToRows, &[0], &[1], &[128], &mut out),
            Err(XbarError::RowOutOfRange {
                row: 128,
                rows: 128
            })
        ));
        assert!(out.is_empty(), "error leaves the buffer cleared");
        assert_eq!(m.stats().mac_ops, 0, "failed bursts cost nothing");
    }

    #[test]
    fn mac_lines_with_faults_matches_full_burst_rng_sequence() {
        use crate::fault::{FaultModel, MacFaultState};
        let g = MacGeometry::paper();
        let model = FaultModel {
            seed: 21,
            adc_flip_rate: 0.05,
            ..FaultModel::none()
        };
        let mut full = MacCrossbar::new(g, Fidelity::Quantized);
        full.set_faults(Some(MacFaultState::new(model, &g)));
        let mut lines = MacCrossbar::new(g, Fidelity::Quantized);
        lines.set_faults(Some(MacFaultState::new(model, &g)));
        for m in [&mut full, &mut lines] {
            m.write_row(0, &[0x1FF, 0x2A]).unwrap();
        }
        let a = full
            .mac(MacDirection::RowsToColumns, &[0], &[0x7777])
            .unwrap();
        let mut b = Vec::new();
        lines
            .mac_lines_into(MacDirection::RowsToColumns, &[0], &[0x7777], &[1], &mut b)
            .unwrap();
        assert_eq!(b, vec![a[1]]);
        // The fallback consumed full-burst RNG draws, so the next burst
        // still agrees bit-for-bit.
        let a2 = full
            .mac(MacDirection::RowsToColumns, &[0], &[0x1234])
            .unwrap();
        let mut b2 = Vec::new();
        lines
            .mac_lines_into(MacDirection::RowsToColumns, &[0], &[0x1234], &[0], &mut b2)
            .unwrap();
        assert_eq!(b2, vec![a2[0]]);
    }

    #[test]
    fn packed_quantized_kernel_matches_scalar() {
        // Full 16-lane bursts with mixed magnitudes: saturating and
        // non-saturating partials must agree bit-for-bit across kernels.
        let rows: Vec<usize> = (0..16).collect();
        let inputs: Vec<u32> = (0..16)
            .map(|i| 0x1111u32.wrapping_mul(i) & 0xFFFF)
            .collect();
        let run = |kernel: Kernel| {
            let mut m = mac(Fidelity::Quantized);
            m.set_kernel(kernel);
            assert_eq!(m.kernel(), kernel);
            for r in 0..16 {
                let codes: Vec<u32> = (0..16)
                    .map(|c| ((r * 31 + c * 17) % 0xFFFF) as u32)
                    .collect();
                m.write_row(r, &codes).unwrap();
            }
            let mut outs = Vec::new();
            outs.extend(m.mac(MacDirection::RowsToColumns, &rows, &inputs).unwrap());
            outs.push(
                m.mac_col(MacDirection::RowsToColumns, &rows, &inputs, 7)
                    .unwrap(),
            );
            let cols: Vec<usize> = (0..16).collect();
            outs.extend(m.mac(MacDirection::ColumnsToRows, &cols, &inputs).unwrap());
            let mut restricted = Vec::new();
            m.mac_lines_into(
                MacDirection::ColumnsToRows,
                &cols,
                &inputs,
                &[127, 0, 64],
                &mut restricted,
            )
            .unwrap();
            outs.extend(restricted);
            outs
        };
        assert_eq!(run(Kernel::Scalar), run(Kernel::Packed));
    }

    #[test]
    fn write_cell_rejects_out_of_range_row() {
        let mut m = mac(Fidelity::Exact);
        assert!(matches!(
            m.write_cell(128, 0, 1),
            Err(XbarError::RowOutOfRange {
                row: 128,
                rows: 128
            })
        ));
        assert_eq!(m.stats().row_writes, 0, "failed writes cost nothing");
    }

    #[test]
    fn read_cell_rejects_out_of_range_coordinates() {
        let m = mac(Fidelity::Exact);
        assert!(matches!(
            m.read_cell(128, 0),
            Err(XbarError::RowOutOfRange {
                row: 128,
                rows: 128
            })
        ));
        assert!(matches!(
            m.read_cell(0, 16),
            Err(XbarError::ColumnOutOfRange { col: 16, cols: 16 })
        ));
        assert_eq!(m.read_cell(127, 15).unwrap(), 0);
    }

    #[test]
    fn preload_row_error_paths_mirror_write_row() {
        let mut m = mac(Fidelity::Exact);
        assert!(matches!(
            m.preload_row(128, &[1]),
            Err(XbarError::RowOutOfRange {
                row: 128,
                rows: 128
            })
        ));
        assert!(matches!(
            m.preload_row(0, &[0u32; 17]),
            Err(XbarError::DimensionMismatch {
                got: 17,
                expected: 16,
                ..
            })
        ));
        assert!(matches!(
            m.preload_row(0, &[0x1_0000]),
            Err(XbarError::InvalidParameter(_))
        ));
        // A failed preload must leave cells and stats untouched.
        assert_eq!(m.read_cell(0, 0).unwrap(), 0);
        assert_eq!(m.stats().row_writes, 0);
        assert_eq!(m.stats().cells_written, 0);
    }

    #[test]
    fn stuck_faults_corrupt_writes_and_preloads_identically() {
        use crate::fault::{FaultModel, MacFaultState};
        let g = MacGeometry::paper();
        let model = FaultModel {
            seed: 9,
            mac_stuck_ber: 0.1,
            ..FaultModel::none()
        };
        let mut written = MacCrossbar::new(g, Fidelity::Exact);
        written.set_faults(Some(MacFaultState::new(model, &g)));
        let mut preloaded = MacCrossbar::new(g, Fidelity::Exact);
        preloaded.set_faults(Some(MacFaultState::new(model, &g)));
        let codes = [0x00FFu32, 0xFF00, 0x0F0F];
        let mut corrupted = 0;
        for row in 0..g.rows {
            written.write_row(row, &codes).unwrap();
            preloaded.preload_row(row, &codes).unwrap();
            for (col, &code) in codes.iter().enumerate() {
                let w = written.read_cell(row, col).unwrap();
                assert_eq!(w, preloaded.read_cell(row, col).unwrap());
                if w != code {
                    corrupted += 1;
                }
            }
        }
        assert!(corrupted > 0, "10% BER must touch some of 384 cells");
    }

    #[test]
    fn detached_faults_restore_clean_writes() {
        use crate::fault::{FaultModel, MacFaultState};
        let g = MacGeometry::paper();
        let mut m = MacCrossbar::new(g, Fidelity::Exact);
        m.set_faults(Some(MacFaultState::new(
            FaultModel {
                seed: 1,
                mac_stuck_ber: 1.0,
                ..FaultModel::none()
            },
            &g,
        )));
        m.write_row(0, &[0x5555]).unwrap();
        assert_ne!(m.read_cell(0, 0).unwrap(), 0x5555, "all cells stuck");
        m.set_faults(None);
        m.write_row(0, &[0x5555]).unwrap();
        assert_eq!(m.read_cell(0, 0).unwrap(), 0x5555);
        assert!(m.fault_stats().is_none());
    }
}
