//! ReRAM crossbar device substrate for the GaaS-X reproduction.
//!
//! Models the two in-situ compute primitives the accelerator is built from
//! (paper §II-C, Fig 3):
//!
//! * [`MacCrossbar`] — an analog multiply-and-accumulate array: 128×16
//!   effective cells at 2 bits/cell × 8 bit slices (16-bit weights), DAC-fed
//!   inputs, sample-and-hold columns, a shared 6-bit ADC, and shift-and-add
//!   reconstruction. Rows (or, transposed, columns) can be *selectively*
//!   activated from a CAM hit vector — the mechanism that lets GaaS-X
//!   accumulate only valid edges.
//! * [`CamCrossbar`] — a 128×128 ternary content-addressable memory: a
//!   masked search key is broadcast to all rows in one 4 ns operation and
//!   every matching row raises a line in the returned [`HitVector`].
//!
//! Device *cost* is captured separately from device *function*: every
//! operation bumps counters in [`XbarStats`], and
//! [`energy::DeviceEnergyModel`] (constants derived from Table I of the
//! paper) converts those counts into nanojoules and nanoseconds. Functional
//! fidelity is configurable through [`Fidelity`]: `Exact` arithmetic for
//! algorithm validation, or `Quantized` periphery that saturates at the
//! 6-bit ADC range like real silicon.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cam;
mod error;
mod hit_vector;
mod kernel;
mod mac;
mod packed;

pub mod auto;
pub mod energy;
pub mod fast_hash;
pub mod fault;
pub mod fixed;
pub mod geometry;
pub mod noise;
pub mod periphery;

pub use auto::{BlockShape, SearchCostModel, SearchProfile};
pub use cam::{CamCrossbar, CamEntry, SearchMode};
pub use error::XbarError;
pub use fault::FaultModel;
pub use hit_vector::{ChunkOnes, HitVector};
pub use kernel::Kernel;
pub use mac::{Fidelity, MacCrossbar, MacDirection};

use serde::{Deserialize, Serialize};

/// Operation counters shared by both crossbar kinds.
///
/// The simulation layer reads these to account time and energy; devices
/// never compute joules themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct XbarStats {
    /// MAC operations issued (each covers one ≤16-row accumulation burst).
    pub mac_ops: u64,
    /// Total rows (or columns, when transposed) activated across MAC ops.
    pub rows_activated: u64,
    /// Histogram of rows activated per MAC op; index `i` counts ops that
    /// activated `i + 1` rows (paper Fig 13). Ops beyond the last bucket
    /// clamp into it.
    pub rows_per_mac: Vec<u64>,
    /// CAM search operations issued.
    pub cam_searches: u64,
    /// Individual cells programmed (both CAM and MAC writes).
    pub cells_written: u64,
    /// Row-granularity write operations (a row write programs all its cells
    /// in one verify-program burst).
    pub row_writes: u64,
    /// ADC conversions performed.
    pub adc_samples: u64,
    /// DAC conversions performed.
    pub dac_conversions: u64,
}

impl XbarStats {
    /// Creates zeroed stats with a 16-bucket rows-per-MAC histogram.
    pub fn new() -> Self {
        XbarStats {
            rows_per_mac: vec![0; 16],
            ..Default::default()
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &XbarStats) {
        self.mac_ops += other.mac_ops;
        self.rows_activated += other.rows_activated;
        if self.rows_per_mac.len() < other.rows_per_mac.len() {
            self.rows_per_mac.resize(other.rows_per_mac.len(), 0);
        }
        for (i, &v) in other.rows_per_mac.iter().enumerate() {
            self.rows_per_mac[i] += v;
        }
        self.cam_searches += other.cam_searches;
        self.cells_written += other.cells_written;
        self.row_writes += other.row_writes;
        self.adc_samples += other.adc_samples;
        self.dac_conversions += other.dac_conversions;
    }

    /// Records one MAC op that activated `rows` rows.
    pub fn record_mac(&mut self, rows: usize) {
        self.mac_ops += 1;
        self.rows_activated += rows as u64;
        if self.rows_per_mac.is_empty() {
            self.rows_per_mac = vec![0; 16];
        }
        let bucket = rows.saturating_sub(1).min(self.rows_per_mac.len() - 1);
        self.rows_per_mac[bucket] += 1;
    }

    /// Mean rows activated per MAC op (0 if none issued).
    pub fn mean_rows_per_mac(&self) -> f64 {
        if self.mac_ops == 0 {
            0.0
        } else {
            self.rows_activated as f64 / self.mac_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_accumulates() {
        let mut a = XbarStats::new();
        a.record_mac(1);
        a.cam_searches = 5;
        let mut b = XbarStats::new();
        b.record_mac(3);
        b.cells_written = 7;
        a.merge(&b);
        assert_eq!(a.mac_ops, 2);
        assert_eq!(a.rows_activated, 4);
        assert_eq!(a.cam_searches, 5);
        assert_eq!(a.cells_written, 7);
        assert_eq!(a.rows_per_mac[0], 1);
        assert_eq!(a.rows_per_mac[2], 1);
    }

    #[test]
    fn histogram_clamps_large_bursts() {
        let mut s = XbarStats::new();
        s.record_mac(40);
        assert_eq!(s.rows_per_mac[15], 1);
    }

    #[test]
    fn mean_rows_handles_zero_ops() {
        assert_eq!(XbarStats::new().mean_rows_per_mac(), 0.0);
    }
}
