//! Deterministic, seeded device-fault injection.
//!
//! ReRAM arrays fail in ways ordinary DRAM does not: individual cells get
//! stuck at their minimum or maximum conductance (GMIN/GMAX), programming
//! pulses fail transiently, cells wear out after a bounded number of SET/RESET
//! cycles, CAM match lines glitch into false hits or misses, and ADC samples
//! flip bits. Because GaaS-X stores the *graph itself* in the crossbars, any
//! of these silently corrupts edges or weights for every later iteration —
//! which is why the engine layers write-verify / retry / spare-row remapping
//! on top of this module (see `gaasx-core`).
//!
//! Everything here is deterministic given [`FaultModel::seed`]:
//!
//! * **Stuck-at maps** are *positional* — whether device `(row, col, slice)`
//!   (MAC) or bit `(row, bit)` (CAM) is stuck, and at which polarity, is a
//!   pure hash of `(seed, domain, position)`. Two crossbars built from the
//!   same model agree on every stuck device, so sharded engines that model
//!   the same physical bank see the same defects.
//! * **Transient events** (write failures, CAM search upsets, ADC flips)
//!   draw from a per-crossbar [`SmallRng`] seeded from the model, so a given
//!   serial run replays exactly.
//!
//! The model composes with [`NoiseModel`](crate::noise::NoiseModel): noise
//! perturbs analog MAC sums, faults corrupt stored state and digital samples.
//! A [`FaultModel::none`] model injects nothing and costs nothing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::XbarError;
use crate::geometry::{CamGeometry, MacGeometry};
use crate::hit_vector::HitVector;

/// Configuration for seeded device-fault injection.
///
/// All rates are probabilities in `[0, 1]`. The default (and
/// [`FaultModel::none`]) is all-zero: no faults, no RNG draws, no cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Seed for the positional stuck maps and the transient-event streams.
    pub seed: u64,
    /// Per-device probability that a MAC cell `(row, col, slice)` is stuck
    /// at GMIN (reads all-zeros) or GMAX (reads all-ones).
    pub mac_stuck_ber: f64,
    /// Per-bit probability that a CAM cell is stuck at 0 or 1. A stuck CAM
    /// bit turns into a false miss or false hit for every key that differs
    /// from the stuck value at that position.
    pub cam_stuck_ber: f64,
    /// Per-row-write probability that the programming burst fails
    /// transiently, corrupting one random bit of the written row. A retry
    /// redraws, so verify-and-retry recovers these.
    pub write_fail_rate: f64,
    /// SET/RESET cycles a device endures before dying stuck-at-GMIN.
    /// `0` means unlimited endurance (wear tracking disabled).
    pub endurance: u64,
    /// Per-search probability that one random CAM row's match line glitches,
    /// toggling its hit bit (false hit or false miss) for that search only.
    pub cam_upset_rate: f64,
    /// Per-sample probability that an ADC conversion flips one random output
    /// bit. Only observable under quantized fidelity, where real ADCs sit on
    /// the datapath.
    pub adc_flip_rate: f64,
}

impl FaultModel {
    /// A model that injects nothing. [`FaultModel::is_none`] returns `true`.
    pub fn none() -> Self {
        FaultModel {
            seed: 0,
            mac_stuck_ber: 0.0,
            cam_stuck_ber: 0.0,
            write_fail_rate: 0.0,
            endurance: 0,
            cam_upset_rate: 0.0,
            adc_flip_rate: 0.0,
        }
    }

    /// `true` when every fault mechanism is disabled; crossbars skip all
    /// fault bookkeeping for such a model.
    pub fn is_none(&self) -> bool {
        self.mac_stuck_ber == 0.0
            && self.cam_stuck_ber == 0.0
            && self.write_fail_rate == 0.0
            && self.endurance == 0
            && self.cam_upset_rate == 0.0
            && self.adc_flip_rate == 0.0
    }

    /// Validates that every rate is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] if any rate is not a finite
    /// value in `[0, 1]`.
    pub fn validate(&self) -> Result<(), XbarError> {
        let rates = [
            ("mac_stuck_ber", self.mac_stuck_ber),
            ("cam_stuck_ber", self.cam_stuck_ber),
            ("write_fail_rate", self.write_fail_rate),
            ("cam_upset_rate", self.cam_upset_rate),
            ("adc_flip_rate", self.adc_flip_rate),
        ];
        for (name, rate) in rates {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(XbarError::InvalidParameter(format!(
                    "fault model: {name} {rate} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// Counts of injected fault events, for tests and diagnostics.
///
/// These count what the *device* did, not what the engine detected — the
/// recovery layer keeps its own detection/retry/remap counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient write bursts that corrupted a bit.
    pub transient_write_faults: u64,
    /// ADC samples that had a bit flipped.
    pub adc_flips: u64,
    /// CAM searches where a match line glitched.
    pub cam_upsets: u64,
    /// Devices (MAC cells or CAM rows) that exceeded their endurance and
    /// died stuck during this crossbar's lifetime.
    pub wear_deaths: u64,
}

impl FaultStats {
    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.transient_write_faults = self
            .transient_write_faults
            .saturating_add(other.transient_write_faults);
        self.adc_flips = self.adc_flips.saturating_add(other.adc_flips);
        self.cam_upsets = self.cam_upsets.saturating_add(other.cam_upsets);
        self.wear_deaths = self.wear_deaths.saturating_add(other.wear_deaths);
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic hash of `(seed, domain, position)` for positional stuck
/// decisions. Bit 0 picks the stuck polarity; the remaining bits form a
/// 53-bit uniform for the Bernoulli roll.
#[inline]
fn stuck_hash(seed: u64, domain: u64, position: u64) -> u64 {
    mix64(mix64(seed ^ domain).wrapping_add(position))
}

/// Converts the top bits of a hash to a uniform in `[0, 1)`.
#[inline]
fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const MAC_DOMAIN: u64 = 0x6D61_635F_7374_7563; // "mac_stuc"
const CAM_DOMAIN: u64 = 0x6361_6D5F_7374_7563; // "cam_stuc"

/// Polarity of a stuck device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stuck {
    /// Minimum conductance — the cell reads as all-zero bits.
    Gmin,
    /// Maximum conductance — the cell reads as all-one bits.
    Gmax,
}

/// Runtime fault state attached to a [`MacCrossbar`](crate::MacCrossbar).
///
/// Stuck faults are applied *at write time*: the crossbar's cell array always
/// holds the post-fault view, so the hot MAC loops read it unchanged. Wear is
/// tracked per physical cell; a worn-out cell becomes permanently
/// stuck-at-GMIN, which the next verify pass detects.
#[derive(Debug, Clone)]
pub struct MacFaultState {
    model: FaultModel,
    cols: usize,
    slices: usize,
    bits_per_cell: u32,
    adc_bits: u32,
    /// Per-cell write counts, indexed `row * cols + col`; empty when
    /// endurance tracking is off.
    wear: Vec<u64>,
    rng: SmallRng,
    stats: FaultStats,
}

impl MacFaultState {
    /// Builds fault state for a crossbar of the given geometry.
    pub fn new(model: FaultModel, geometry: &MacGeometry) -> Self {
        let wear = if model.endurance > 0 {
            vec![0u64; geometry.rows * geometry.cols]
        } else {
            Vec::new()
        };
        MacFaultState {
            model,
            cols: geometry.cols,
            slices: geometry.slices,
            bits_per_cell: geometry.bits_per_cell,
            adc_bits: geometry.adc_bits,
            wear,
            rng: SmallRng::seed_from_u64(mix64(model.seed ^ MAC_DOMAIN)),
            stats: FaultStats::default(),
        }
    }

    /// Injected-event counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Cumulative per-cell programming-pulse counts, indexed
    /// `row * cols + col`. Empty when endurance tracking is off.
    pub fn wear(&self) -> &[u64] {
        &self.wear
    }

    /// Restores a wear map snapshot taken from a previous incarnation of
    /// the same physical bank. A length mismatch (different geometry, or
    /// endurance tracking off on either side) leaves the map untouched —
    /// wear from a foreign geometry would land on the wrong cells.
    pub fn restore_wear(&mut self, wear: &[u64]) {
        if self.wear.len() == wear.len() {
            self.wear.copy_from_slice(wear);
        }
    }

    /// Clears the injected-event counters for a new accounting window,
    /// preserving the wear map and the transient RNG stream. A bank that
    /// stays resident across queries resets stats per query while its
    /// physical degradation keeps accumulating.
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }

    /// Positional stuck decision for one physical device (bit-slice cell).
    fn stuck_slice(&self, row: usize, col: usize, slice: usize) -> Option<Stuck> {
        if self.model.mac_stuck_ber <= 0.0 {
            return None;
        }
        let position = ((row * self.cols + col) * self.slices + slice) as u64;
        let h = stuck_hash(self.model.seed, MAC_DOMAIN, position);
        if unit(h) < self.model.mac_stuck_ber {
            Some(if h & 1 == 0 { Stuck::Gmin } else { Stuck::Gmax })
        } else {
            None
        }
    }

    /// `true` once the cell's wear counter has exceeded its endurance.
    fn worn_out(&self, row: usize, col: usize) -> bool {
        self.model.endurance > 0 && self.wear[row * self.cols + col] > self.model.endurance
    }

    /// Applies the positional stuck map (and wear death) to a code headed
    /// for `(row, col)`. Pure: no RNG, no wear increment — this is the view
    /// the cell array must hold for both counted writes and preloads.
    pub fn materialize(&self, row: usize, col: usize, code: u32) -> u32 {
        if self.worn_out(row, col) {
            return 0; // a dead cell holds GMIN in every slice
        }
        if self.model.mac_stuck_ber <= 0.0 {
            return code;
        }
        let cell_mask = (1u32 << self.bits_per_cell) - 1;
        let mut out = code;
        for slice in 0..self.slices {
            let shift = slice as u32 * self.bits_per_cell;
            match self.stuck_slice(row, col, slice) {
                None => {}
                Some(Stuck::Gmin) => out &= !(cell_mask << shift),
                Some(Stuck::Gmax) => out |= cell_mask << shift,
            }
        }
        out
    }

    /// Records one programming pulse on `(row, col)`: bumps wear (possibly
    /// killing the cell) and rolls for a transient burst failure. Returns
    /// the value the cell actually latched.
    pub fn programmed(&mut self, row: usize, col: usize, code: u32) -> u32 {
        if self.model.endurance > 0 {
            let cell = row * self.cols + col;
            let was_alive = self.wear[cell] <= self.model.endurance;
            self.wear[cell] = self.wear[cell].saturating_add(1);
            if was_alive && self.wear[cell] > self.model.endurance {
                self.stats.wear_deaths = self.stats.wear_deaths.saturating_add(1);
            }
        }
        let mut out = self.materialize(row, col, code);
        if self.model.write_fail_rate > 0.0
            && !self.worn_out(row, col)
            && self.rng.gen::<f64>() < self.model.write_fail_rate
        {
            let weight_bits = self.slices as u32 * self.bits_per_cell;
            let flipped = out ^ (1 << self.rng.gen_range(0..weight_bits));
            // Stuck devices win over transient glitches.
            out = self.materialize(row, col, flipped);
            self.stats.transient_write_faults = self.stats.transient_write_faults.saturating_add(1);
        }
        out
    }

    /// Rolls for a transient ADC bit flip on one sampled partial sum.
    pub fn perturb_sample(&mut self, sampled: u64) -> u64 {
        if self.model.adc_flip_rate > 0.0 && self.rng.gen::<f64>() < self.model.adc_flip_rate {
            self.stats.adc_flips = self.stats.adc_flips.saturating_add(1);
            sampled ^ (1 << self.rng.gen_range(0..self.adc_bits))
        } else {
            sampled
        }
    }

    /// Folds a sibling crossbar's injected-event counters into this one.
    pub fn merge_stats(&mut self, other: &FaultStats) {
        self.stats.merge(other);
    }
}

/// Runtime fault state attached to a [`CamCrossbar`](crate::CamCrossbar).
///
/// Stuck bits are precomputed into per-row OR/AND-NOT masks so applying them
/// to a write is two bit-ops. Wear is tracked per row (an entry is programmed
/// as one burst); a worn-out row reads all-zeros, which verify detects.
#[derive(Debug, Clone)]
pub struct CamFaultState {
    model: FaultModel,
    rows: usize,
    width_bits: u32,
    /// Per-row mask of bits stuck at 0 (cleared on every write).
    stuck0: Vec<u128>,
    /// Per-row mask of bits stuck at 1 (set on every write).
    stuck1: Vec<u128>,
    /// Per-row write counts; empty when endurance tracking is off.
    wear: Vec<u64>,
    rng: SmallRng,
    stats: FaultStats,
}

impl CamFaultState {
    /// Builds fault state for a crossbar of the given geometry, precomputing
    /// the positional stuck masks.
    pub fn new(model: FaultModel, geometry: &CamGeometry) -> Self {
        let (mut stuck0, mut stuck1) = (Vec::new(), Vec::new());
        if model.cam_stuck_ber > 0.0 {
            stuck0 = vec![0u128; geometry.rows];
            stuck1 = vec![0u128; geometry.rows];
            for row in 0..geometry.rows {
                for bit in 0..geometry.width_bits {
                    let position = row as u64 * u64::from(geometry.width_bits) + u64::from(bit);
                    let h = stuck_hash(model.seed, CAM_DOMAIN, position);
                    if unit(h) < model.cam_stuck_ber {
                        if h & 1 == 0 {
                            stuck0[row] |= 1u128 << bit;
                        } else {
                            stuck1[row] |= 1u128 << bit;
                        }
                    }
                }
            }
        }
        let wear = if model.endurance > 0 {
            vec![0u64; geometry.rows]
        } else {
            Vec::new()
        };
        CamFaultState {
            model,
            rows: geometry.rows,
            width_bits: geometry.width_bits,
            stuck0,
            stuck1,
            wear,
            rng: SmallRng::seed_from_u64(mix64(model.seed ^ CAM_DOMAIN)),
            stats: FaultStats::default(),
        }
    }

    /// Injected-event counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Cumulative per-row programming-burst counts. Empty when endurance
    /// tracking is off.
    pub fn wear(&self) -> &[u64] {
        &self.wear
    }

    /// Restores a wear map snapshot taken from a previous incarnation of
    /// the same physical bank. A length mismatch (different geometry, or
    /// endurance tracking off on either side) leaves the map untouched —
    /// wear from a foreign geometry would land on the wrong rows.
    pub fn restore_wear(&mut self, wear: &[u64]) {
        if self.wear.len() == wear.len() {
            self.wear.copy_from_slice(wear);
        }
    }

    /// Clears the injected-event counters for a new accounting window,
    /// preserving the wear map and the transient RNG stream. A bank that
    /// stays resident across queries resets stats per query while its
    /// physical degradation keeps accumulating.
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }

    /// `true` once the row's wear counter has exceeded its endurance.
    fn worn_out(&self, row: usize) -> bool {
        self.model.endurance > 0 && self.wear[row] > self.model.endurance
    }

    /// Records one entry-programming burst on `row`: bumps wear, applies the
    /// stuck masks, and rolls for a transient burst failure. Returns the
    /// bits the row actually latched.
    pub fn programmed(&mut self, row: usize, bits: u128) -> u128 {
        if self.model.endurance > 0 {
            let was_alive = self.wear[row] <= self.model.endurance;
            self.wear[row] = self.wear[row].saturating_add(1);
            if was_alive && self.wear[row] > self.model.endurance {
                self.stats.wear_deaths = self.stats.wear_deaths.saturating_add(1);
            }
        }
        if self.worn_out(row) {
            return 0; // a dead row reads GMIN everywhere
        }
        let mut out = bits;
        if self.model.cam_stuck_ber > 0.0 {
            out = (out | self.stuck1[row]) & !self.stuck0[row];
        }
        if self.model.write_fail_rate > 0.0 && self.rng.gen::<f64>() < self.model.write_fail_rate {
            out ^= 1u128 << self.rng.gen_range(0..self.width_bits);
            if self.model.cam_stuck_ber > 0.0 {
                // Stuck devices win over transient glitches.
                out = (out | self.stuck1[row]) & !self.stuck0[row];
            }
            self.stats.transient_write_faults = self.stats.transient_write_faults.saturating_add(1);
        }
        out
    }

    /// Rolls for a transient match-line upset on one search, toggling a
    /// single random row's hit bit in place.
    pub fn upset(&mut self, hits: &mut HitVector) {
        if self.model.cam_upset_rate > 0.0 && self.rng.gen::<f64>() < self.model.cam_upset_rate {
            let row = self.rng.gen_range(0..self.rows);
            if hits.get(row) {
                hits.clear(row);
            } else {
                hits.set(row);
            }
            self.stats.cam_upsets = self.stats.cam_upsets.saturating_add(1);
        }
    }

    /// Folds a sibling crossbar's injected-event counters into this one.
    pub fn merge_stats(&mut self, other: &FaultStats) {
        self.stats.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(f: impl FnOnce(&mut FaultModel)) -> FaultModel {
        let mut m = FaultModel {
            seed: 42,
            ..FaultModel::none()
        };
        f(&mut m);
        m
    }

    #[test]
    fn none_is_none_and_valid() {
        assert!(FaultModel::none().is_none());
        FaultModel::none().validate().unwrap();
        assert!(!model(|m| m.mac_stuck_ber = 0.1).is_none());
        assert!(!model(|m| m.endurance = 5).is_none());
    }

    #[test]
    fn out_of_range_rates_rejected() {
        assert!(model(|m| m.mac_stuck_ber = -0.1).validate().is_err());
        assert!(model(|m| m.cam_stuck_ber = 1.5).validate().is_err());
        assert!(model(|m| m.write_fail_rate = f64::NAN).validate().is_err());
        assert!(model(|m| m.adc_flip_rate = f64::INFINITY)
            .validate()
            .is_err());
        model(|m| m.cam_upset_rate = 1.0).validate().unwrap();
    }

    #[test]
    fn mac_stuck_map_is_positional_and_seeded() {
        let g = MacGeometry::paper();
        let m = model(|m| m.mac_stuck_ber = 0.05);
        let a = MacFaultState::new(m, &g);
        let b = MacFaultState::new(m, &g);
        let mut stuck = 0usize;
        for row in 0..g.rows {
            for col in 0..g.cols {
                let code = 0x5555u32;
                assert_eq!(a.materialize(row, col, code), b.materialize(row, col, code));
                if a.materialize(row, col, code) != code {
                    stuck += 1;
                }
            }
        }
        // 128×16 cells × 8 slices at 5%: expect plenty of stuck cells.
        assert!(stuck > 100, "only {stuck} cells touched by stuck faults");
        // A different seed yields a different map.
        let c = MacFaultState::new(
            model(|m| {
                m.seed = 43;
                m.mac_stuck_ber = 0.05;
            }),
            &g,
        );
        let differs = (0..g.rows).any(|r| {
            (0..g.cols).any(|co| a.materialize(r, co, 0x5555) != c.materialize(r, co, 0x5555))
        });
        assert!(differs);
    }

    #[test]
    fn mac_stuck_values_stay_in_code_range() {
        let g = MacGeometry::paper();
        let st = MacFaultState::new(model(|m| m.mac_stuck_ber = 0.2), &g);
        let max_code = (1u64 << g.weight_bits()) - 1;
        for row in 0..g.rows {
            for col in 0..g.cols {
                assert!(u64::from(st.materialize(row, col, 0)) <= max_code);
                assert!(u64::from(st.materialize(row, col, max_code as u32)) <= max_code);
            }
        }
    }

    #[test]
    fn wear_kills_cells_at_endurance() {
        let g = MacGeometry::paper();
        let mut st = MacFaultState::new(model(|m| m.endurance = 3), &g);
        for _ in 0..3 {
            assert_eq!(st.programmed(0, 0, 7), 7, "alive within endurance");
        }
        assert_eq!(st.programmed(0, 0, 7), 0, "dead past endurance");
        assert_eq!(st.materialize(0, 0, 7), 0);
        assert_eq!(st.stats().wear_deaths, 1);
        assert_eq!(st.programmed(0, 1, 7), 7, "neighbor cell unaffected");
    }

    #[test]
    fn transient_write_faults_fire_at_observed_rate() {
        let g = MacGeometry::paper();
        let mut st = MacFaultState::new(model(|m| m.write_fail_rate = 0.25), &g);
        let mut corrupted = 0usize;
        for i in 0..4000 {
            if st.programmed(i % g.rows, i % g.cols, 0x0F0F) != 0x0F0F {
                corrupted += 1;
            }
        }
        assert_eq!(st.stats().transient_write_faults, corrupted as u64);
        assert!((800..1200).contains(&corrupted), "corrupted {corrupted}");
    }

    #[test]
    fn adc_flips_only_when_enabled() {
        let g = MacGeometry::paper();
        let mut off = MacFaultState::new(model(|_| {}), &g);
        assert_eq!(off.perturb_sample(33), 33);
        let mut on = MacFaultState::new(model(|m| m.adc_flip_rate = 1.0), &g);
        let flipped = on.perturb_sample(33);
        assert_ne!(flipped, 33);
        assert!(flipped < 1 << (g.adc_bits + 1));
        assert_eq!(on.stats().adc_flips, 1);
    }

    #[test]
    fn cam_stuck_masks_apply_on_write() {
        let g = CamGeometry::paper();
        let m = model(|m| m.cam_stuck_ber = 0.02);
        let mut st = CamFaultState::new(m, &g);
        let mut st2 = CamFaultState::new(m, &g);
        let mut touched = 0usize;
        for row in 0..g.rows {
            let bits = 0xDEAD_BEEF_u128 << (row % 64);
            let out = st.programmed(row, bits);
            assert_eq!(out, st2.programmed(row, bits), "positional determinism");
            if out != bits {
                touched += 1;
            }
        }
        // 128 rows × 128 bits at 2%: P(row untouched) ≈ 7.5%.
        assert!(touched > 64, "only {touched} rows touched");
    }

    #[test]
    fn cam_upsets_toggle_exactly_one_row() {
        let g = CamGeometry::paper();
        let mut st = CamFaultState::new(model(|m| m.cam_upset_rate = 1.0), &g);
        let mut hits = HitVector::new(g.rows);
        hits.set(3);
        st.upset(&mut hits);
        assert_eq!(st.stats().cam_upsets, 1);
        let delta: usize = (0..g.rows).filter(|&r| hits.get(r) != (r == 3)).count();
        assert_eq!(delta, 1, "exactly one match line toggled");
    }

    #[test]
    fn cam_wear_kills_rows() {
        let g = CamGeometry::paper();
        let mut st = CamFaultState::new(model(|m| m.endurance = 2), &g);
        assert_eq!(st.programmed(5, u128::MAX >> 1), u128::MAX >> 1);
        assert_eq!(st.programmed(5, u128::MAX >> 1), u128::MAX >> 1);
        assert_eq!(
            st.programmed(5, u128::MAX >> 1),
            0,
            "row dead past endurance"
        );
        assert_eq!(st.stats().wear_deaths, 1);
    }

    #[test]
    fn stats_merge_saturates() {
        let mut a = FaultStats {
            transient_write_faults: u64::MAX,
            adc_flips: 1,
            cam_upsets: 2,
            wear_deaths: 3,
        };
        a.merge(&a.clone());
        assert_eq!(a.transient_write_faults, u64::MAX);
        assert_eq!(a.adc_flips, 2);
        assert_eq!(a.cam_upsets, 4);
        assert_eq!(a.wear_deaths, 6);
    }

    #[test]
    fn wear_survives_stats_reset_and_restores_across_incarnations() {
        let g = CamGeometry::paper();
        let m = model(|m| m.endurance = 2);
        let mut st = CamFaultState::new(m, &g);
        st.programmed(5, 1);
        st.programmed(5, 1);
        st.programmed(5, 1); // third write kills the row
        assert_eq!(st.stats().wear_deaths, 1);
        let snapshot = st.wear().to_vec();
        assert_eq!(snapshot[5], 3);

        st.reset_stats();
        assert_eq!(st.stats().wear_deaths, 0, "counters cleared");
        assert_eq!(st.wear()[5], 3, "wear preserved across stats reset");

        // A fresh incarnation of the same bank inherits the wear map: the
        // already-dead row stays dead on its first write.
        let mut fresh = CamFaultState::new(m, &g);
        fresh.restore_wear(&snapshot);
        assert_eq!(fresh.programmed(5, 1), 0, "inherited wear kills the row");
        assert_ne!(fresh.programmed(6, 1), 0, "unworn rows still live");
    }

    #[test]
    fn wear_restore_rejects_foreign_geometry() {
        let g = CamGeometry::paper();
        let mut st = CamFaultState::new(model(|m| m.endurance = 4), &g);
        st.restore_wear(&[9; 3]); // wrong length: ignored
        assert!(st.wear().iter().all(|&w| w == 0));

        let mg = MacGeometry::paper();
        let mut mac = MacFaultState::new(model(|m| m.endurance = 4), &mg);
        let cells = mac.wear().len();
        assert_eq!(cells, mg.rows * mg.cols);
        mac.restore_wear(&vec![7u64; cells]);
        assert!(mac.wear().iter().all(|&w| w == 7));
        mac.reset_stats();
        assert!(mac.wear().iter().all(|&w| w == 7));
    }
}
