//! Hit vectors: the bitmap a CAM search returns.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A bitmap identifying which crossbar rows matched a CAM search.
///
/// The paper (§III-A): "The CAM crossbars have capabilities to perform
/// parallel searches for a specific data and generate a hit vector (bit map
/// identifying the rows with matches)". The hit vector is then fed to the
/// MAC crossbar's input-vector control to activate only the matching rows.
///
/// ```
/// use gaasx_xbar::HitVector;
///
/// let mut hv = HitVector::new(128);
/// hv.set(3);
/// hv.set(70);
/// assert_eq!(hv.count(), 2);
/// assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HitVector {
    len: usize,
    words: Vec<u64>,
}

impl HitVector {
    /// Creates an all-zero hit vector covering `len` rows.
    pub fn new(len: usize) -> Self {
        HitVector {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a hit vector from set row indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is `>= len`.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut hv = HitVector::new(len);
        for &i in indices {
            hv.set(i);
        }
        hv
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize) {
        assert!(index < self.len, "hit index {index} out of {}", self.len);
        self.words[index / 64] |= 1 << (index % 64);
    }

    /// Clears row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn clear(&mut self, index: usize) {
        assert!(index < self.len, "hit index {index} out of {}", self.len);
        self.words[index / 64] &= !(1 << (index % 64));
    }

    /// Whether row `index` is set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "hit index {index} out of {}", self.len);
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Number of set rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any row is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Iterates the set row indices in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            hv: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Splits the set rows into chunks of at most `chunk` indices — the
    /// accelerator uses this to respect the 16-row accumulation cap.
    ///
    /// Allocates one `Vec` per chunk plus the outer collection; on the MAC
    /// hot path use [`HitVector::chunks_iter`], which reuses a single
    /// buffer across chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    #[deprecated(
        since = "0.2.0",
        note = "allocates a Vec<Vec<usize>> per call; use `chunks_iter`"
    )]
    pub fn chunks(&self, chunk: usize) -> Vec<Vec<usize>> {
        assert!(chunk > 0, "chunk size must be positive");
        let ones: Vec<usize> = self.iter_ones().collect();
        ones.chunks(chunk).map(<[usize]>::to_vec).collect()
    }

    /// Streams the set rows in chunks of at most `chunk` indices without
    /// per-chunk allocation: each [`ChunkOnes::next_chunk`] call refills
    /// one internal buffer and lends it out.
    ///
    /// ```
    /// use gaasx_xbar::HitVector;
    ///
    /// let hv = HitVector::from_indices(64, &[1, 5, 9, 40]);
    /// let mut chunks = hv.chunks_iter(3);
    /// assert_eq!(chunks.next_chunk(), Some(&[1, 5, 9][..]));
    /// assert_eq!(chunks.next_chunk(), Some(&[40][..]));
    /// assert_eq!(chunks.next_chunk(), None);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunks_iter(&self, chunk: usize) -> ChunkOnes<'_> {
        assert!(chunk > 0, "chunk size must be positive");
        ChunkOnes {
            ones: self.iter_ones(),
            cap: chunk,
            buf: Vec::with_capacity(chunk),
        }
    }

    /// Bitwise AND with another hit vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and(&self, other: &HitVector) -> HitVector {
        assert_eq!(self.len, other.len, "hit vector length mismatch");
        HitVector {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Bitwise OR with another hit vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or(&self, other: &HitVector) -> HitVector {
        assert_eq!(self.len, other.len, "hit vector length mismatch");
        HitVector {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }
}

/// Iterator over set bits of a [`HitVector`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    hv: &'a HitVector,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.hv.words.len() {
                return None;
            }
            self.current = self.hv.words[self.word_idx];
        }
    }
}

/// Lending chunk iterator over the set bits of a [`HitVector`]
/// ([`HitVector::chunks_iter`]).
///
/// Not an [`Iterator`]: every [`next_chunk`](ChunkOnes::next_chunk) call
/// reuses one internal buffer, so the returned slice borrows the iterator
/// and must be consumed before the next call.
#[derive(Debug)]
pub struct ChunkOnes<'a> {
    ones: IterOnes<'a>,
    cap: usize,
    buf: Vec<usize>,
}

impl ChunkOnes<'_> {
    /// Fills the internal buffer with the next up-to-`chunk` set indices
    /// and lends it out; `None` once the bits are exhausted.
    pub fn next_chunk(&mut self) -> Option<&[usize]> {
        self.buf.clear();
        while self.buf.len() < self.cap {
            match self.ones.next() {
                Some(i) => self.buf.push(i),
                None => break,
            }
        }
        if self.buf.is_empty() {
            None
        } else {
            Some(&self.buf)
        }
    }
}

impl fmt::Display for HitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HitVector[{}/{} set]", self.count(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut hv = HitVector::new(70);
        hv.set(0);
        hv.set(69);
        assert!(hv.get(0) && hv.get(69) && !hv.get(1));
        hv.clear(0);
        assert!(!hv.get(0));
        assert_eq!(hv.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn set_out_of_range_panics() {
        HitVector::new(4).set(4);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let hv = HitVector::from_indices(130, &[0, 63, 64, 129]);
        assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn chunking_respects_cap() {
        let indices: Vec<usize> = (0..40).collect();
        let hv = HitVector::from_indices(128, &indices);
        let mut chunks = hv.chunks_iter(16);
        let mut lens = Vec::new();
        while let Some(chunk) = chunks.next_chunk() {
            lens.push(chunk.len());
        }
        assert_eq!(lens, vec![16, 16, 8]);
    }

    #[test]
    fn chunks_iter_matches_deprecated_chunks() {
        let hv = HitVector::from_indices(130, &[0, 3, 63, 64, 65, 100, 129]);
        for cap in [1, 2, 5, 16] {
            #[allow(deprecated)]
            let old = hv.chunks(cap);
            let mut streamed = Vec::new();
            let mut chunks = hv.chunks_iter(cap);
            while let Some(chunk) = chunks.next_chunk() {
                streamed.push(chunk.to_vec());
            }
            assert_eq!(streamed, old, "cap {cap}");
        }
    }

    #[test]
    fn chunks_iter_on_empty_vector_yields_nothing() {
        let hv = HitVector::new(128);
        assert_eq!(hv.chunks_iter(16).next_chunk(), None);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn chunks_iter_rejects_zero_cap() {
        let _ = HitVector::new(8).chunks_iter(0);
    }

    #[test]
    fn and_intersects() {
        let a = HitVector::from_indices(10, &[1, 2, 3]);
        let b = HitVector::from_indices(10, &[2, 3, 4]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn empty_vector_behaves() {
        let hv = HitVector::new(0);
        assert!(hv.is_empty());
        assert!(!hv.any());
        assert_eq!(hv.iter_ones().count(), 0);
    }
}
