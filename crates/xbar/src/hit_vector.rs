//! Hit vectors: the bitmap a CAM search returns.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A bitmap identifying which crossbar rows matched a CAM search.
///
/// The paper (§III-A): "The CAM crossbars have capabilities to perform
/// parallel searches for a specific data and generate a hit vector (bit map
/// identifying the rows with matches)". The hit vector is then fed to the
/// MAC crossbar's input-vector control to activate only the matching rows.
///
/// ```
/// use gaasx_xbar::HitVector;
///
/// let mut hv = HitVector::new(128);
/// hv.set(3);
/// hv.set(70);
/// assert_eq!(hv.count(), 2);
/// assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HitVector {
    len: usize,
    words: Vec<u64>,
}

impl HitVector {
    /// Creates an all-zero hit vector covering `len` rows.
    pub fn new(len: usize) -> Self {
        HitVector {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a hit vector from set row indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is `>= len`.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut hv = HitVector::new(len);
        for &i in indices {
            hv.set(i);
        }
        hv
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize) {
        // gaasx-lint: allow(hot-reachable-panic) -- the bounds assert guards phantom rows in the padding bits; a silent wrong hit count is worse than an abort
        assert!(index < self.len, "hit index {index} out of {}", self.len);
        self.words[index / 64] |= 1 << (index % 64);
    }

    /// Clears row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn clear(&mut self, index: usize) {
        assert!(index < self.len, "hit index {index} out of {}", self.len);
        self.words[index / 64] &= !(1 << (index % 64));
    }

    /// Whether row `index` is set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        // gaasx-lint: allow(hot-reachable-panic) -- the bounds assert guards phantom rows in the padding bits; a silent wrong hit count is worse than an abort
        assert!(index < self.len, "hit index {index} out of {}", self.len);
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Number of 64-row words backing this vector.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// The backing words, least-significant row first within each word.
    /// Bits past `len` in the last word are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites one backing word with 64 row bits at once — the store
    /// half of the word-parallel packed search path. Bits addressing rows
    /// past `len` are masked off so the padding-bit invariant (and thus
    /// [`count`](HitVector::count)/[`any`](HitVector::any)) holds.
    ///
    /// # Panics
    ///
    /// Panics if `word_index` is out of range.
    pub fn set_word(&mut self, word_index: usize, word: u64) {
        // gaasx-lint: allow(hot-reachable-panic) -- the bounds assert guards phantom rows in the padding bits; a silent wrong hit count is worse than an abort
        assert!(
            word_index < self.words.len(),
            "hit word {word_index} out of {}",
            self.words.len()
        );
        let tail = self.len - word_index * 64;
        let mask = if tail >= 64 {
            u64::MAX
        } else {
            (1 << tail) - 1
        };
        self.words[word_index] = word & mask;
    }

    /// Number of set rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any row is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Iterates the set row indices in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            hv: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Clears every set row, keeping the allocation — the in-place reset
    /// the allocation-free search path reuses between searches.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Reconfigures this vector to cover `len` all-zero rows, reusing the
    /// word buffer whenever it already has the right size. After the first
    /// call with a given length, subsequent resets allocate nothing.
    pub fn reset(&mut self, len: usize) {
        let words = len.div_ceil(64);
        self.len = len;
        if self.words.len() == words {
            self.clear_all();
        } else {
            self.words.clear();
            self.words.resize(words, 0);
        }
    }

    /// Makes this vector a copy of `other`, reusing the word buffer when
    /// the lengths already agree (the memoized-search replay path).
    pub fn copy_from(&mut self, other: &HitVector) {
        self.len = other.len;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// In-place bitwise OR with another hit vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or_with(&mut self, other: &HitVector) {
        assert_eq!(self.len, other.len, "hit vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise AND with another hit vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and_with(&mut self, other: &HitVector) {
        assert_eq!(self.len, other.len, "hit vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Streams the set rows in chunks of at most `chunk` indices without
    /// per-chunk allocation: each [`ChunkOnes::next_chunk`] call refills
    /// one internal buffer and lends it out.
    ///
    /// ```
    /// use gaasx_xbar::HitVector;
    ///
    /// let hv = HitVector::from_indices(64, &[1, 5, 9, 40]);
    /// let mut chunks = hv.chunks_iter(3);
    /// assert_eq!(chunks.next_chunk(), Some(&[1, 5, 9][..]));
    /// assert_eq!(chunks.next_chunk(), Some(&[40][..]));
    /// assert_eq!(chunks.next_chunk(), None);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunks_iter(&self, chunk: usize) -> ChunkOnes<'_> {
        assert!(chunk > 0, "chunk size must be positive");
        ChunkOnes {
            ones: self.iter_ones(),
            cap: chunk,
            buf: Vec::with_capacity(chunk),
        }
    }

    /// Bitwise AND with another hit vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and(&self, other: &HitVector) -> HitVector {
        assert_eq!(self.len, other.len, "hit vector length mismatch");
        HitVector {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Bitwise OR with another hit vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or(&self, other: &HitVector) -> HitVector {
        assert_eq!(self.len, other.len, "hit vector length mismatch");
        HitVector {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }
}

/// Iterator over set bits of a [`HitVector`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    hv: &'a HitVector,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.hv.words.len() {
                return None;
            }
            self.current = self.hv.words[self.word_idx];
        }
    }
}

/// Lending chunk iterator over the set bits of a [`HitVector`]
/// ([`HitVector::chunks_iter`]).
///
/// Not an [`Iterator`]: every [`next_chunk`](ChunkOnes::next_chunk) call
/// reuses one internal buffer, so the returned slice borrows the iterator
/// and must be consumed before the next call.
#[derive(Debug)]
pub struct ChunkOnes<'a> {
    ones: IterOnes<'a>,
    cap: usize,
    buf: Vec<usize>,
}

impl ChunkOnes<'_> {
    /// Fills the internal buffer with the next up-to-`chunk` set indices
    /// and lends it out; `None` once the bits are exhausted.
    pub fn next_chunk(&mut self) -> Option<&[usize]> {
        self.buf.clear();
        while self.buf.len() < self.cap {
            match self.ones.next() {
                Some(i) => self.buf.push(i),
                None => break,
            }
        }
        if self.buf.is_empty() {
            None
        } else {
            Some(&self.buf)
        }
    }
}

impl fmt::Display for HitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HitVector[{}/{} set]", self.count(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut hv = HitVector::new(70);
        hv.set(0);
        hv.set(69);
        assert!(hv.get(0) && hv.get(69) && !hv.get(1));
        hv.clear(0);
        assert!(!hv.get(0));
        assert_eq!(hv.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn set_out_of_range_panics() {
        HitVector::new(4).set(4);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let hv = HitVector::from_indices(130, &[0, 63, 64, 129]);
        assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn chunking_respects_cap() {
        let indices: Vec<usize> = (0..40).collect();
        let hv = HitVector::from_indices(128, &indices);
        let mut chunks = hv.chunks_iter(16);
        let mut lens = Vec::new();
        while let Some(chunk) = chunks.next_chunk() {
            lens.push(chunk.len());
        }
        assert_eq!(lens, vec![16, 16, 8]);
    }

    #[test]
    fn chunks_iter_covers_all_ones_in_order() {
        let indices = [0usize, 3, 63, 64, 65, 100, 129];
        let hv = HitVector::from_indices(130, &indices);
        for cap in [1, 2, 5, 16] {
            let mut streamed = Vec::new();
            let mut chunks = hv.chunks_iter(cap);
            while let Some(chunk) = chunks.next_chunk() {
                assert!(chunk.len() <= cap, "cap {cap}");
                streamed.extend_from_slice(chunk);
            }
            assert_eq!(streamed, indices, "cap {cap}");
        }
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let a = HitVector::from_indices(130, &[1, 2, 3, 64, 129]);
        let b = HitVector::from_indices(130, &[2, 3, 4, 129]);
        let mut ored = a.clone();
        ored.or_with(&b);
        assert_eq!(ored, a.or(&b));
        let mut anded = a.clone();
        anded.and_with(&b);
        assert_eq!(anded, a.and(&b));
    }

    #[test]
    fn clear_all_and_reset_reuse_the_buffer() {
        let mut hv = HitVector::from_indices(128, &[0, 64, 127]);
        hv.clear_all();
        assert_eq!(hv.count(), 0);
        assert_eq!(hv.len(), 128);
        hv.set(5);
        hv.reset(128);
        assert_eq!(hv.count(), 0);
        hv.reset(200);
        assert_eq!(hv.len(), 200);
        hv.set(199);
        assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![199]);
    }

    #[test]
    fn copy_from_duplicates_any_length() {
        let src = HitVector::from_indices(70, &[0, 69]);
        let mut dst = HitVector::new(0);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        let shorter = HitVector::from_indices(10, &[3]);
        dst.copy_from(&shorter);
        assert_eq!(dst, shorter);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn or_with_rejects_length_mismatch() {
        let mut a = HitVector::new(10);
        a.or_with(&HitVector::new(11));
    }

    #[test]
    fn chunks_iter_on_empty_vector_yields_nothing() {
        let hv = HitVector::new(128);
        assert_eq!(hv.chunks_iter(16).next_chunk(), None);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn chunks_iter_rejects_zero_cap() {
        let _ = HitVector::new(8).chunks_iter(0);
    }

    #[test]
    fn set_word_masks_padding_bits() {
        let mut hv = HitVector::new(70);
        hv.set_word(0, u64::MAX);
        hv.set_word(1, u64::MAX);
        // Rows 64..70 live in the last word; bits 70..128 are padding.
        assert_eq!(hv.count(), 70);
        assert_eq!(hv.words()[1], (1 << 6) - 1);
        assert_eq!(hv.num_words(), 2);
        hv.set_word(0, 0b101);
        assert_eq!(hv.iter_ones().take(2).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn set_word_out_of_range_panics() {
        HitVector::new(64).set_word(1, 1);
    }

    #[test]
    fn and_intersects() {
        let a = HitVector::from_indices(10, &[1, 2, 3]);
        let b = HitVector::from_indices(10, &[2, 3, 4]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn empty_vector_behaves() {
        let hv = HitVector::new(0);
        assert!(hv.is_empty());
        assert!(!hv.any());
        assert_eq!(hv.iter_ones().count(), 0);
    }
}
