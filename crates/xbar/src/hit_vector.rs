//! Hit vectors: the bitmap a CAM search returns.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A bitmap identifying which crossbar rows matched a CAM search.
///
/// The paper (§III-A): "The CAM crossbars have capabilities to perform
/// parallel searches for a specific data and generate a hit vector (bit map
/// identifying the rows with matches)". The hit vector is then fed to the
/// MAC crossbar's input-vector control to activate only the matching rows.
///
/// ```
/// use gaasx_xbar::HitVector;
///
/// let mut hv = HitVector::new(128);
/// hv.set(3);
/// hv.set(70);
/// assert_eq!(hv.count(), 2);
/// assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HitVector {
    len: usize,
    words: Vec<u64>,
}

impl HitVector {
    /// Creates an all-zero hit vector covering `len` rows.
    pub fn new(len: usize) -> Self {
        HitVector {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a hit vector from set row indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is `>= len`.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut hv = HitVector::new(len);
        for &i in indices {
            hv.set(i);
        }
        hv
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize) {
        assert!(index < self.len, "hit index {index} out of {}", self.len);
        self.words[index / 64] |= 1 << (index % 64);
    }

    /// Clears row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn clear(&mut self, index: usize) {
        assert!(index < self.len, "hit index {index} out of {}", self.len);
        self.words[index / 64] &= !(1 << (index % 64));
    }

    /// Whether row `index` is set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "hit index {index} out of {}", self.len);
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Number of set rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any row is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Iterates the set row indices in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            hv: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Splits the set rows into chunks of at most `chunk` indices — the
    /// accelerator uses this to respect the 16-row accumulation cap.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunks(&self, chunk: usize) -> Vec<Vec<usize>> {
        assert!(chunk > 0, "chunk size must be positive");
        let ones: Vec<usize> = self.iter_ones().collect();
        ones.chunks(chunk).map(<[usize]>::to_vec).collect()
    }

    /// Bitwise AND with another hit vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and(&self, other: &HitVector) -> HitVector {
        assert_eq!(self.len, other.len, "hit vector length mismatch");
        HitVector {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }
}

/// Iterator over set bits of a [`HitVector`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    hv: &'a HitVector,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.hv.words.len() {
                return None;
            }
            self.current = self.hv.words[self.word_idx];
        }
    }
}

impl fmt::Display for HitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HitVector[{}/{} set]", self.count(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut hv = HitVector::new(70);
        hv.set(0);
        hv.set(69);
        assert!(hv.get(0) && hv.get(69) && !hv.get(1));
        hv.clear(0);
        assert!(!hv.get(0));
        assert_eq!(hv.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn set_out_of_range_panics() {
        HitVector::new(4).set(4);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let hv = HitVector::from_indices(130, &[0, 63, 64, 129]);
        assert_eq!(hv.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn chunking_respects_cap() {
        let indices: Vec<usize> = (0..40).collect();
        let hv = HitVector::from_indices(128, &indices);
        let chunks = hv.chunks(16);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 16);
        assert_eq!(chunks[2].len(), 8);
    }

    #[test]
    fn and_intersects() {
        let a = HitVector::from_indices(10, &[1, 2, 3]);
        let b = HitVector::from_indices(10, &[2, 3, 4]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn empty_vector_behaves() {
        let hv = HitVector::new(0);
        assert!(hv.is_empty());
        assert!(!hv.any());
        assert_eq!(hv.iter_ones().count(), 0);
    }
}
