//! Crossbar array geometries (Table I of the paper).

use serde::{Deserialize, Serialize};

use crate::error::XbarError;

/// Geometry of a MAC crossbar bank.
///
/// Table I: "MAC crossbar, 128×16×8, 2-bits/cell" — 128 rows by 16 logical
/// columns, each logical value spread over 8 physical bit-slice columns of
/// 2 bits each (16-bit weights). The paper additionally caps each analog
/// accumulation at 16 active rows so a 6-bit ADC suffices (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacGeometry {
    /// Number of word lines.
    pub rows: usize,
    /// Number of logical columns (values per row).
    pub cols: usize,
    /// Physical bit-slice columns per logical value.
    pub slices: usize,
    /// Bits stored per cell.
    pub bits_per_cell: u32,
    /// Maximum rows activated in one analog accumulation.
    pub max_active_rows: usize,
    /// DAC resolution in bits (input streamed `dac_bits` per step).
    pub dac_bits: u32,
    /// ADC resolution in bits.
    pub adc_bits: u32,
}

impl MacGeometry {
    /// The paper's Table I configuration.
    pub fn paper() -> Self {
        MacGeometry {
            rows: 128,
            cols: 16,
            slices: 8,
            bits_per_cell: 2,
            max_active_rows: 16,
            dac_bits: 2,
            adc_bits: 6,
        }
    }

    /// Bits of weight precision per logical value.
    pub fn weight_bits(&self) -> u32 {
        self.slices as u32 * self.bits_per_cell
    }

    /// Physical cells per row (`cols × slices`).
    pub fn cells_per_row(&self) -> usize {
        self.cols * self.slices
    }

    /// Total physical cells in the array.
    pub fn total_cells(&self) -> usize {
        self.rows * self.cells_per_row()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] for zero dimensions, weight
    /// precision above 32 bits, or an active-row cap beyond the row count.
    pub fn validate(&self) -> Result<(), XbarError> {
        if self.rows == 0 || self.cols == 0 || self.slices == 0 {
            return Err(XbarError::InvalidParameter(
                "mac geometry: dimensions must be positive".into(),
            ));
        }
        if self.bits_per_cell == 0 || self.weight_bits() > 32 {
            return Err(XbarError::InvalidParameter(format!(
                "mac geometry: unsupported weight precision {} bits",
                self.weight_bits()
            )));
        }
        if self.max_active_rows == 0 || self.max_active_rows > self.rows {
            return Err(XbarError::InvalidParameter(format!(
                "mac geometry: max_active_rows {} outside 1..={}",
                self.max_active_rows, self.rows
            )));
        }
        if self.dac_bits == 0 || self.adc_bits == 0 {
            return Err(XbarError::InvalidParameter(
                "mac geometry: converter resolutions must be positive".into(),
            ));
        }
        Ok(())
    }
}

impl Default for MacGeometry {
    fn default() -> Self {
        MacGeometry::paper()
    }
}

/// Geometry of a CAM crossbar bank.
///
/// Table I: "CAM crossbar, 128×128, 1-bit/cell" — 128 entries of 128
/// ternary-searchable bits. GaaS-X packs one `(src, dst)` pair per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CamGeometry {
    /// Number of storable entries (rows).
    pub rows: usize,
    /// Searchable bits per entry.
    pub width_bits: u32,
}

impl CamGeometry {
    /// The paper's Table I configuration.
    pub fn paper() -> Self {
        CamGeometry {
            rows: 128,
            width_bits: 128,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] for zero dimensions or widths
    /// beyond the 128-bit search-key type.
    pub fn validate(&self) -> Result<(), XbarError> {
        if self.rows == 0 {
            return Err(XbarError::InvalidParameter(
                "cam geometry: rows must be positive".into(),
            ));
        }
        if self.width_bits == 0 || self.width_bits > 128 {
            return Err(XbarError::InvalidParameter(format!(
                "cam geometry: width {} outside 1..=128",
                self.width_bits
            )));
        }
        Ok(())
    }
}

impl Default for CamGeometry {
    fn default() -> Self {
        CamGeometry::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mac_geometry() {
        let g = MacGeometry::paper();
        assert_eq!(g.weight_bits(), 16);
        assert_eq!(g.cells_per_row(), 128);
        assert_eq!(g.total_cells(), 128 * 128);
        g.validate().unwrap();
    }

    #[test]
    fn paper_cam_geometry() {
        CamGeometry::paper().validate().unwrap();
    }

    #[test]
    fn invalid_geometries_rejected() {
        let mut g = MacGeometry::paper();
        g.max_active_rows = 0;
        assert!(g.validate().is_err());
        let mut g = MacGeometry::paper();
        g.max_active_rows = 1000;
        assert!(g.validate().is_err());
        let mut g = MacGeometry::paper();
        g.slices = 20; // 40-bit weights unsupported
        assert!(g.validate().is_err());
        let mut c = CamGeometry::paper();
        c.width_bits = 200;
        assert!(c.validate().is_err());
    }
}
