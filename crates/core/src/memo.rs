//! Per-block CAM search memoization.
//!
//! Iterative algorithms (PageRank, SSSP, BFS, CC) reload the same edge
//! blocks every sweep and re-issue identical field searches against them.
//! The simulated hardware must perform — and be billed for — every one of
//! those searches, but the *host* does not need to recompute a hit vector
//! the block structure already determines. [`SearchMemo`] keys previously
//! derived hit vectors by block content (the exact CAM key sequence) and
//! `(key, mask)` pair, so a re-loaded block replays its results in O(1)
//! per search.
//!
//! The memo is only safe when device state is a pure function of the
//! programmed keys: the engine enables it per block, exclusively for
//! blocks whose *resolved* search mode is
//! [`SearchMode::Indexed`](gaasx_xbar::SearchMode) — whether fixed by the
//! config or chosen by the `Auto` cost model — with **no** fault model
//! attached (stuck bits, write retries, remaps, and search upsets all make
//! physical results diverge from the logical key sequence and consume RNG
//! draws that replaying would skip). A mixed `Auto` bank therefore
//! memoizes only its Indexed blocks.

use gaasx_xbar::fast_hash::FxHashMap;
use gaasx_xbar::HitVector;

/// Cached hit vectors across all blocks before the memo resets itself.
/// Sized so one full sweep of the standard benchmark workloads (hundreds
/// of thousands of edges → hundreds of thousands of distinct `(block,
/// vertex)` searches) stays resident across iterations; a 128-row hit
/// vector costs tens of bytes, so the cap bounds the memo at well under
/// 100 MB on pathological many-distinct-block workloads.
const MAX_CACHED_VECTORS: usize = 1 << 20;

/// FNV-1a over the 64-bit halves of the key sequence, mixed with the
/// length. Collisions are survivable — [`SearchMemo::begin_block`] compares
/// the full key sequence before trusting a fingerprint match — so a
/// word-granularity fold (two multiplies per key) is plenty.
fn fingerprint(keys: &[u128]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &k in keys {
        for w in [k as u64, (k >> 64) as u64] {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h ^ (keys.len() as u64)
}

/// Memoized searches for one distinct block content.
#[derive(Debug, Clone, Default)]
struct MemoBlock {
    /// The exact CAM key sequence, slot order — the collision guard.
    keys: Vec<u128>,
    /// `(key, mask)` → hit vector derived when this block was loaded.
    searches: FxHashMap<(u128, u128), HitVector>,
}

/// See the module docs.
///
/// Blocks live in a flat arena; the fingerprint map resolves a key
/// sequence to its arena slot once per `begin_block`, so the per-search
/// [`lookup`](Self::lookup) is a single hash probe on the current slot
/// rather than a fingerprint probe followed by a search probe.
#[derive(Debug, Clone, Default)]
pub(crate) struct SearchMemo {
    blocks: Vec<MemoBlock>,
    /// Block-content fingerprint → arena slot in `blocks`.
    by_fp: FxHashMap<u64, usize>,
    /// Arena slot of the currently loaded block, when one is registered.
    current: Option<usize>,
    /// Total hit vectors cached across all blocks (cap enforcement).
    cached_vectors: usize,
}

impl SearchMemo {
    pub fn new() -> Self {
        SearchMemo::default()
    }

    /// Registers the block just loaded (its full CAM key sequence, slot
    /// order). Re-loading a previously seen block makes its memoized
    /// searches live again; a new block starts empty.
    pub fn begin_block(&mut self, keys: &[u128]) {
        if self.cached_vectors >= MAX_CACHED_VECTORS {
            self.clear();
        }
        let fp = fingerprint(keys);
        let slot = match self.by_fp.get(&fp) {
            Some(&slot) if self.blocks[slot].keys == keys => slot,
            Some(&slot) => {
                // Fingerprint collision: evict the old tenant rather than
                // serve its (wrong) hit vectors.
                let block = &mut self.blocks[slot];
                self.cached_vectors -= block.searches.len();
                block.keys.clear();
                block.keys.extend_from_slice(keys);
                block.searches.clear();
                slot
            }
            None => {
                self.blocks.push(MemoBlock {
                    keys: keys.to_vec(),
                    searches: FxHashMap::default(),
                });
                let slot = self.blocks.len() - 1;
                self.by_fp.insert(fp, slot);
                slot
            }
        };
        self.current = Some(slot);
    }

    /// Forgets the current block registration (the memo itself survives —
    /// lookups just miss until the next [`begin_block`](Self::begin_block)).
    pub fn end_block(&mut self) {
        self.current = None;
    }

    /// The hit vector previously derived for `(key, mask)` on the current
    /// block, if any. Never allocates; one hash probe.
    pub fn lookup(&self, key: u128, mask: u128) -> Option<&HitVector> {
        let slot = self.current?;
        self.blocks[slot].searches.get(&(key, mask))
    }

    /// Caches a freshly derived hit vector for the current block. No-op
    /// when no block is registered.
    pub fn insert(&mut self, key: u128, mask: u128, hits: &HitVector) {
        let Some(slot) = self.current else {
            return;
        };
        let block = &mut self.blocks[slot];
        if block.searches.insert((key, mask), hits.clone()).is_none() {
            self.cached_vectors += 1;
        }
    }

    /// Drops every cached vector and block registration.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.by_fp.clear();
        self.current = None;
        self.cached_vectors = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv(ones: &[usize]) -> HitVector {
        HitVector::from_indices(8, ones)
    }

    #[test]
    fn replays_searches_on_block_reload() {
        let mut memo = SearchMemo::new();
        let keys = [1u128, 2, 3];
        memo.begin_block(&keys);
        assert!(memo.lookup(2, u128::MAX).is_none());
        memo.insert(2, u128::MAX, &hv(&[1]));
        assert_eq!(memo.lookup(2, u128::MAX), Some(&hv(&[1])));

        // A different block misses; reloading the first block hits again.
        memo.begin_block(&[9u128]);
        assert!(memo.lookup(2, u128::MAX).is_none());
        memo.begin_block(&keys);
        assert_eq!(memo.lookup(2, u128::MAX), Some(&hv(&[1])));
    }

    #[test]
    fn distinguishes_masks_on_the_same_key() {
        let mut memo = SearchMemo::new();
        memo.begin_block(&[5u128]);
        memo.insert(5, 0xFF, &hv(&[0]));
        memo.insert(5, u128::MAX, &hv(&[0, 3]));
        assert_eq!(memo.lookup(5, 0xFF), Some(&hv(&[0])));
        assert_eq!(memo.lookup(5, u128::MAX), Some(&hv(&[0, 3])));
    }

    #[test]
    fn end_block_and_clear_stop_replay() {
        let mut memo = SearchMemo::new();
        memo.begin_block(&[7u128]);
        memo.insert(7, 1, &hv(&[2]));
        memo.end_block();
        assert!(memo.lookup(7, 1).is_none());
        memo.insert(7, 1, &hv(&[2])); // no-op without a current block
        memo.begin_block(&[7u128]);
        assert_eq!(memo.lookup(7, 1), Some(&hv(&[2])));
        memo.clear();
        assert!(memo.lookup(7, 1).is_none());
    }

    #[test]
    fn identical_prefix_blocks_do_not_alias() {
        let mut memo = SearchMemo::new();
        memo.begin_block(&[1u128, 2]);
        memo.insert(1, u128::MAX, &hv(&[0]));
        memo.begin_block(&[1u128, 2, 2]);
        assert!(
            memo.lookup(1, u128::MAX).is_none(),
            "a longer block with the same prefix must not replay the short block's results"
        );
    }
}
