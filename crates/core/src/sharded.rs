//! Parallel sharded execution: one block stream, many worker engines.
//!
//! The grid partition's shard stream is embarrassingly parallel on the
//! *functional* side — each shard's blocks load into their own bank pair
//! and never touch another shard's device state — while the *timing* side
//! (wave scheduling, static energy, phase attribution) is a global fold
//! over the block-cost stream in canonical order. [`ShardedEngine`]
//! exploits exactly that split:
//!
//! * shards are dealt round-robin to `jobs` worker [`Engine`]s, each
//!   running on its own OS thread (scoped; no `'static` bounds needed);
//! * every worker drains its committed `BlockCost`s after each shard,
//!   and the merge re-appends them to the full-bank *primary* engine in
//!   canonical shard-stream order;
//! * worker device stats, SFU counters, buffer traffic, and histograms
//!   are absorbed into the primary, whose single `finish` then computes
//!   the makespan and energy exactly as a serial run would.
//!
//! For noise-free configurations the merged [`gaasx_sim::RunReport`] is
//! bit-identical to the serial one: the block-cost sequence — the only
//! input to the scheduler — is reassembled in the same order, and every
//! counter is an integer sum or an order-preserved f64 fold. (With
//! conductance noise enabled, per-device RNG draws depend on which engine
//! executed a shard, so only then do results diverge. Likewise for the
//! *transient* classes of an active [`FaultModel`](gaasx_xbar::FaultModel):
//! stuck-cell maps are positional and identical on every engine, but
//! transient write failures and upsets draw from per-engine RNG streams,
//! so a nonzero transient rate makes sharded runs diverge from serial
//! ones — exactly as documented for noise.)
//!
//! Algorithms opt in through [`ShardRunner`]: they express each superstep
//! as a *pure-per-shard* pass (snapshot state in, candidate updates out)
//! followed by a sequential reduce on the primary engine. [`Engine`]
//! itself implements the trait by running shards inline, so the serial
//! and sharded paths share one algorithm body.

use std::sync::Arc;

use gaasx_graph::partition::{GridPartition, Shard, TraversalOrder};
use gaasx_sim::{MemorySink, Nanos, RunReport, Tracer};

use crate::config::GaasXConfig;
use crate::engine::{BlockCost, Engine, WearSnapshot};
use crate::error::CoreError;

/// Executes the per-shard passes of a shardable algorithm.
///
/// Not object-safe (the shard callback is generic); algorithms take
/// `&mut R where R: ShardRunner` instead of a trait object.
pub trait ShardRunner {
    /// The engine that owns the merged schedule and runs the sequential
    /// reduce / apply phases between shard passes.
    fn engine(&mut self) -> &mut Engine;

    /// Presets every MAC weight cell on *all* engines (primary and
    /// workers) to `code` — see [`Engine::preset_mac`].
    ///
    /// # Errors
    ///
    /// Returns a device error if `code` exceeds the cell range.
    fn preset_mac(&mut self, code: u32) -> Result<(), CoreError>;

    /// Runs `f` once per non-empty shard of `grid` in the given streaming
    /// order and returns the per-shard results in canonical stream order.
    ///
    /// `f` must be pure with respect to shared algorithm state: it may
    /// read captured snapshots but must report updates through its return
    /// value — shards may execute concurrently on different engines.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure (by canonical order within the
    /// lowest-indexed failing worker).
    fn for_each_shard<T, F>(
        &mut self,
        grid: &GridPartition,
        order: TraversalOrder,
        f: F,
    ) -> Result<Vec<T>, CoreError>
    where
        T: Send,
        F: Fn(&mut Engine, &Shard) -> Result<T, CoreError> + Sync;
}

impl ShardRunner for Engine {
    fn engine(&mut self) -> &mut Engine {
        self
    }

    fn preset_mac(&mut self, code: u32) -> Result<(), CoreError> {
        Engine::preset_mac(self, code)
    }

    fn for_each_shard<T, F>(
        &mut self,
        grid: &GridPartition,
        order: TraversalOrder,
        f: F,
    ) -> Result<Vec<T>, CoreError>
    where
        T: Send,
        F: Fn(&mut Engine, &Shard) -> Result<T, CoreError> + Sync,
    {
        let mut results = Vec::with_capacity(grid.num_nonempty_shards());
        for (_, shard) in grid.stream_indexed(order) {
            let r = f(self, shard)?;
            // Close the shard's trailing block so the serial cost stream
            // has the same block boundaries the sharded merge reassembles.
            self.end_block();
            results.push(r);
        }
        Ok(results)
    }
}

/// A primary engine plus `jobs` worker engines executing the shard stream
/// in parallel (see the module docs for the merge model).
#[derive(Debug)]
pub struct ShardedEngine {
    primary: Engine,
    workers: Vec<Engine>,
    /// One span buffer per worker, present only while the primary tracer
    /// observes spans; drained (in worker order) into the primary's sinks
    /// at finish.
    sinks: Vec<Option<Arc<MemorySink>>>,
}

impl ShardedEngine {
    /// Builds a sharded engine: a primary with the full bank count and
    /// `jobs` workers with `num_banks / jobs` banks each (at least one).
    /// `jobs == 0` is clamped to 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: GaasXConfig, jobs: usize) -> Result<Self, CoreError> {
        let jobs = jobs.max(1);
        let primary = Engine::new(config.clone())?;
        let worker_config = GaasXConfig {
            num_banks: (config.num_banks / jobs).max(1),
            ..config
        };
        let workers = (0..jobs)
            .map(|_| Engine::new(worker_config.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedEngine {
            primary,
            workers,
            sinks: vec![None; jobs],
        })
    }

    /// Number of worker threads the shard stream fans out over.
    pub fn jobs(&self) -> usize {
        self.workers.len()
    }

    /// Attaches a tracer to the primary engine. When it observes spans,
    /// each worker records its spans into a private [`MemorySink`] whose
    /// events are replayed through the primary tracer at [`finish`]
    /// (worker order, so the merged stream is deterministic).
    ///
    /// [`finish`]: ShardedEngine::finish
    pub fn set_tracer(&mut self, tracer: Tracer) {
        let record_spans = tracer.observes_spans();
        let record_intervals = tracer.observes_intervals();
        self.primary.set_tracer(tracer);
        for (worker, slot) in self.workers.iter_mut().zip(self.sinks.iter_mut()) {
            if record_spans {
                let sink = Arc::new(MemorySink::new());
                worker.set_tracer(Tracer::with_sink(sink.clone()));
                *slot = Some(sink);
            } else {
                worker.set_tracer(Tracer::null());
                *slot = None;
            }
            // After set_tracer: the worker's own tracer never observes
            // intervals, but its block costs must still carry the per-op
            // ledger the primary's timeline is built from.
            worker.set_record_ops(record_intervals);
        }
    }

    /// Declares the running algorithm's access pattern on the primary and
    /// every worker engine, so all of them resolve `Auto` blocks with the
    /// same cost-model inputs. Resolution is deterministic per block, so
    /// sharded runs stay bit-identical to serial regardless of which
    /// engine loads which shard.
    pub fn set_search_profile(&mut self, profile: gaasx_xbar::SearchProfile) {
        self.primary.set_search_profile(profile);
        for worker in &mut self.workers {
            worker.set_search_profile(profile);
        }
    }

    /// Sets (or clears) the per-query modeled-time budget on the primary
    /// and every worker engine (see [`Engine::set_deadline`]).
    ///
    /// Each engine checks its *own* functional cursor at block
    /// boundaries. With `jobs > 1` the shard stream is split across
    /// workers, so per-engine serial time grows `jobs`× slower than the
    /// total work performed — the budget is conservative under
    /// parallelism (a sharded run cancels no earlier than a serial run of
    /// the same budget would).
    pub fn set_deadline(&mut self, deadline: Option<Nanos>) {
        self.primary.set_deadline(deadline);
        for worker in &mut self.workers {
            worker.set_deadline(deadline);
        }
    }

    /// Clears per-run accounting on the primary and every worker so a
    /// resident sharded engine can serve its next query with a clean
    /// report (see [`Engine::reset_accounting`] — device state, wear, and
    /// warm memos survive).
    ///
    /// Worker tracers are re-attached from the primary's tracer: `finish`
    /// folds worker metric registries into the primary *without* clearing
    /// them, so keeping the old worker tracers across queries would
    /// re-merge (double-count) the first query's metrics at the next
    /// finish. Re-attaching gives each worker a fresh registry and span
    /// buffer while the primary's registry keeps aggregating.
    pub fn reset_accounting(&mut self) {
        self.primary.reset_accounting();
        for worker in &mut self.workers {
            worker.reset_accounting();
        }
        let tracer = self.primary.tracer().clone();
        self.set_tracer(tracer);
    }

    /// Captures the endurance wear of every engine (primary first, then
    /// workers in order), for carry-over into a replacement
    /// `ShardedEngine` on the same modeled banks.
    pub fn wear_snapshots(&self) -> Vec<WearSnapshot> {
        std::iter::once(&self.primary)
            .chain(self.workers.iter())
            .map(Engine::wear_snapshot)
            .collect()
    }

    /// Restores wear snapshots captured by
    /// [`wear_snapshots`](ShardedEngine::wear_snapshots) (primary first).
    /// Extra or missing entries are ignored, as are geometry mismatches.
    pub fn restore_wear(&mut self, snapshots: &[WearSnapshot]) {
        for (engine, snapshot) in std::iter::once(&mut self.primary)
            .chain(self.workers.iter_mut())
            .zip(snapshots.iter())
        {
            engine.restore_wear(snapshot);
        }
    }

    /// Merges every worker into the primary and assembles the final
    /// report — see [`Engine::finish`].
    pub fn finish(
        &mut self,
        engine: &str,
        algorithm: &str,
        workload: &str,
        iterations: u32,
        num_edges: u64,
    ) -> RunReport {
        self.primary.end_block();
        for worker in &mut self.workers {
            // Normally a no-op — shard costs drain in stream order during
            // `for_each_shard` — but after a run aborted by a device fault
            // this salvages costs stranded on the failing worker, so the
            // partial report still accounts for the work done.
            let stranded = worker.take_costs();
            self.primary.append_costs(stranded);
        }
        for worker in &self.workers {
            self.primary.absorb_functional(worker);
        }
        // Fold worker-tracer metrics into the primary registry so nothing
        // recorded on a worker (counters, histograms) is lost at merge.
        if let Some(primary_metrics) = self.primary.tracer().metrics() {
            for worker in &self.workers {
                if let Some(worker_metrics) = worker.tracer().metrics() {
                    primary_metrics.merge_from(worker_metrics);
                }
            }
        }
        for sink in self.sinks.iter().flatten() {
            for event in sink.take_events() {
                self.primary.tracer().replay_span(&event);
            }
        }
        self.primary
            .finish(engine, algorithm, workload, iterations, num_edges)
    }
}

impl ShardRunner for ShardedEngine {
    fn engine(&mut self) -> &mut Engine {
        &mut self.primary
    }

    fn preset_mac(&mut self, code: u32) -> Result<(), CoreError> {
        self.primary.preset_mac(code)?;
        for worker in &mut self.workers {
            worker.preset_mac(code)?;
        }
        Ok(())
    }

    fn for_each_shard<T, F>(
        &mut self,
        grid: &GridPartition,
        order: TraversalOrder,
        f: F,
    ) -> Result<Vec<T>, CoreError>
    where
        T: Send,
        F: Fn(&mut Engine, &Shard) -> Result<T, CoreError> + Sync,
    {
        let shards: Vec<&Shard> = grid.stream(order).collect();
        let jobs = self.workers.len();
        let f = &f;
        let shards_ref = &shards;

        // Worker `j` takes shards j, j+J, j+2J, ... — round-robin keeps
        // the assignment independent of worker speed, so reassembly needs
        // no bookkeeping beyond the shard's stream position.
        type ShardYield<T> = (usize, Vec<BlockCost>, T);
        type ShardAbort = (Vec<(usize, Vec<BlockCost>)>, CoreError);
        let per_worker: Vec<Result<Vec<ShardYield<T>>, ShardAbort>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .enumerate()
                    .map(|(j, worker)| {
                        scope.spawn(move || {
                            let mut yielded: Vec<ShardYield<T>> = Vec::new();
                            let mut pos = j;
                            while pos < shards_ref.len() {
                                match f(worker, shards_ref[pos]) {
                                    // Drain the shard's block costs
                                    // immediately: they are re-appended in
                                    // stream order below.
                                    Ok(result) => yielded.push((pos, worker.take_costs(), result)),
                                    Err(e) => {
                                        // Salvage the costs of this worker's
                                        // completed shards plus the failing
                                        // shard's partial costs, so the
                                        // partial report still bills the
                                        // aborted work.
                                        let mut costs: Vec<(usize, Vec<BlockCost>)> =
                                            yielded.into_iter().map(|(p, c, _)| (p, c)).collect();
                                        costs.push((pos, worker.take_costs()));
                                        return Err((costs, e));
                                    }
                                }
                                pos += jobs;
                            }
                            Ok(yielded)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // gaasx-lint: allow(panic-in-lib) -- a panicked worker has already torn down the run; re-raising on join is the only sound option
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });

        let mut slots: Vec<Option<(Vec<BlockCost>, T)>> = Vec::new();
        slots.resize_with(shards.len(), || None);
        let mut aborted: Option<CoreError> = None;
        let mut salvaged: Vec<(usize, Vec<BlockCost>)> = Vec::new();
        for outcome in per_worker {
            match outcome {
                Ok(yielded) => {
                    for (pos, costs, result) in yielded {
                        slots[pos] = Some((costs, result));
                    }
                }
                Err((costs, e)) => {
                    salvaged.extend(costs);
                    // Keep the error of the lowest-indexed failing worker
                    // (workers run their shard subsets independently, so
                    // this choice is deterministic).
                    if aborted.is_none() {
                        aborted = Some(e);
                    }
                }
            }
        }
        if let Some(e) = aborted {
            // Fold every salvaged cost — from completed shards of failing
            // and non-failing workers alike — into the primary in stream
            // order, so `finish` prices the aborted run's real work.
            for (pos, slot) in slots.into_iter().enumerate() {
                if let Some((costs, _)) = slot {
                    salvaged.push((pos, costs));
                }
            }
            salvaged.sort_by_key(|&(pos, _)| pos);
            for (_, costs) in salvaged {
                self.primary.append_costs(costs);
            }
            return Err(e);
        }
        let mut results = Vec::with_capacity(shards.len());
        for slot in slots {
            // gaasx-lint: allow(panic-in-lib) -- scope invariant: each worker writes exactly its own slot before the scope ends
            let (costs, result) = slot.expect("every shard position filled");
            self.primary.append_costs(costs);
            results.push(result);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaasx_graph::{generators, Edge};
    use gaasx_sim::AggregateSink;

    use crate::engine::CellLayout;

    fn grid(edges: usize, seed: u64) -> (gaasx_graph::CooGraph, GridPartition) {
        let g =
            generators::rmat(&generators::RmatConfig::new(1 << 7, edges).with_seed(seed)).unwrap();
        let grid = crate::engine::partition_for_streaming(&g).unwrap();
        (g, grid)
    }

    /// One gather pass over every shard, counting hits per shard.
    fn gather_pass<R: ShardRunner>(runner: &mut R, grid: &GridPartition) -> Vec<u64> {
        let capacity = runner.engine().block_capacity();
        runner
            .for_each_shard(grid, TraversalOrder::ColumnMajor, |engine, shard| {
                let mut total = 0u64;
                let mut hits = gaasx_xbar::HitVector::new(0);
                for chunk in shard.edges().chunks(capacity) {
                    let cells =
                        |e: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[e.weight as u32, 1]);
                    let block = engine.load_block(chunk, CellLayout::PerEdge(&cells))?;
                    for &dst in block.distinct_dsts() {
                        engine.search_dst_into(dst, &mut hits);
                        total += engine.gather_rows(&hits, &mut |_| 1, 0)?;
                    }
                }
                Ok(total)
            })
            .unwrap()
    }

    #[test]
    fn sharded_report_is_bit_identical_to_serial() {
        let (_, grid) = grid(1500, 7);
        let mut serial = Engine::new(GaasXConfig::small()).unwrap();
        let want_totals = gather_pass(&mut serial, &grid);
        let want = serial.finish("t", "t", "t", 1, 1500);

        for jobs in [1, 2, 4] {
            let mut sharded = ShardedEngine::new(GaasXConfig::small(), jobs).unwrap();
            let got_totals = gather_pass(&mut sharded, &grid);
            let got = sharded.finish("t", "t", "t", 1, 1500);
            assert_eq!(got_totals, want_totals, "jobs={jobs}");
            assert_eq!(got.ops, want.ops, "jobs={jobs}");
            assert_eq!(got.elapsed_ns, want.elapsed_ns, "jobs={jobs}");
            assert_eq!(got.energy.total_nj(), want.energy.total_nj(), "jobs={jobs}");
            assert_eq!(got.rows_per_mac, want.rows_per_mac, "jobs={jobs}");
            for (a, b) in got.phases.iter().zip(want.phases.iter()) {
                assert_eq!(a.phase, b.phase);
                assert_eq!(a.sched_ns, b.sched_ns, "jobs={jobs} phase {:?}", a.phase);
                assert_eq!(a.count, b.count);
            }
        }
    }

    #[test]
    fn sharded_merge_conserves_the_phase_makespan() {
        let (_, grid) = grid(1200, 11);
        for jobs in [1, 3] {
            let mut sharded = ShardedEngine::new(GaasXConfig::small(), jobs).unwrap();
            gather_pass(&mut sharded, &grid);
            let report = sharded.finish("t", "t", "t", 1, 1200);
            assert!(!report.phases.is_empty(), "jobs={jobs}");
            // The choke-point `debug_assert!` in `Engine::finish` enforces
            // this for every run; pin it here for release builds too.
            assert_eq!(
                report.phases_total_sched_ns(),
                report.elapsed_ns,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn more_jobs_than_shards_still_covers_every_shard() {
        let (_, g) = grid(300, 3);
        let shards = g.num_nonempty_shards();
        let mut sharded = ShardedEngine::new(GaasXConfig::small(), shards + 5).unwrap();
        let totals = gather_pass(&mut sharded, &g);
        assert_eq!(totals.len(), shards);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let sharded = ShardedEngine::new(GaasXConfig::small(), 0).unwrap();
        assert_eq!(sharded.jobs(), 1);
    }

    #[test]
    fn worker_errors_surface() {
        let (_, g) = grid(400, 9);
        let mut sharded = ShardedEngine::new(GaasXConfig::small(), 2).unwrap();
        let r = sharded.for_each_shard(&g, TraversalOrder::RowMajor, |engine, shard| {
            // Force a block-capacity failure on a real shard.
            let too_big = vec![Edge::unweighted(0, 1); engine.block_capacity() + 1];
            let _ = shard;
            engine.load_block(&too_big, CellLayout::Preset).map(|_| ())
        });
        assert!(matches!(r, Err(CoreError::InvalidInput(_))));
    }

    #[test]
    fn aborted_runs_salvage_completed_shard_costs() {
        // A failure partway through the stream must not strand the costs
        // of already-completed shards: the partial report bills them.
        let (_, g) = grid(900, 13);
        for jobs in [1, 2] {
            let mut sharded = ShardedEngine::new(GaasXConfig::small(), jobs).unwrap();
            let capacity = sharded.engine().block_capacity();
            let seen = std::sync::atomic::AtomicUsize::new(0);
            let r = sharded.for_each_shard(&g, TraversalOrder::RowMajor, |engine, shard| {
                if seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst) >= jobs {
                    return Err(CoreError::InvalidInput("synthetic abort".into()));
                }
                for chunk in shard.edges().chunks(capacity) {
                    engine.load_block(chunk, CellLayout::Preset)?;
                }
                Ok(())
            });
            assert!(r.is_err(), "jobs={jobs}");
            let partial = sharded.finish("t", "t", "t", 0, 900);
            assert!(
                partial.elapsed_ns > Nanos::ZERO,
                "jobs={jobs}: completed-shard costs were dropped"
            );
            assert!(partial.ops.cells_written > 0, "jobs={jobs}");
        }
    }

    #[test]
    fn worker_spans_replay_through_the_primary_tracer() {
        let (_, g) = grid(600, 11);
        let agg = Arc::new(AggregateSink::new());
        let mut serial = Engine::new(GaasXConfig::small()).unwrap();
        let _ = gather_pass(&mut serial, &g);
        let serial_report = serial.finish("t", "t", "t", 1, 600);

        let mut sharded = ShardedEngine::new(GaasXConfig::small(), 3).unwrap();
        sharded.set_tracer(Tracer::with_sink(agg.clone()));
        let _ = gather_pass(&mut sharded, &g);
        let report = sharded.finish("t", "t", "t", 1, 600);
        assert_eq!(report.ops, serial_report.ops);

        // Span counts per phase match the merged report's op tallies.
        let rollup = agg.phase_rollup();
        for phase in [gaasx_sim::Phase::CamSearch, gaasx_sim::Phase::MacGather] {
            let seen = rollup.iter().find(|p| p.phase == phase).unwrap();
            assert_eq!(seen.count, report.phase(phase).unwrap().count, "{phase:?}");
        }
        // The metrics registry carries the merged op counters.
        assert_eq!(
            sharded.primary.tracer().metrics().unwrap().op_summary(),
            report.ops
        );
    }

    #[test]
    fn sharded_timelines_are_bit_identical_to_serial() {
        use gaasx_sim::TimelineSink;
        let (_, g) = grid(900, 5);
        let serial_sink = Arc::new(TimelineSink::new());
        let mut serial = Engine::new(GaasXConfig::small()).unwrap();
        serial.set_tracer(Tracer::with_sink(serial_sink.clone()));
        let _ = gather_pass(&mut serial, &g);
        let want = serial.finish("t", "t", "t", 1, 900);
        let want_util = want.utilization.clone().unwrap();
        let want_intervals = serial_sink.take();

        for jobs in [1, 2, 4] {
            let sink = Arc::new(TimelineSink::new());
            let mut sharded = ShardedEngine::new(GaasXConfig::small(), jobs).unwrap();
            sharded.set_tracer(Tracer::with_sink(sink.clone()));
            let _ = gather_pass(&mut sharded, &g);
            let got = sharded.finish("t", "t", "t", 1, 900);
            let got_util = got.utilization.clone().unwrap();
            assert_eq!(got_util, want_util, "jobs={jobs}");
            assert_eq!(sink.take(), want_intervals, "jobs={jobs}");
            // Conservation against the merged phase attribution.
            for p in &got.phases {
                assert_eq!(
                    got_util.phase_busy_ns[p.phase.index()],
                    p.busy_ns,
                    "jobs={jobs} {:?}",
                    p.phase
                );
            }
        }
    }

    #[test]
    fn worker_metrics_merge_losslessly_into_the_primary() {
        let (_, g) = grid(700, 17);
        let run = |jobs: usize| {
            let mut sharded = ShardedEngine::new(GaasXConfig::small(), jobs).unwrap();
            sharded.set_tracer(Tracer::with_sink(Arc::new(AggregateSink::new())));
            let capacity = sharded.engine().block_capacity();
            sharded
                .for_each_shard(&g, TraversalOrder::ColumnMajor, |engine, shard| {
                    let mut hits = gaasx_xbar::HitVector::new(0);
                    for chunk in shard.edges().chunks(capacity) {
                        let block = engine.load_block(chunk, CellLayout::Preset)?;
                        for &dst in block.distinct_dsts() {
                            engine.search_dst_into(dst, &mut hits);
                            // Worker-side metrics: these land in the
                            // worker tracer's registry and must survive
                            // the merge.
                            engine.tracer().counter_add("shard_probes", 1);
                            engine
                                .tracer()
                                .histogram_record("hits_per_search", hits.count().max(1));
                        }
                    }
                    Ok(())
                })
                .unwrap();
            let _ = sharded.finish("t", "t", "t", 1, 700);
            let metrics = sharded.primary.tracer().metrics().unwrap();
            (
                metrics.counter("shard_probes").get(),
                metrics.histogram("hits_per_search").lock().clone(),
            )
        };
        let (whole_count, whole_hist) = run(1);
        assert!(whole_count > 0);
        assert!(whole_hist.total() > 0);
        for jobs in [2, 4] {
            let (count, hist) = run(jobs);
            assert_eq!(count, whole_count, "jobs={jobs}");
            assert_eq!(hist, whole_hist, "jobs={jobs}: merged quantiles diverge");
            for q in [0.25, 0.5, 0.95] {
                assert_eq!(
                    hist.value_at_quantile(q),
                    whole_hist.value_at_quantile(q),
                    "jobs={jobs} q={q}"
                );
            }
        }
    }
}
