//! # gaasx-core — the GaaS-X accelerator
//!
//! A faithful model of the GaaS-X processing-in-memory graph analytics
//! accelerator (ISCA 2020): CAM crossbars hold sparse `(src, dst)` edge
//! pairs, MAC crossbars hold the matching attributes, and graph algorithms
//! execute as CAM-search → selective-MAC → SFU pipelines directly on the
//! sparse representation — no sparse-to-dense conversion, no zero-edge
//! work.
//!
//! * [`GaasX`] / [`GaasXConfig`] — the accelerator and its Table I
//!   configuration;
//! * [`engine::Engine`] — controller-level execution primitives (the
//!   five-phase model of paper §III-B);
//! * [`algorithms`] — PageRank, SSSP, BFS, and collaborative filtering
//!   mappings (paper §IV);
//! * [`config::table1_components`] — the published area/power inventory.
//!
//! ```
//! use gaasx_core::{GaasX, GaasXConfig};
//! use gaasx_core::algorithms::{PageRank, Sssp};
//! use gaasx_graph::{generators, VertexId};
//!
//! let graph = generators::paper_fig7_graph();
//! let mut accel = GaasX::new(GaasXConfig::small());
//!
//! let pr = accel.run(&PageRank::default(), &graph)?;
//! let sssp = accel.run(&Sssp::from_source(VertexId::new(0)), &graph)?;
//! println!(
//!     "pagerank: {:.3} µs, sssp: {:.3} µs",
//!     pr.report.elapsed_ns / 1e3,
//!     sssp.report.elapsed_ns / 1e3,
//! );
//! # Ok::<(), gaasx_core::CoreError>(())
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accelerator;
mod error;
mod memo;
mod sfu;

pub mod algorithms;
pub mod config;
pub mod engine;
pub mod sharded;

pub use accelerator::{GaasX, RunOutcome};
pub use algorithms::ShardableAlgorithm;
pub use config::{GaasXConfig, RecoveryPolicy};
pub use engine::WearSnapshot;
pub use error::CoreError;
pub use gaasx_xbar::{SearchCostModel, SearchMode, SearchProfile};
pub use sfu::Sfu;
pub use sharded::{ShardRunner, ShardedEngine};
