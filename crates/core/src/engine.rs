//! The GaaS-X execution engine: controller-level primitives over the
//! CAM/MAC crossbar banks.
//!
//! Algorithms program against this engine using the paper's five-phase
//! model (§III-B):
//!
//! 1. *Initialization* — [`Engine::new`];
//! 2. *Data loading* — [`Engine::load_block`] writes a block of ≤128 edges
//!    into a CAM+MAC bank pair;
//! 3. *CAM search* — [`Engine::search_src`] / [`Engine::search_dst`];
//! 4. *MAC operation* — [`Engine::gather_rows`] (SpMV-multiply style
//!    accumulation down columns) and [`Engine::propagate_rows`]
//!    (SpMV-add style per-row sums through the transposed array);
//! 5. *Special function execution* — the [`Sfu`] wrappers.
//!
//! ## Parallelism and timing
//!
//! Functionally a single working CAM+MAC pair executes every block (results
//! are bit-identical to running on 2048 banks). Timing models the real
//! parallelism under the configured [`SchedulePolicy`]: the default *wave*
//! scheduler fills the `num_banks` banks with consecutive blocks — within a
//! wave, streaming from the storage arrays is serial at
//! `stream_bandwidth_gbps` while row programming and compute run
//! bank-parallel, and waves overlap load-with-compute through the
//! double-buffered pipeline model ([`gaasx_sim::pipeline`]) — while the
//! *event-driven* alternative dispatches each block to the
//! earliest-available bank with no barriers ([`gaasx_sim::des`]).

use gaasx_graph::{CooGraph, Edge, GraphError, VertexId};
use gaasx_sim::des::{BankScheduler, SchedulePolicy};
use gaasx_sim::pipeline::{pipelined_makespan, serial_makespan, PhasePipe, PipelineClock};
use gaasx_sim::timeline::{COMPUTE_LANE, LOAD_LANE, SEARCH_LANE};
use gaasx_sim::{
    attribute_makespan, EnergyBreakdown, FaultReport, Histogram, Nanos, OpSummary, Phase,
    RunReport, SramBuffer, Timeline, Tracer, UtilizationReport, CONTROLLER_BANK,
};
use gaasx_xbar::fault::{CamFaultState, MacFaultState};
use gaasx_xbar::{
    BlockShape, CamCrossbar, HitVector, MacCrossbar, MacDirection, SearchCostModel, SearchMode,
    SearchProfile, XbarStats,
};

use crate::config::GaasXConfig;
use crate::error::CoreError;
use crate::memo::SearchMemo;
use crate::sfu::Sfu;

/// Effective parallel lanes in the SFU (it contains multiple adders,
/// comparators and multipliers, paper §III-B).
const SFU_LANES: f64 = 16.0;

/// Sentinel for a physical row that maps to no logical slot (a free or
/// retired row).
const UNMAPPED: usize = usize::MAX;

/// How the MAC cells of a block are populated during data loading.
pub enum CellLayout<'a> {
    /// Write per-edge codes (e.g. edge weights, reciprocal out-degrees).
    /// The closure pushes one edge's MAC-row codes into a buffer the
    /// engine clears and reuses across the block, so loading issues no
    /// per-edge heap allocation.
    PerEdge(&'a dyn Fn(&Edge, &mut Vec<u32>)),
    /// All cells hold a fixed preset code; no per-edge MAC writes are
    /// issued. This is the BFS optimization (§IV: BFS runs "without the
    /// overhead of loading edge weights into MAC crossbars but setting the
    /// edge weight columns to a fixed value of 1").
    Preset,
}

impl std::fmt::Debug for CellLayout<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellLayout::PerEdge(_) => f.write_str("CellLayout::PerEdge(..)"),
            CellLayout::Preset => f.write_str("CellLayout::Preset"),
        }
    }
}

/// A loaded block: the controller's metadata for one CAM+MAC bank fill.
#[derive(Debug, Clone)]
pub struct Block {
    rows: Vec<Edge>,
    distinct_srcs: Vec<VertexId>,
    distinct_dsts: Vec<VertexId>,
}

impl Block {
    /// The edge stored at a CAM/MAC row.
    ///
    /// # Panics
    ///
    /// Panics if `row` exceeds the block occupancy.
    pub fn edge(&self, row: usize) -> Edge {
        self.rows[row]
    }

    /// Number of edges in the block.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct source vertices, ascending (the controller tracks loaded
    /// vertex ranges as graph metadata, §III-A).
    pub fn distinct_srcs(&self) -> &[VertexId] {
        &self.distinct_srcs
    }

    /// Distinct destination vertices, ascending.
    pub fn distinct_dsts(&self) -> &[VertexId] {
        &self.distinct_dsts
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct BlockCost {
    stream_bytes: u64,
    program_ns: Nanos,
    compute_ns: Nanos,
    /// Partition of `compute_ns` by [`Phase`] (indexed by `Phase::index`).
    /// Scheduling consumes the total; phase attribution the split.
    compute_phase_ns: [Nanos; 7],
    /// Per-operation `(phase, ns)` ledger in issue order, kept only when
    /// the attached tracer observes timeline intervals. Timeline
    /// construction replays it to lay each compute op on its bank's
    /// occupancy track; summing the entries per phase reproduces
    /// `compute_phase_ns` bit-exactly (same accumulation order).
    ops: Vec<(Phase, Nanos)>,
    /// Intra-block search/MAC overlap clock, fed one op at a time as the
    /// ledger accrues. Its makespan is the block's *pipelined* compute
    /// time, which scheduling consumes; `compute_ns` stays the serial sum
    /// so phase attribution and busy conservation are untouched by the
    /// overlap model.
    pipe: PhasePipe,
}

impl BlockCost {
    fn add_phase(&mut self, phase: Phase, ns: Nanos, record_op: bool) {
        self.compute_ns += ns;
        self.compute_phase_ns[phase.index()] += ns;
        if phase == Phase::CamSearch {
            self.pipe.search(ns.ns());
        } else {
            self.pipe.compute(ns.ns());
        }
        if record_op {
            self.ops.push((phase, ns));
        }
    }

    /// The block's compute time under the search/MAC overlap pipeline.
    /// For blocks without CAM searches this equals `compute_ns` bit-for-
    /// bit (the pipe accumulates the same f64 sum in the same order).
    fn pipelined_compute_ns(&self) -> Nanos {
        Nanos::from_ns(self.pipe.makespan())
    }
}

/// Per-device endurance wear captured from an engine's crossbar banks.
///
/// A serving layer snapshots wear before tearing an engine down (e.g. to
/// replace a worker after a panic) and restores it into the replacement so
/// physical degradation accumulates across engine incarnations on the
/// same modeled bank. Empty vectors mean endurance tracking is off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WearSnapshot {
    /// Per-CAM-row programming-burst counts.
    pub cam_rows: Vec<u64>,
    /// Per-MAC-cell programming-pulse counts, indexed `row * cols + col`.
    pub mac_cells: Vec<u64>,
}

impl WearSnapshot {
    /// True when no wear was tracked (endurance disabled or no faults).
    pub fn is_empty(&self) -> bool {
        self.cam_rows.is_empty() && self.mac_cells.is_empty()
    }

    /// Total programming events recorded across both banks.
    pub fn total_writes(&self) -> u64 {
        self.cam_rows
            .iter()
            .chain(self.mac_cells.iter())
            .fold(0u64, |acc, &w| acc.saturating_add(w))
    }
}

/// The execution engine (see module docs).
#[derive(Debug)]
pub struct Engine {
    config: GaasXConfig,
    cam: CamCrossbar,
    mac: MacCrossbar,
    aux_mac: MacCrossbar,
    sfu: Sfu,
    input_buf: SramBuffer,
    output_buf: SramBuffer,
    attr_buf: SramBuffer,
    rows_per_mac: Histogram,
    costs: Vec<BlockCost>,
    current: BlockCost,
    in_block: bool,
    extra_ns: Nanos,
    extra_phase_ns: [Nanos; 7],
    phase_counts: [u64; 7],
    compute_items: u64,
    extra_aux_row_writes: u64,
    extra_aux_cells: u64,
    tracer: Tracer,
    /// Whether block costs keep their per-operation ledger (derived from
    /// [`Tracer::observes_intervals`] at `set_tracer` time; sharded
    /// worker engines have it forced on by the primary).
    record_ops: bool,
    /// Functional (serial) time cursor for span placement.
    cursor_ns: Nanos,
    /// Per-query modeled-time budget; checked cooperatively at block
    /// boundaries (see [`Engine::set_deadline`]).
    deadline_ns: Option<Nanos>,
    /// Whether the config injects any device faults. Gates every recovery
    /// code path so a fault-free engine is bit-identical to one predating
    /// the fault layer.
    fault_active: bool,
    /// Logical block slot → physical CAM/MAC row. Identity until a remap
    /// retires a row; `remap_active` guards the identity fast path.
    log2phys: Vec<usize>,
    /// Physical row → logical slot ([`UNMAPPED`] for spares and retired
    /// rows).
    phys2log: Vec<usize>,
    /// Free spare physical rows, popped in ascending row order.
    spares: Vec<usize>,
    /// `true` once any slot maps away from its identity row.
    remap_active: bool,
    /// Scratch for translating logical activation chunks to physical rows
    /// (preallocated: the translation sits inside the MAC hot loop).
    phys_buf: Vec<usize>,
    /// Recovery activity detected by this engine (verify reads, retries,
    /// remaps); merged across sharded workers and surfaced in the report.
    faults: FaultReport,
    /// Per-block search memo (see [`crate::memo`]); only consulted when
    /// `memo_active`.
    memo: SearchMemo,
    /// Whether memoization is permitted at all: the config's mode can
    /// resolve to Indexed and no fault model is attached (device state
    /// must be a pure function of the programmed keys).
    memo_enabled: bool,
    /// Whether the *current block* memoizes — re-derived at every
    /// [`load_block`](Engine::load_block) from the block's resolved
    /// search mode. A mixed Auto bank memoizes only its Indexed blocks.
    memo_active: bool,
    /// The querying algorithm's declared access pattern — the
    /// [`SearchCostModel`]'s workload input when resolving `Auto` blocks.
    search_profile: SearchProfile,
    /// Per-block Linear-vs-Indexed cost model, calibrated against the
    /// config's device time base.
    search_costs: SearchCostModel,
    /// CAM key sequence of the block being loaded (memo registration).
    key_buf: Vec<u128>,
    /// Reused MAC-code buffer for [`CellLayout::PerEdge`] loading.
    codes_buf: Vec<u32>,
    /// Scratch for the phys→logical hit translation under remapping.
    hits_scratch: HitVector,
    /// Reused MAC input buffer for [`Engine::gather_rows`].
    inputs_buf: Vec<u32>,
    /// Reused MAC output buffer (one accumulated sum per crossed line).
    mac_out: Vec<u64>,
    /// Reused ≤16-row activation chunk for the MAC hot loops.
    chunk_buf: Vec<usize>,
    /// Reused physical read-out line list for restricted MAC propagation.
    lines_buf: Vec<usize>,
}

impl Engine {
    /// Builds an engine from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: GaasXConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let mut mac = MacCrossbar::new(config.mac_geometry, config.fidelity);
        let mut aux_mac = MacCrossbar::new(config.mac_geometry, config.fidelity);
        if config.noise_sigma > 0.0 {
            mac.set_noise(Some(gaasx_xbar::noise::NoiseModel::new(
                config.noise_sigma,
                config.noise_seed,
            )));
            aux_mac.set_noise(Some(gaasx_xbar::noise::NoiseModel::new(
                config.noise_sigma,
                config.noise_seed.wrapping_add(1),
            )));
        }
        let mut cam = CamCrossbar::new(config.cam_geometry);
        cam.set_search_mode(config.search_mode);
        cam.set_kernel(config.kernel);
        mac.set_kernel(config.kernel);
        aux_mac.set_kernel(config.kernel);
        // Faults apply to the edge-storage CAM/MAC pair; the auxiliary
        // attribute arrays model ECC-protected storage-class banks and
        // stay clean.
        let fault_active = !config.fault.is_none();
        if fault_active {
            cam.set_faults(Some(CamFaultState::new(config.fault, &config.cam_geometry)));
            mac.set_faults(Some(MacFaultState::new(config.fault, &config.mac_geometry)));
        }
        let rows = config.cam_geometry.rows;
        let reserved = if fault_active {
            config.recovery.spare_rows
        } else {
            0
        };
        let capacity = rows - reserved;
        let mut phys2log = vec![UNMAPPED; rows];
        for (slot, entry) in phys2log.iter_mut().enumerate().take(capacity) {
            *entry = slot;
        }
        let phys_buf = Vec::with_capacity(config.mac_geometry.max_active_rows);
        Ok(Engine {
            cam,
            mac,
            aux_mac,
            sfu: Sfu::new(),
            input_buf: SramBuffer::input_16kb(),
            output_buf: SramBuffer::output_64kb(),
            attr_buf: SramBuffer::attribute_512kb(),
            rows_per_mac: Histogram::new(config.mac_geometry.max_active_rows),
            costs: Vec::new(),
            current: BlockCost::default(),
            in_block: false,
            extra_ns: Nanos::ZERO,
            extra_phase_ns: [Nanos::ZERO; 7],
            phase_counts: [0; 7],
            compute_items: 0,
            extra_aux_row_writes: 0,
            extra_aux_cells: 0,
            tracer: Tracer::null(),
            record_ops: false,
            cursor_ns: Nanos::ZERO,
            deadline_ns: None,
            fault_active,
            log2phys: (0..capacity).collect(),
            phys2log,
            // Descending storage so `pop` hands out spares in ascending
            // physical-row order.
            spares: (capacity..rows).rev().collect(),
            remap_active: false,
            phys_buf,
            faults: FaultReport::default(),
            memo: SearchMemo::new(),
            memo_enabled: config.search_mode != SearchMode::Linear && !fault_active,
            // Per-block; re-derived at each load_block from the resolved
            // mode. Before any block loads, only a fixed Indexed config
            // can replay (Auto has nothing resolved yet).
            memo_active: config.search_mode == SearchMode::Indexed && !fault_active,
            search_profile: SearchProfile::default(),
            search_costs: SearchCostModel::calibrated_for(&config.energy, config.kernel),
            key_buf: Vec::with_capacity(rows),
            codes_buf: Vec::new(),
            hits_scratch: HitVector::new(0),
            inputs_buf: Vec::with_capacity(config.mac_geometry.max_active_rows),
            mac_out: Vec::new(),
            chunk_buf: Vec::with_capacity(config.mac_geometry.max_active_rows),
            lines_buf: Vec::with_capacity(config.mac_geometry.max_active_rows),
            config,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GaasXConfig {
        &self.config
    }

    /// Declares how the running algorithm queries its blocks — the
    /// [`SearchCostModel`]'s workload input. Only consulted when the
    /// config's search mode is [`SearchMode::Auto`]; takes effect at the
    /// next [`load_block`](Engine::load_block).
    pub fn set_search_profile(&mut self, profile: SearchProfile) {
        self.search_profile = profile;
    }

    /// The declared access pattern ([`SearchProfile::OnePerKey`] until
    /// overridden).
    pub fn search_profile(&self) -> SearchProfile {
        self.search_profile
    }

    /// The concrete host search algorithm serving the current block.
    /// Under a fixed config mode this is that mode; under
    /// [`SearchMode::Auto`] it is whatever the cost model resolved the
    /// most recently loaded block to.
    pub fn resolved_search_mode(&self) -> SearchMode {
        self.cam.search_mode()
    }

    /// Resolves the search mode for a block about to be programmed: fixed
    /// config modes pass through; `Auto` asks the cost model, feeding it
    /// the distinct-key count of the field the declared profile searches
    /// (dense sweeps probe destinations, frontier expansion probes
    /// sources) and the physical-search multiplier CAM majority voting
    /// would impose.
    fn resolve_block_mode(
        &self,
        occupancy: usize,
        distinct_srcs: usize,
        distinct_dsts: usize,
    ) -> SearchMode {
        match self.config.search_mode {
            SearchMode::Auto => {
                let distinct_keys = match self.search_profile {
                    SearchProfile::OnePerKey => distinct_dsts,
                    SearchProfile::Frontier => distinct_srcs,
                };
                let physical_per_logical =
                    if self.fault_active && self.config.recovery.cam_double_check {
                        3
                    } else {
                        1
                    };
                self.search_costs.resolve(&BlockShape {
                    rows: self.config.cam_geometry.rows,
                    occupancy,
                    distinct_keys,
                    physical_per_logical,
                    profile: self.search_profile,
                })
            }
            fixed => fixed,
        }
    }

    /// Attaches a tracer: every subsequent operation emits a phase span on
    /// the engine's functional (serial) time axis, and `finish` publishes
    /// the op counters and per-bank dispatch events through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.record_ops = tracer.observes_intervals();
        self.tracer = tracer;
    }

    /// Forces the per-operation ledger on or off regardless of this
    /// engine's own tracer. The sharded layer uses this on worker engines
    /// (which carry null or memory-sink tracers) so their block costs
    /// still feed the primary's timeline.
    pub(crate) fn set_record_ops(&mut self, on: bool) {
        self.record_ops = on;
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Counts one operation in `phase`, advances the functional-time
    /// cursor, and emits a leaf span when tracing is on.
    fn trace_op(&mut self, phase: Phase, dur_ns: Nanos) {
        self.phase_counts[phase.index()] = self.phase_counts[phase.index()].saturating_add(1);
        let start = self.cursor_ns;
        self.cursor_ns += dur_ns;
        // The span/telemetry boundary is untyped; `.ns()` marks the exit
        // from the typed accounting.
        self.tracer.emit(phase, start.ns(), dur_ns.ns());
    }

    /// Maximum edges per block: CAM rows per bank, minus the spare rows
    /// reserved for remapping when fault injection is active. With a
    /// fault-free config the full row count is usable, so the fault layer
    /// costs nothing when off.
    pub fn block_capacity(&self) -> usize {
        if self.fault_active {
            self.config.cam_geometry.rows - self.config.recovery.spare_rows
        } else {
            self.config.cam_geometry.rows
        }
    }

    /// Whether write-verify is in effect (faults injected *and* the policy
    /// asks for verification).
    fn verify_on(&self) -> bool {
        self.fault_active && self.config.recovery.write_verify
    }

    /// Weight precision of the MAC cells in bits.
    pub fn weight_bits(&self) -> u32 {
        self.config.mac_geometry.weight_bits()
    }

    /// Presets every MAC cell of the working bank to `code` without
    /// counting writes — one-time array configuration (BFS's all-ones
    /// weight columns).
    ///
    /// Uses the uncounted preload path so any MAC statistics accumulated
    /// *before* the preset survive it. (An earlier implementation probed
    /// with counted writes and then reset the stats, silently wiping all
    /// prior device activity whenever work preceded the preset.)
    ///
    /// # Errors
    ///
    /// Returns a device error if `code` exceeds the cell range.
    pub fn preset_mac(&mut self, code: u32) -> Result<(), CoreError> {
        let g = self.config.mac_geometry;
        let codes = vec![code; g.cols];
        for row in 0..g.rows {
            self.mac.preload_row(row, &codes)?;
        }
        if self.verify_on() {
            self.audit_preset(code)?;
        }
        Ok(())
    }

    /// Post-preset health check: read back every mapped slot and every
    /// spare. Spares that fail are dropped from the pool (a remap target
    /// must hold the preset correctly); mapped slots that fail remap onto a
    /// pre-validated spare. Verify reads are charged as data-loading time.
    fn audit_preset(&mut self, code: u32) -> Result<(), CoreError> {
        let cols = self.config.mac_geometry.cols;
        let per_row_ns = self.config.energy.verify_read_ns;
        let mut verify_ns = Nanos::ZERO;
        let spares = std::mem::take(&mut self.spares);
        let mut good = Vec::with_capacity(spares.len());
        for spare in spares {
            verify_ns += per_row_ns;
            self.faults.verify_reads = self.faults.verify_reads.saturating_add(1);
            if self.preset_row_ok(spare, code, cols)? {
                good.push(spare);
            } else {
                self.faults.faults_detected = self.faults.faults_detected.saturating_add(1);
            }
        }
        self.spares = good;
        for slot in 0..self.log2phys.len() {
            verify_ns += per_row_ns;
            self.faults.verify_reads = self.faults.verify_reads.saturating_add(1);
            if !self.preset_row_ok(self.log2phys[slot], code, cols)? {
                self.faults.faults_detected = self.faults.faults_detected.saturating_add(1);
                self.remap_slot(slot)?;
            }
        }
        self.add_compute(Phase::LoadBlock, verify_ns);
        self.trace_op(Phase::LoadBlock, verify_ns);
        Ok(())
    }

    fn preset_row_ok(&self, phys: usize, code: u32, cols: usize) -> Result<bool, CoreError> {
        for col in 0..cols {
            if self.mac.read_cell(phys, col)? != code {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Retires the physical row behind `slot` and maps the slot onto the
    /// next spare. The retired row is invalidated in the CAM so stale bits
    /// can never match a search.
    fn remap_slot(&mut self, slot: usize) -> Result<(), CoreError> {
        let phys = self.log2phys[slot];
        let Some(spare) = self.spares.pop() else {
            return Err(CoreError::DeviceFault {
                detail: format!(
                    "physical row {phys} (slot {slot}) is unprogrammable and no spare rows \
                     remain (policy: {} retries, {} spares)",
                    self.config.recovery.retry_budget, self.config.recovery.spare_rows
                ),
                report: None,
            });
        };
        self.cam.invalidate(phys)?;
        self.phys2log[phys] = UNMAPPED;
        self.phys2log[spare] = slot;
        self.log2phys[slot] = spare;
        self.remap_active = true;
        // A remap decouples physical state from the programmed key
        // sequence; drop any memoized hit vectors. (Defensive: remaps
        // require an active fault model, which already disables the memo.)
        self.memo.clear();
        self.faults.row_remaps = self.faults.row_remaps.saturating_add(1);
        if self.tracer.enabled() {
            self.tracer
                .span(Phase::LoadBlock, self.cursor_ns.ns())
                .attr("remap_slot", slot)
                .attr("from_phys", phys)
                .attr("to_phys", spare)
                .end(self.cursor_ns.ns());
        }
        Ok(())
    }

    /// Reads back a just-programmed row and compares against intent.
    fn row_matches(
        &self,
        phys: usize,
        key: u128,
        codes: Option<&[u32]>,
    ) -> Result<bool, CoreError> {
        let entry = self.cam.read(phys)?;
        if !entry.valid || entry.bits != key & self.cam_width_mask() {
            return Ok(false);
        }
        if let Some(codes) = codes {
            for (col, &code) in codes.iter().enumerate() {
                if self.mac.read_cell(phys, col)? != code {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    fn cam_width_mask(&self) -> u128 {
        let bits = self.config.cam_geometry.width_bits;
        if bits >= 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        }
    }

    /// Programs one logical slot (CAM key plus optional MAC codes) with
    /// write-verify, bounded retry, and spare-row remapping per the
    /// [`RecoveryPolicy`](crate::RecoveryPolicy). Returns the programming
    /// time spent, including verify reads and every retried attempt.
    fn program_slot(
        &mut self,
        slot: usize,
        key: u128,
        codes: Option<&[u32]>,
    ) -> Result<Nanos, CoreError> {
        let cam_ns = self.config.energy.row_program_ns(1);
        let attempt_ns = match codes {
            Some(c) => cam_ns.max(self.config.energy.row_program_ns(c.len())),
            None => cam_ns,
        };
        let verify = self.verify_on();
        let mut ns = Nanos::ZERO;
        loop {
            let phys = self.log2phys[slot];
            let mut tries: u32 = 0;
            loop {
                self.cam.write(phys, key)?;
                if let Some(c) = codes {
                    self.mac.write_row(phys, c)?;
                }
                ns += attempt_ns;
                if !verify {
                    return Ok(ns);
                }
                ns += self.config.energy.verify_read_ns;
                self.faults.verify_reads = self.faults.verify_reads.saturating_add(1);
                if self.row_matches(phys, key, codes)? {
                    return Ok(ns);
                }
                self.faults.faults_detected = self.faults.faults_detected.saturating_add(1);
                if tries >= self.config.recovery.retry_budget {
                    break;
                }
                tries += 1;
                self.faults.write_retries = self.faults.write_retries.saturating_add(1);
            }
            // Retry budget exhausted on this physical row: remap the slot
            // and reprogram on the spare (or fail if the pool is dry).
            self.remap_slot(slot)?;
        }
    }

    /// Loads a block of edges into the working CAM+MAC bank (data loading
    /// phase). Ends any previous block.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the block exceeds the bank
    /// capacity, or a device error on bad cell codes.
    pub fn load_block(
        &mut self,
        edges: &[Edge],
        cells: CellLayout<'_>,
    ) -> Result<Block, CoreError> {
        self.check_deadline()?;
        if edges.len() > self.block_capacity() {
            return Err(CoreError::InvalidInput(format!(
                "block of {} edges exceeds bank capacity {}",
                edges.len(),
                self.block_capacity()
            )));
        }
        self.end_block();
        self.in_block = true;

        self.cam.invalidate_all();
        let mut srcs: Vec<VertexId> = Vec::with_capacity(edges.len());
        let mut dsts: Vec<VertexId> = Vec::with_capacity(edges.len());
        for e in edges {
            srcs.push(e.src);
            dsts.push(e.dst);
        }
        srcs.sort_unstable();
        srcs.dedup();
        dsts.sort_unstable();
        dsts.dedup();

        // Resolve the host search algorithm for this block before
        // programming: the memo registers key sequences only for blocks
        // that resolve Indexed, so the decision must precede the loop.
        let resolved = self.resolve_block_mode(edges.len(), srcs.len(), dsts.len());
        self.cam.set_search_mode(resolved);
        self.memo_active = self.memo_enabled && resolved == SearchMode::Indexed;

        let mut program_ns = Nanos::ZERO;
        self.key_buf.clear();
        let mut codes = std::mem::take(&mut self.codes_buf);
        for (slot, e) in edges.iter().enumerate() {
            let key = (u128::from(e.src.raw()) << 32) | u128::from(e.dst.raw());
            // The CAM key programs as one ternary word; the MAC row
            // programs its values in the paired array concurrently — the
            // slower of the two paces the row. Under an active fault model
            // the slot programs through write-verify/retry/remap.
            program_ns += match cells {
                CellLayout::PerEdge(f) => {
                    codes.clear();
                    f(e, &mut codes);
                    self.program_slot(slot, key, Some(&codes))?
                }
                CellLayout::Preset => self.program_slot(slot, key, None)?,
            };
            if self.memo_active {
                self.key_buf.push(key);
            }
        }
        self.codes_buf = codes;
        if self.memo_active {
            // Re-loading a block with the same key sequence revives its
            // memoized hit vectors; a new block starts an empty memo entry.
            self.memo.begin_block(&self.key_buf);
        }

        let bytes = edges.len() as u64 * self.config.edge_record_bytes;
        self.input_buf.write(bytes);
        self.current.stream_bytes = bytes;
        self.current.program_ns = program_ns;

        let load_ns = self.config.stream_ns(bytes) + program_ns;
        self.phase_counts[Phase::LoadBlock.index()] =
            self.phase_counts[Phase::LoadBlock.index()].saturating_add(1);
        let start = self.cursor_ns;
        self.cursor_ns += load_ns;
        if self.tracer.enabled() {
            self.tracer
                .span(Phase::LoadBlock, start.ns())
                .attr("edges", edges.len())
                .attr("bytes", bytes)
                .end((start + load_ns).ns());
        }

        Ok(Block {
            rows: edges.to_vec(),
            distinct_srcs: srcs,
            distinct_dsts: dsts,
        })
    }

    /// CAM search for all edges with the given source (row-wise key field).
    pub fn search_src(&mut self, src: VertexId) -> HitVector {
        let mut hits = HitVector::new(0);
        self.search_src_into(src, &mut hits);
        hits
    }

    /// CAM search for all edges with the given destination.
    pub fn search_dst(&mut self, dst: VertexId) -> HitVector {
        let mut hits = HitVector::new(0);
        self.search_dst_into(dst, &mut hits);
        hits
    }

    /// [`search_src`](Self::search_src) into a caller-owned buffer so hot
    /// loops allocate nothing. `hits` is overwritten.
    pub fn search_src_into(&mut self, src: VertexId, hits: &mut HitVector) {
        self.searched_into(u128::from(src.raw()) << 32, 0xFFFF_FFFF_0000_0000, hits);
    }

    /// [`search_dst`](Self::search_dst) into a caller-owned buffer so hot
    /// loops allocate nothing. `hits` is overwritten.
    pub fn search_dst_into(&mut self, dst: VertexId, hits: &mut HitVector) {
        self.searched_into(u128::from(dst.raw()), 0xFFFF_FFFF, hits);
    }

    /// Issues a CAM search, optionally triple-voted against transient
    /// upsets, and translates physical hit rows back to logical slots.
    ///
    /// The search is *always* billed (time, energy, `cam_searches`) as one
    /// physical CAM operation — the hardware searches every time. When the
    /// memo is active the host may replay the hit vector a previous search
    /// on this exact block content derived, which is what makes the memo
    /// invisible in every [`RunReport`].
    fn searched_into(&mut self, key: u128, mask: u128, out: &mut HitVector) {
        let ns = self.config.energy.cam_search_ns;
        self.current
            .add_phase(Phase::CamSearch, ns, self.record_ops);
        self.trace_op(Phase::CamSearch, ns);
        if self.memo_active {
            // gaasx-lint: hot
            if let Some(hit) = self.memo.lookup(key, mask) {
                out.copy_from(hit);
                self.cam.count_replayed_search();
                return;
            }
            // gaasx-lint: end-hot
        }
        self.cam.search_into(key, mask, out);
        if self.fault_active && self.config.recovery.cam_double_check {
            // Two extra searches; a per-row majority vote masks any single
            // transient upset. Each re-search is charged like the first.
            // (A fault path — never memoized, allocation here is fine.)
            self.current
                .add_phase(Phase::CamSearch, ns, self.record_ops);
            self.trace_op(Phase::CamSearch, ns);
            let second = self.cam.search(key, mask);
            self.current
                .add_phase(Phase::CamSearch, ns, self.record_ops);
            self.trace_op(Phase::CamSearch, ns);
            let third = self.cam.search(key, mask);
            let voted = out
                .and(&second)
                .or(&out.and(&third))
                .or(&second.and(&third));
            out.copy_from(&voted);
            self.faults.cam_double_checks = self.faults.cam_double_checks.saturating_add(1);
        }
        if self.remap_active {
            // Remapped slots match at their spare's physical row; report
            // them at their logical slot so algorithms stay oblivious to
            // remapping. (Remaps require an active fault model, so this
            // never runs on the memoized steady-state path.)
            std::mem::swap(out, &mut self.hits_scratch);
            out.reset(self.hits_scratch.len());
            for phys in self.hits_scratch.iter_ones() {
                let slot = self.phys2log[phys];
                if slot != UNMAPPED {
                    out.set(slot);
                }
            }
            return;
        }
        if self.memo_active {
            self.memo.insert(key, mask, out);
        }
    }

    /// SpMV-multiply accumulation: sums `input(row) × cell[row][out_col]`
    /// over the hit rows, chunked to the ≤16-row burst cap. Each input is
    /// fetched from the attribute buffer (4 bytes). Returns the raw
    /// accumulated code.
    ///
    /// # Errors
    ///
    /// Propagates device errors (they indicate engine bugs, not bad user
    /// input).
    pub fn gather_rows(
        &mut self,
        hits: &HitVector,
        input: &mut dyn FnMut(usize) -> u32,
        out_col: usize,
    ) -> Result<u64, CoreError> {
        let mut total: u64 = 0;
        let mut first = true;
        let cap = self.config.mac_geometry.max_active_rows;
        let mut ones = hits.iter_ones();
        // gaasx-lint: hot
        loop {
            // Fill the reused chunk buffer with the next ≤cap hit rows
            // (hand-rolled chunking keeps the hot loop allocation-free).
            self.chunk_buf.clear();
            while self.chunk_buf.len() < cap {
                match ones.next() {
                    Some(row) => self.chunk_buf.push(row),
                    None => break,
                }
            }
            if self.chunk_buf.is_empty() {
                break;
            }
            let chunk_len = self.chunk_buf.len();
            self.inputs_buf.clear();
            for i in 0..chunk_len {
                self.attr_buf.read(4);
                let v = input(self.chunk_buf[i]);
                self.inputs_buf.push(v);
            }
            // Only `out_col` is consumed, so the device restricts the
            // functional evaluation to that line (the burst is still billed
            // in full, and the all-lines path runs under noise or faults).
            let v = if self.remap_active {
                // Activate the physical rows behind the logical slots.
                self.phys_buf.clear();
                for i in 0..chunk_len {
                    self.phys_buf.push(self.log2phys[self.chunk_buf[i]]);
                }
                self.mac.mac_col(
                    MacDirection::RowsToColumns,
                    &self.phys_buf,
                    &self.inputs_buf,
                    out_col,
                )?
            } else {
                self.mac.mac_col(
                    MacDirection::RowsToColumns,
                    &self.chunk_buf,
                    &self.inputs_buf,
                    out_col,
                )?
            };
            self.rows_per_mac.record(chunk_len);
            let ns = self.config.energy.mac_op_ns;
            self.current
                .add_phase(Phase::MacGather, ns, self.record_ops);
            self.trace_op(Phase::MacGather, ns);
            self.compute_items = self.compute_items.saturating_add(chunk_len as u64);
            if first {
                total = v;
                first = false;
            } else {
                total = self.sfu_add_u64(total, v);
            }
        }
        // gaasx-lint: end-hot
        Ok(total)
    }

    /// SpMV-add propagation through the transposed array: activates the
    /// given columns with the given inputs and returns, for each hit row,
    /// `Σ inputs[i] × cell[row][cols[i]]`. Hit rows are consumed in ≤16-row
    /// groups (the ADC read-out cap), one MAC burst per group.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn propagate_rows(
        &mut self,
        hits: &HitVector,
        cols: &[usize],
        col_inputs: &[u32],
    ) -> Result<Vec<(usize, u64)>, CoreError> {
        let mut results = Vec::new();
        self.propagate_rows_into(hits, cols, col_inputs, &mut results)?;
        Ok(results)
    }

    /// [`propagate_rows`](Self::propagate_rows) into a caller-owned buffer
    /// so hot loops allocate nothing. `results` is cleared first.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn propagate_rows_into(
        &mut self,
        hits: &HitVector,
        cols: &[usize],
        col_inputs: &[u32],
        results: &mut Vec<(usize, u64)>,
    ) -> Result<(), CoreError> {
        results.clear();
        // No hits means no MAC burst — and no attribute fetch either: the
        // controller only stages the column inputs once a burst is issued.
        if !hits.any() {
            return Ok(());
        }
        results.reserve(hits.count());
        self.attr_buf.read(4 * col_inputs.len() as u64);
        let cap = self.config.mac_geometry.max_active_rows;
        let mut ones = hits.iter_ones();
        // gaasx-lint: hot
        loop {
            self.chunk_buf.clear();
            while self.chunk_buf.len() < cap {
                match ones.next() {
                    Some(row) => self.chunk_buf.push(row),
                    None => break,
                }
            }
            if self.chunk_buf.is_empty() {
                break;
            }
            let chunk_len = self.chunk_buf.len();
            // Restricted read-out: only this chunk's (physical) rows are
            // evaluated — billing still covers the full burst, so stats,
            // energy, and modeled time match the full-evaluation path.
            self.lines_buf.clear();
            for &row in &self.chunk_buf {
                self.lines_buf.push(if self.remap_active {
                    self.log2phys[row]
                } else {
                    row
                });
            }
            self.mac.mac_lines_into(
                MacDirection::ColumnsToRows,
                cols,
                col_inputs,
                &self.lines_buf,
                &mut self.mac_out,
            )?;
            self.rows_per_mac.record(chunk_len);
            let ns = self.config.energy.mac_op_ns;
            self.current
                .add_phase(Phase::MacPropagate, ns, self.record_ops);
            self.trace_op(Phase::MacPropagate, ns);
            self.compute_items = self.compute_items.saturating_add(chunk_len as u64);
            for (i, &row) in self.chunk_buf.iter().enumerate() {
                results.push((row, self.mac_out[i]));
            }
        }
        // gaasx-lint: end-hot
        Ok(())
    }

    /// Writes one row of the auxiliary (vertex-attribute) MAC crossbar —
    /// used by collaborative filtering to hold feature matrices. Counted as
    /// data loading.
    ///
    /// # Errors
    ///
    /// Propagates device errors for bad rows or codes.
    pub fn write_aux_row(&mut self, row: usize, codes: &[u32]) -> Result<(), CoreError> {
        self.aux_mac.write_row(row, codes)?;
        let cost = self.config.energy.row_program_ns(codes.len());
        if self.in_block {
            self.current.program_ns += cost;
        } else {
            self.extra_ns += cost;
            self.extra_phase_ns[Phase::LoadBlock.index()] += cost;
        }
        self.trace_op(Phase::LoadBlock, cost);
        Ok(())
    }

    /// Re-materializes an auxiliary row already loaded (and charged) this
    /// pass — the functional working array is multiplexed over the many
    /// physical banks holding attribute data, so this records no device
    /// activity. Charge the actual loading via [`Engine::write_aux_row`] or
    /// [`Engine::load_aux_rows_parallel`].
    ///
    /// # Errors
    ///
    /// Propagates device validation errors.
    pub fn preload_aux_row(&mut self, row: usize, codes: &[u32]) -> Result<(), CoreError> {
        self.aux_mac.preload_row(row, codes)?;
        Ok(())
    }

    /// Charges the loading of `rows` attribute rows of `values_per_row`
    /// logical values each, distributed across the banks of the current
    /// wave: full programming energy, but wall time divided by the bank
    /// count (each bank programs its share concurrently). Used for the
    /// per-shard feature-matrix loading of collaborative filtering
    /// (paper §IV: "The feature vectors of users and items corresponding to
    /// the range of vertex IDs are loaded into different MAC crossbars").
    pub fn load_aux_rows_parallel(&mut self, rows: usize, values_per_row: usize) {
        self.extra_aux_row_writes = self.extra_aux_row_writes.saturating_add(rows as u64);
        self.extra_aux_cells = self
            .extra_aux_cells
            .saturating_add((rows * values_per_row * self.config.mac_geometry.slices) as u64);
        let ns = rows as f64 * self.config.energy.row_program_ns(values_per_row)
            / self.config.num_banks.max(1) as f64;
        self.add_compute(Phase::LoadBlock, ns);
        self.phase_counts[Phase::LoadBlock.index()] =
            self.phase_counts[Phase::LoadBlock.index()].saturating_add(1);
        let start = self.cursor_ns;
        self.cursor_ns += ns;
        if self.tracer.enabled() {
            self.tracer
                .span(Phase::LoadBlock, start.ns())
                .attr("aux_rows", rows)
                .attr("values_per_row", values_per_row)
                .end((start + ns).ns());
        }
    }

    /// MAC over the auxiliary crossbar, rows-to-columns direction.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn aux_mac_rows(
        &mut self,
        active_rows: &[usize],
        inputs: &[u32],
    ) -> Result<Vec<u64>, CoreError> {
        let out = self
            .aux_mac
            .mac(MacDirection::RowsToColumns, active_rows, inputs)?;
        self.rows_per_mac.record(active_rows.len().max(1));
        let ns = self.config.energy.mac_op_ns;
        self.add_compute(Phase::MacGather, ns);
        self.trace_op(Phase::MacGather, ns);
        self.compute_items = self.compute_items.saturating_add(active_rows.len() as u64);
        Ok(out)
    }

    /// MAC over the auxiliary crossbar, columns-to-rows direction.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn aux_mac_cols(
        &mut self,
        active_cols: &[usize],
        inputs: &[u32],
    ) -> Result<Vec<u64>, CoreError> {
        let out = self
            .aux_mac
            .mac(MacDirection::ColumnsToRows, active_cols, inputs)?;
        self.rows_per_mac.record(active_cols.len().max(1));
        let ns = self.config.energy.mac_op_ns;
        self.add_compute(Phase::MacPropagate, ns);
        self.trace_op(Phase::MacPropagate, ns);
        self.compute_items = self.compute_items.saturating_add(active_cols.len() as u64);
        Ok(out)
    }

    fn add_compute(&mut self, phase: Phase, ns: Nanos) {
        if self.in_block {
            self.current.add_phase(phase, ns, self.record_ops);
        } else {
            self.extra_ns += ns;
            self.extra_phase_ns[phase.index()] += ns;
        }
    }

    fn sfu_cost(&mut self) {
        let ns = self.config.energy.sfu_op_ns / SFU_LANES;
        self.add_compute(Phase::Sfu, ns);
        self.trace_op(Phase::Sfu, ns);
    }

    /// SFU scalar add.
    pub fn sfu_add(&mut self, a: f64, b: f64) -> f64 {
        self.sfu_cost();
        self.sfu.add(a, b)
    }

    fn sfu_add_u64(&mut self, a: u64, b: u64) -> u64 {
        self.sfu_cost();
        self.sfu.add_u64(a, b)
    }

    /// SFU scalar multiply.
    pub fn sfu_mul(&mut self, a: f64, b: f64) -> f64 {
        self.sfu_cost();
        self.sfu.mul(a, b)
    }

    /// SFU scalar minimum.
    pub fn sfu_min(&mut self, a: f64, b: f64) -> f64 {
        self.sfu_cost();
        self.sfu.min(a, b)
    }

    /// SFU scalar compare.
    pub fn sfu_less_than(&mut self, a: f64, b: f64) -> bool {
        self.sfu_cost();
        self.sfu.less_than(a, b)
    }

    /// Reads `bytes` of vertex attributes from the on-chip attribute buffer.
    pub fn attr_read(&mut self, bytes: u64) {
        self.attr_buf.read(bytes);
    }

    /// Writes `bytes` of vertex attributes to the on-chip attribute buffer.
    pub fn attr_write(&mut self, bytes: u64) {
        self.attr_buf.write(bytes);
    }

    /// Writes `bytes` of results to the output buffer.
    pub fn output_write(&mut self, bytes: u64) {
        self.output_buf.write(bytes);
    }

    /// Closes the current block, committing its costs to the wave schedule.
    pub fn end_block(&mut self) {
        if self.in_block {
            self.costs.push(std::mem::take(&mut self.current));
            self.in_block = false;
            // Cached vectors survive for future re-loads of the same block
            // content; only the live registration ends with the block.
            self.memo.end_block();
        }
    }

    /// Drains every committed block cost (closing any open block first).
    /// The sharded layer calls this on worker engines after each shard so
    /// the costs can be re-appended to the primary engine in canonical
    /// shard-stream order — which is what makes the merged wave schedule
    /// bit-identical to a serial run.
    pub(crate) fn take_costs(&mut self) -> Vec<BlockCost> {
        self.end_block();
        std::mem::take(&mut self.costs)
    }

    /// Appends block costs drained from a worker engine, preserving order.
    pub(crate) fn append_costs(&mut self, costs: impl IntoIterator<Item = BlockCost>) {
        debug_assert!(!self.in_block, "close the primary's open block first");
        self.costs.extend(costs);
    }

    /// Absorbs the functional activity of a sibling worker engine: device
    /// stats, SFU counters, buffer traffic, the rows-per-MAC histogram,
    /// phase tallies, and out-of-block extras. Block costs travel
    /// separately — in canonical stream order — via
    /// [`Engine::take_costs`] / [`Engine::append_costs`].
    pub(crate) fn absorb_functional(&mut self, worker: &Engine) {
        debug_assert!(
            !worker.in_block && worker.costs.is_empty(),
            "drain worker costs before absorbing"
        );
        self.cam.merge_stats(worker.cam.stats());
        self.mac.merge_stats(worker.mac.stats());
        self.aux_mac.merge_stats(worker.aux_mac.stats());
        self.cam.merge_fault_stats(worker.cam.fault_stats());
        self.mac.merge_fault_stats(worker.mac.fault_stats());
        self.faults.merge(&worker.faults);
        self.sfu.merge(&worker.sfu);
        self.input_buf.merge(&worker.input_buf);
        self.output_buf.merge(&worker.output_buf);
        self.attr_buf.merge(&worker.attr_buf);
        self.rows_per_mac.merge(&worker.rows_per_mac);
        for (acc, v) in self.phase_counts.iter_mut().zip(worker.phase_counts.iter()) {
            *acc = acc.saturating_add(*v);
        }
        self.compute_items = self.compute_items.saturating_add(worker.compute_items);
        self.extra_aux_row_writes = self
            .extra_aux_row_writes
            .saturating_add(worker.extra_aux_row_writes);
        self.extra_aux_cells = self.extra_aux_cells.saturating_add(worker.extra_aux_cells);
        self.extra_ns += worker.extra_ns;
        for (acc, v) in self
            .extra_phase_ns
            .iter_mut()
            .zip(worker.extra_phase_ns.iter())
        {
            *acc += *v;
        }
    }

    /// Total useful edge computations performed so far.
    pub fn compute_items(&self) -> u64 {
        self.compute_items
    }

    /// Sets (or clears) the per-query modeled-time budget, in functional
    /// serial nanoseconds of work performed by *this* engine.
    ///
    /// The budget is checked cooperatively at every
    /// [`load_block`](Engine::load_block) — the natural quantum of GaaS-X
    /// work — so a query that exceeds it fails at the next block boundary
    /// with [`CoreError::Cancelled`] rather than mid-block. The check
    /// reads the monotone functional cursor, which survives the sharded
    /// layer's per-shard cost draining; [`reset_accounting`] rewinds the
    /// cursor so each query on a resident engine gets a fresh budget.
    ///
    /// [`reset_accounting`]: Engine::reset_accounting
    pub fn set_deadline(&mut self, deadline: Option<Nanos>) {
        self.deadline_ns = deadline;
    }

    /// The active per-query modeled-time budget, if any.
    pub fn deadline(&self) -> Option<Nanos> {
        self.deadline_ns
    }

    /// Cooperative cancellation checkpoint: fails once the functional
    /// time cursor has passed the configured deadline.
    fn check_deadline(&self) -> Result<(), CoreError> {
        if let Some(deadline) = self.deadline_ns {
            if self.cursor_ns > deadline {
                return Err(CoreError::Cancelled {
                    detail: format!(
                        "modeled time {} ns exceeds the {} ns deadline at a block boundary",
                        self.cursor_ns, deadline
                    ),
                    report: None,
                });
            }
        }
        Ok(())
    }

    /// Clears every per-run accounting accumulator so a resident engine
    /// can serve its next query with a clean report, while leaving device
    /// state in place: programmed CAM/MAC contents, endurance wear maps,
    /// transient fault RNG streams, spare-row remappings, and warm search
    /// memos all survive. The deadline is cleared (it is per-query).
    pub fn reset_accounting(&mut self) {
        self.costs.clear();
        self.current = BlockCost::default();
        self.in_block = false;
        self.extra_ns = Nanos::ZERO;
        self.extra_phase_ns = [Nanos::ZERO; 7];
        self.phase_counts = [0; 7];
        self.compute_items = 0;
        self.extra_aux_row_writes = 0;
        self.extra_aux_cells = 0;
        self.cursor_ns = Nanos::ZERO;
        self.deadline_ns = None;
        self.faults = FaultReport::default();
        self.rows_per_mac = Histogram::new(self.config.mac_geometry.max_active_rows);
        self.sfu.reset();
        self.input_buf.reset();
        self.output_buf.reset();
        self.attr_buf.reset();
        self.cam.reset_stats();
        self.mac.reset_stats();
        self.aux_mac.reset_stats();
        self.cam.reset_fault_stats();
        self.mac.reset_fault_stats();
    }

    /// Captures the endurance wear accumulated in the CAM/MAC banks, for
    /// carry-over into a replacement engine on the same modeled bank.
    pub fn wear_snapshot(&self) -> WearSnapshot {
        WearSnapshot {
            cam_rows: self.cam.fault_wear().unwrap_or_default().to_vec(),
            mac_cells: self.mac.fault_wear().unwrap_or_default().to_vec(),
        }
    }

    /// Restores a wear snapshot taken from a previous incarnation of the
    /// same bank (no-op on geometry mismatch or when faults are off).
    pub fn restore_wear(&mut self, snapshot: &WearSnapshot) {
        self.cam.restore_fault_wear(&snapshot.cam_rows);
        self.mac.restore_fault_wear(&snapshot.mac_cells);
    }

    /// Per-phase busy totals (functional serial time per phase) over all
    /// committed blocks plus the out-of-block extras. `LoadBlock` busy is
    /// each block's stream time plus its row-programming time.
    fn phase_busy_ns(&self) -> [Nanos; 7] {
        let mut busy = self.extra_phase_ns;
        for b in &self.costs {
            busy[Phase::LoadBlock.index()] += self.config.stream_ns(b.stream_bytes) + b.program_ns;
            for (acc, ns) in busy.iter_mut().zip(b.compute_phase_ns.iter()) {
                *acc += *ns;
            }
        }
        busy
    }

    /// Replays the block schedule, emitting one [`Phase::Dispatch`] span
    /// per block with its bank assignment on the *scheduled* time axis
    /// (unlike operation spans, which live on the serial functional axis).
    fn emit_dispatch_events(&self) {
        if !self.tracer.enabled() {
            return;
        }
        let banks = self.config.num_banks.max(1);
        match self.config.scheduler {
            SchedulePolicy::Waves => {
                let mut clock = PipelineClock::new();
                for (w, wave) in self.costs.chunks(banks).enumerate() {
                    let stream_ns: Nanos = wave
                        .iter()
                        .map(|b| self.config.stream_ns(b.stream_bytes))
                        .sum();
                    let program_ns = wave
                        .iter()
                        .map(|b| b.program_ns)
                        .fold(Nanos::ZERO, Nanos::max);
                    let compute_ns = wave
                        .iter()
                        .map(|b| b.pipelined_compute_ns())
                        .fold(Nanos::ZERO, Nanos::max);
                    let done = clock.advance(stream_ns.max(program_ns).ns(), compute_ns.ns());
                    // Within a wave, bank = position; the span covers the
                    // bank's occupancy (program + compute) aligned to the
                    // wave's compute window.
                    let compute_start = done - compute_ns.ns();
                    for (i, b) in wave.iter().enumerate() {
                        self.tracer
                            .span(
                                Phase::Dispatch,
                                (compute_start - b.program_ns.ns()).max(0.0),
                            )
                            .bank(i as u32)
                            .attr("block", w * banks + i)
                            .attr("wave", w)
                            .end(compute_start + b.pipelined_compute_ns().ns());
                    }
                }
            }
            SchedulePolicy::EventDriven => {
                let mut sched = BankScheduler::new(banks);
                for (idx, b) in self.costs.iter().enumerate() {
                    let d = sched.dispatch(
                        self.config.stream_ns(b.stream_bytes),
                        b.program_ns,
                        b.pipelined_compute_ns(),
                    );
                    self.tracer
                        .span(Phase::Dispatch, d.start_ns.ns())
                        .bank(d.bank)
                        .attr("block", idx)
                        .end(d.done_ns.ns());
                }
            }
        }
    }

    /// Lays one block's occupancy on its bank's tracks: a single load
    /// interval (stream + row programming, the same one-term sum the
    /// accounting fold uses) ending where compute starts, then the
    /// per-operation compute ledger replayed through a fresh [`PhasePipe`]
    /// — CAM searches land on [`SEARCH_LANE`] and everything else on
    /// [`COMPUTE_LANE`], each at the start the pipeline clock assigned, so
    /// the timeline shows the same overlap the makespan was billed for.
    /// Intervals are emitted in op order (the conservation fold consumes
    /// emission order, not placement), and each lane's starts are
    /// monotone (the pipe's unit clocks only move forward), so
    /// [`Timeline::push`]'s cursor clamp never shifts anything.
    fn push_block_intervals(
        &self,
        tl: &mut Timeline,
        bank: u32,
        b: &BlockCost,
        compute_start: Nanos,
        block: u32,
    ) {
        let load_ns = self.config.stream_ns(b.stream_bytes) + b.program_ns;
        tl.push(
            bank,
            LOAD_LANE,
            Phase::LoadBlock,
            compute_start - load_ns,
            load_ns,
            Some(block),
        );
        let mut pipe = PhasePipe::new();
        for &(phase, ns) in &b.ops {
            let (lane, start) = if phase == Phase::CamSearch {
                (SEARCH_LANE, pipe.search(ns.ns()))
            } else {
                (COMPUTE_LANE, pipe.compute(ns.ns()))
            };
            tl.push(
                bank,
                lane,
                phase,
                compute_start + Nanos::from_ns(start),
                ns,
                Some(block),
            );
        }
    }

    /// Replays the committed block schedule into a bank-occupancy
    /// [`Timeline`]: controller extras first (one interval per phase on
    /// the synthetic controller track), then every block's load and
    /// compute intervals placed by the same scheduler math that produced
    /// the makespan. Folding the result per phase reproduces
    /// [`Engine::phase_busy_ns`] bit-exactly.
    fn build_timeline(&self, makespan: Nanos) -> Timeline {
        let mut tl = Timeline::new(makespan);
        for phase in Phase::ALL {
            tl.push(
                CONTROLLER_BANK,
                LOAD_LANE,
                phase,
                Nanos::ZERO,
                self.extra_phase_ns[phase.index()],
                None,
            );
        }
        let banks = self.config.num_banks.max(1);
        match self.config.scheduler {
            SchedulePolicy::Waves => {
                let mut clock = PipelineClock::new();
                for (w, wave) in self.costs.chunks(banks).enumerate() {
                    let stream_ns: Nanos = wave
                        .iter()
                        .map(|b| self.config.stream_ns(b.stream_bytes))
                        .sum();
                    let program_ns = wave
                        .iter()
                        .map(|b| b.program_ns)
                        .fold(Nanos::ZERO, Nanos::max);
                    let compute_ns = wave
                        .iter()
                        .map(|b| b.pipelined_compute_ns())
                        .fold(Nanos::ZERO, Nanos::max);
                    let done = clock.advance(stream_ns.max(program_ns).ns(), compute_ns.ns());
                    let compute_start = Nanos::from_ns(done) - compute_ns;
                    for (i, b) in wave.iter().enumerate() {
                        self.push_block_intervals(
                            &mut tl,
                            i as u32,
                            b,
                            compute_start,
                            (w * banks + i) as u32,
                        );
                    }
                }
            }
            SchedulePolicy::EventDriven => {
                let mut sched = BankScheduler::new(banks);
                for (idx, b) in self.costs.iter().enumerate() {
                    let d = sched.dispatch(
                        self.config.stream_ns(b.stream_bytes),
                        b.program_ns,
                        b.pipelined_compute_ns(),
                    );
                    let compute_start = d.done_ns - b.pipelined_compute_ns();
                    self.push_block_intervals(&mut tl, d.bank, b, compute_start, idx as u32);
                }
            }
        }
        tl
    }

    /// How much of the fully serial wave makespan the pipelines hide:
    /// `(serial − pipelined) / serial`, 0 when there is nothing to
    /// overlap. The serial side sums unpipelined loads and *serial*
    /// per-block compute; the pipelined side double-buffers loads against
    /// the blocks' search/MAC-overlapped compute times, so the ratio
    /// captures both overlap mechanisms (and is positive even for a
    /// single-wave run whose blocks overlapped searches with MACs).
    /// Always evaluated on the wave model's stage times, regardless of
    /// the configured scheduler, so the ratio is comparable across
    /// scheduler policies.
    fn wave_overlap_ratio(&self) -> f64 {
        let banks = self.config.num_banks.max(1);
        let waves = self.costs.chunks(banks);
        let mut loads = Vec::with_capacity(waves.len());
        let mut serial_computes = Vec::with_capacity(waves.len());
        let mut piped_computes = Vec::with_capacity(waves.len());
        for wave in waves {
            let stream_ns: Nanos = wave
                .iter()
                .map(|b| self.config.stream_ns(b.stream_bytes))
                .sum();
            let program_ns = wave
                .iter()
                .map(|b| b.program_ns)
                .fold(Nanos::ZERO, Nanos::max);
            loads.push(stream_ns.max(program_ns).ns());
            serial_computes.push(
                wave.iter()
                    .map(|b| b.compute_ns)
                    .fold(Nanos::ZERO, Nanos::max)
                    .ns(),
            );
            piped_computes.push(
                wave.iter()
                    .map(|b| b.pipelined_compute_ns())
                    .fold(Nanos::ZERO, Nanos::max)
                    .ns(),
            );
        }
        let serial = serial_makespan(&loads, &serial_computes);
        if serial <= 0.0 {
            return 0.0;
        }
        (serial - pipelined_makespan(&loads, &piped_computes)) / serial
    }

    /// Assembles the final report: wave-scheduled makespan, energy
    /// breakdown, op summary, the rows-per-MAC histogram, and the
    /// per-phase makespan attribution.
    pub fn finish(
        &mut self,
        engine: &str,
        algorithm: &str,
        workload: &str,
        iterations: u32,
        num_edges: u64,
    ) -> RunReport {
        self.end_block();
        let makespan = self.makespan_ns();
        let cam_cells = self.cam.stats().cells_written;
        let mac_cells = self.mac.stats().cells_written
            + self.aux_mac.stats().cells_written
            + self.extra_aux_cells;
        let mut stats = XbarStats::new();
        stats.merge(self.cam.stats());
        stats.merge(self.mac.stats());
        stats.merge(self.aux_mac.stats());

        let e = &self.config.energy;
        let buffer_nj =
            self.input_buf.energy_nj() + self.output_buf.energy_nj() + self.attr_buf.energy_nj();
        let energy = EnergyBreakdown {
            mac_nj: (stats.mac_ops as f64 * e.mac_op_pj).to_nanojoules(),
            cam_nj: (stats.cam_searches as f64 * e.cam_search_pj).to_nanojoules(),
            // Write-verify read-backs bill to the write path: they guard
            // programming bursts, not MAC compute.
            write_nj: (mac_cells as f64 * e.cell_write_pj
                + cam_cells as f64 * e.cam_bit_write_pj
                + self.faults.verify_reads as f64 * e.verify_read_pj)
                .to_nanojoules(),
            sfu_nj: (self.sfu.total_ops() as f64 * e.sfu_op_pj).to_nanojoules(),
            buffer_nj,
            static_nj: e.static_energy_nj(makespan),
        };
        let ops = OpSummary {
            mac_ops: stats.mac_ops,
            cam_searches: stats.cam_searches,
            cells_written: stats.cells_written + self.extra_aux_cells,
            row_writes: stats.row_writes + self.extra_aux_row_writes,
            verify_reads: self.faults.verify_reads,
            sfu_ops: self.sfu.total_ops(),
            buffer_accesses: self.input_buf.accesses()
                + self.output_buf.accesses()
                + self.attr_buf.accesses(),
            compute_items: self.compute_items,
        };
        // Attribute the makespan to the five pipeline phases in proportion
        // to their busy time; the shares sum to `elapsed_ns` exactly.
        let busy = self.phase_busy_ns();
        let tallies: Vec<(Phase, Nanos, u64)> = Phase::ALL
            .iter()
            .filter(|&&p| p != Phase::Dispatch)
            .map(|&p| (p, busy[p.index()], self.phase_counts[p.index()]))
            .collect();
        let phases = attribute_makespan(makespan, &tallies);
        // Every report — single-engine or sharded (the sharded runner
        // funnels through the primary's `finish`) — must conserve the
        // makespan across the phase attribution, bit-for-bit.
        debug_assert!(
            phases.is_empty() || phases.iter().map(|p| p.sched_ns).sum::<Nanos>() == makespan,
            "phase attribution dropped schedule time: {} != {makespan}",
            phases.iter().map(|p| p.sched_ns).sum::<Nanos>(),
        );

        self.emit_dispatch_events();
        // Replay the schedule into a bank-occupancy timeline when some
        // sink wants it. The per-phase fold over the timeline must
        // conserve the accounting's busy attribution bit-for-bit — per
        // block the load collapses to the same one-term sum and the
        // compute ledger re-accumulates in issue order, so the folds are
        // term-by-term identical.
        let utilization = if self.record_ops {
            let tl = self.build_timeline(makespan);
            debug_assert!(
                tl.phase_busy_ns() == busy,
                "timeline phase fold diverged from accounting: {:?} != {busy:?}",
                tl.phase_busy_ns(),
            );
            for interval in tl.intervals() {
                self.tracer.emit_interval(interval);
            }
            Some(UtilizationReport::from_timeline(
                &tl,
                self.wave_overlap_ratio(),
            ))
        } else {
            None
        };
        if let Some(metrics) = self.tracer.metrics() {
            metrics.publish_op_summary(&ops);
            // Mirror the report's rows-per-MAC distribution into the
            // registry so sharded merges carry it losslessly.
            metrics
                .histogram("rows_per_mac")
                .lock()
                .merge(&self.rows_per_mac);
        }
        if self.fault_active {
            // Recovery counters publish once here (already merged across
            // sharded workers), not at event time: worker engines carry
            // null tracers, so event-time publication would undercount.
            self.tracer
                .counter_add("fault_verify_reads", self.faults.verify_reads);
            self.tracer
                .counter_add("fault_detected", self.faults.faults_detected);
            self.tracer
                .counter_add("fault_write_retries", self.faults.write_retries);
            self.tracer
                .counter_add("fault_row_remaps", self.faults.row_remaps);
            self.tracer
                .counter_add("fault_cam_double_checks", self.faults.cam_double_checks);
        }
        self.tracer.gauge_set("elapsed_ns", makespan.ns());
        self.tracer
            .gauge_set("energy_total_nj", energy.total_nj().nj());
        self.tracer.flush();

        let mut report = RunReport::new(engine, algorithm, workload);
        report.iterations = iterations;
        report.elapsed_ns = makespan;
        report.energy = energy;
        report.ops = ops;
        report.faults = self.faults;
        report.rows_per_mac = self.rows_per_mac.clone();
        report.num_edges = num_edges;
        report.phases = phases;
        report.utilization = utilization;
        report
    }

    /// The scheduled makespan of all blocks committed so far under the
    /// configured [`SchedulePolicy`].
    pub fn makespan_ns(&self) -> Nanos {
        let body = match self.config.scheduler {
            SchedulePolicy::Waves => {
                let mut clock = PipelineClock::new();
                for wave in self.costs.chunks(self.config.num_banks.max(1)) {
                    let stream_ns: Nanos = wave
                        .iter()
                        .map(|b| self.config.stream_ns(b.stream_bytes))
                        .sum();
                    let program_ns = wave
                        .iter()
                        .map(|b| b.program_ns)
                        .fold(Nanos::ZERO, Nanos::max);
                    let compute_ns = wave
                        .iter()
                        .map(|b| b.pipelined_compute_ns())
                        .fold(Nanos::ZERO, Nanos::max);
                    clock.advance(stream_ns.max(program_ns).ns(), compute_ns.ns());
                }
                Nanos::from_ns(clock.makespan())
            }
            SchedulePolicy::EventDriven => {
                let mut sched = BankScheduler::new(self.config.num_banks.max(1));
                for b in &self.costs {
                    sched.dispatch(
                        self.config.stream_ns(b.stream_bytes),
                        b.program_ns,
                        b.pipelined_compute_ns(),
                    );
                }
                sched.makespan()
            }
        };
        body + self.extra_ns
    }
}

/// Streams a graph as blocks of at most `block_size` edges, ordered by the
/// GridGraph-style shard layout (§II-B): the graph is partitioned into a
/// 16×16 interval grid and non-empty shards are visited in the requested
/// order, each chunked to the bank capacity.
///
/// # Errors
///
/// Returns a graph error if the graph has no vertices.
pub fn partition_for_streaming(
    graph: &CooGraph,
) -> Result<gaasx_graph::partition::GridPartition, GraphError> {
    gaasx_graph::partition::GridPartition::with_num_intervals(graph, 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaasx_graph::generators;
    use gaasx_sim::Nanojoules;
    use gaasx_xbar::Kernel;

    fn engine() -> Engine {
        Engine::new(GaasXConfig::small()).unwrap()
    }

    fn fig7_block(engine: &mut Engine) -> Block {
        let g = generators::paper_fig7_graph();
        let cells = |e: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[e.weight as u32, 1]);
        engine
            .load_block(g.edges(), CellLayout::PerEdge(&cells))
            .unwrap()
    }

    #[test]
    fn load_block_tracks_metadata() {
        let mut e = engine();
        let b = fig7_block(&mut e);
        assert_eq!(b.len(), 8);
        // Fig 7 graph has sources {1,2,3,4,5} (1-based) = {0,1,2,3,4}.
        assert_eq!(b.distinct_srcs().len(), 5);
        // Destinations are {2,3,4} (1-based).
        assert_eq!(b.distinct_dsts().len(), 3);
    }

    #[test]
    fn search_dst_matches_in_edges() {
        let mut e = engine();
        let b = fig7_block(&mut e);
        // Vertex 2 (1-based) = id 1 has in-edges from 1, 3, 4 (Fig 7).
        let hits = e.search_dst(VertexId::new(1));
        assert_eq!(hits.count(), 3);
        for row in hits.iter_ones() {
            assert_eq!(b.edge(row).dst, VertexId::new(1));
        }
    }

    #[test]
    fn search_src_matches_out_edges() {
        let mut e = engine();
        let b = fig7_block(&mut e);
        let hits = e.search_src(VertexId::new(4)); // vertex 5, out-edges to 3 and 4
        assert_eq!(hits.count(), 2);
        for row in hits.iter_ones() {
            assert_eq!(b.edge(row).src, VertexId::new(4));
        }
    }

    #[test]
    fn gather_accumulates_weights() {
        // The paper's worked example: accumulate incoming edge weights of
        // vertex 2 (1-based): 6 + 5 + 8 = 19.
        let mut e = engine();
        let _b = fig7_block(&mut e);
        let hits = e.search_dst(VertexId::new(1));
        let sum = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
        assert_eq!(sum, 19);
    }

    #[test]
    fn propagate_adds_scalar_to_weights() {
        // SSSP-style: dist(U)=10 plus each out-edge weight of vertex 5
        // (1-based): edges (5,3,6) and (5,4,7) -> sums 16 and 17.
        let mut e = engine();
        let b = fig7_block(&mut e);
        let hits = e.search_src(VertexId::new(4));
        let results = e.propagate_rows(&hits, &[0, 1], &[1, 10]).unwrap();
        let mut sums: Vec<(u32, u64)> = results
            .iter()
            .map(|&(row, sum)| (b.edge(row).dst.raw(), sum))
            .collect();
        sums.sort();
        assert_eq!(sums, vec![(2, 16), (3, 17)]);
    }

    #[test]
    fn chunking_splits_large_hit_vectors() {
        let mut e = engine();
        let g = generators::star_graph(40); // hub 0 -> 39 spokes
        let cells = |_: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[1, 1]);
        let _b = e
            .load_block(g.edges(), CellLayout::PerEdge(&cells))
            .unwrap();
        let hits = e.search_src(VertexId::new(0));
        assert_eq!(hits.count(), 39);
        let results = e.propagate_rows(&hits, &[0, 1], &[1, 0]).unwrap();
        assert_eq!(results.len(), 39);
        // 39 hits at a 16-row cap = 3 MAC bursts.
        let hist = e.rows_per_mac.counts();
        assert_eq!(hist[15], 2); // two full 16-row bursts
        assert_eq!(hist[6], 1); // one 7-row burst
    }

    #[test]
    fn block_capacity_enforced() {
        let mut e = engine();
        let g = generators::path_graph(200);
        let cells = |_: &Edge, c: &mut Vec<u32>| c.push(1);
        assert!(matches!(
            e.load_block(g.edges(), CellLayout::PerEdge(&cells)),
            Err(CoreError::InvalidInput(_))
        ));
    }

    #[test]
    fn preset_layout_skips_mac_writes() {
        let mut e = engine();
        e.preset_mac(1).unwrap();
        let g = generators::paper_fig2_graph();
        let _b = e.load_block(g.edges(), CellLayout::Preset).unwrap();
        let report = e.finish("t", "t", "t", 1, 10);
        // Only CAM cells were programmed: 10 edges × 2×128 TCAM devices.
        assert_eq!(report.ops.cells_written, 10 * 2 * 128);
    }

    #[test]
    fn stale_rows_do_not_match_after_reload() {
        let mut e = engine();
        let big = generators::star_graph(20);
        let cells = |_: &Edge, c: &mut Vec<u32>| c.push(1);
        let _b1 = e
            .load_block(big.edges(), CellLayout::PerEdge(&cells))
            .unwrap();
        let small = generators::path_graph(3); // edges (0,1), (1,2)
        let _b2 = e
            .load_block(small.edges(), CellLayout::PerEdge(&cells))
            .unwrap();
        // Searching src 0 must only match the one path edge, not stale star rows.
        assert_eq!(e.search_src(VertexId::new(0)).count(), 1);
    }

    #[test]
    fn makespan_pipelines_waves() {
        let mut e = engine();
        let g = generators::paper_fig7_graph();
        let cells = |e: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[e.weight as u32, 1]);
        for _ in 0..3 {
            let _b = e
                .load_block(g.edges(), CellLayout::PerEdge(&cells))
                .unwrap();
            let hits = e.search_dst(VertexId::new(1));
            let _ = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
        }
        e.end_block();
        let m = e.makespan_ns().ns();
        assert!(m > 0.0);
        // All three blocks fit one wave of 8 banks: load is the max program
        // time (8 edges × one CAM/MAC row pair each, the 2-value MAC row
        // pacing) vs serial stream; compute is one search + one MAC.
        let row_ns = e.config().energy.row_program_ns(2).ns();
        let expected_load = (8.0 * row_ns).max(3.0 * e.config().stream_ns(8 * 12).ns());
        let expected_compute = 4.0 + 30.0 + 2.0 * (4.0 + 30.0 + 1.0 / 16.0);
        assert!(m >= expected_load);
        assert!(m <= expected_load + expected_compute + 1.0);
    }

    #[test]
    fn event_driven_scheduler_is_close_to_the_wave_model() {
        let run = |policy: SchedulePolicy| -> f64 {
            let mut e = Engine::new(GaasXConfig {
                num_banks: 4,
                scheduler: policy,
                ..GaasXConfig::small()
            })
            .unwrap();
            let g =
                generators::rmat(&generators::RmatConfig::new(1 << 7, 2000).with_seed(3)).unwrap();
            let cells =
                |edge: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[edge.weight as u32, 1]);
            let mut hits = HitVector::new(0);
            for chunk in g.edges().chunks(128) {
                let block = e.load_block(chunk, CellLayout::PerEdge(&cells)).unwrap();
                for &dst in block.distinct_dsts() {
                    e.search_dst_into(dst, &mut hits);
                    let _ = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
                }
            }
            e.end_block();
            e.makespan_ns().ns()
        };
        let waves = run(SchedulePolicy::Waves);
        let des = run(SchedulePolicy::EventDriven);
        assert!(waves > 0.0 && des > 0.0);
        let ratio = des / waves;
        assert!((0.4..=2.0).contains(&ratio), "des {des} vs waves {waves}");
    }

    #[test]
    fn report_has_energy_and_ops() {
        let mut e = engine();
        let _b = fig7_block(&mut e);
        let hits = e.search_dst(VertexId::new(1));
        let _ = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
        let r = e.finish("gaasx", "test", "fig7", 1, 8);
        assert!(r.elapsed_ns > Nanos::ZERO);
        assert!(r.energy.total_nj() > Nanojoules::ZERO);
        assert!(r.energy.write_nj > Nanojoules::ZERO);
        assert_eq!(r.ops.cam_searches, 1);
        assert_eq!(r.ops.mac_ops, 1);
        assert_eq!(r.ops.compute_items, 3);
        assert_eq!(r.rows_per_mac.total(), 1);
    }

    #[test]
    fn preload_aux_is_functional_but_free() {
        let mut e = engine();
        e.preload_aux_row(3, &[7, 8, 9]).unwrap();
        let out = e.aux_mac_rows(&[3], &[2]).unwrap();
        assert_eq!(&out[..3], &[14, 16, 18]);
        let r = e.finish("t", "t", "t", 1, 0);
        // One MAC op counted; zero cells charged for the preload.
        assert_eq!(r.ops.mac_ops, 1);
        assert_eq!(r.ops.cells_written, 0);
    }

    #[test]
    fn parallel_aux_loading_charges_energy_and_scaled_time() {
        let mut a = Engine::new(GaasXConfig::small()).unwrap();
        let mut b = Engine::new(GaasXConfig {
            num_banks: 1,
            ..GaasXConfig::small()
        })
        .unwrap();
        a.load_aux_rows_parallel(80, 16);
        b.load_aux_rows_parallel(80, 16);
        let ra = a.finish("t", "t", "t", 1, 0);
        let rb = b.finish("t", "t", "t", 1, 0);
        // Same energy (same cells programmed)...
        assert_eq!(ra.ops.cells_written, rb.ops.cells_written);
        assert_eq!(ra.ops.cells_written, 80 * 16 * 8);
        assert!((ra.energy.write_nj.nj() - rb.energy.write_nj.nj()).abs() < 1e-9);
        // ...but 8 banks load 8× faster than 1 bank.
        assert!((rb.elapsed_ns / ra.elapsed_ns - 8.0).abs() < 1e-6);
    }

    #[test]
    fn preload_validates_like_write() {
        let mut e = engine();
        assert!(e.preload_aux_row(500, &[1]).is_err());
        assert!(e.preload_aux_row(0, &[0x1_0000]).is_err());
    }

    #[test]
    fn phases_attribute_the_full_makespan() {
        let mut e = engine();
        let _b = fig7_block(&mut e);
        let hits = e.search_dst(VertexId::new(1));
        let _ = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
        let r = e.finish("gaasx", "t", "t", 1, 8);
        assert!(!r.phases.is_empty());
        // Exact: the largest share absorbs the rounding residue.
        assert_eq!(r.phases_total_sched_ns(), r.elapsed_ns);
        assert!(r.phase(Phase::LoadBlock).unwrap().busy_ns > Nanos::ZERO);
        assert_eq!(r.phase(Phase::CamSearch).unwrap().count, 1);
        assert_eq!(r.phase(Phase::MacGather).unwrap().count, 1);
        // One chunk: no SFU accumulator adds, so no Sfu entry.
        assert!(r.phase(Phase::Sfu).is_none());
        assert!(r.phase(Phase::Dispatch).is_none());
    }

    #[test]
    fn tracer_spans_and_metrics_mirror_the_report() {
        use gaasx_sim::{AggregateSink, Tracer};
        use std::sync::Arc;
        let agg = Arc::new(AggregateSink::new());
        let mut e = engine();
        e.set_tracer(Tracer::with_sink(agg.clone()));
        assert!(e.tracer().enabled());
        let _b = fig7_block(&mut e);
        let hits = e.search_dst(VertexId::new(1));
        let _ = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
        let r = e.finish("gaasx", "t", "t", 1, 8);
        // Span busy time per phase agrees with the engine's own tally.
        let rollup = agg.phase_rollup();
        for phase in [Phase::CamSearch, Phase::MacGather] {
            let seen = rollup.iter().find(|p| p.phase == phase).unwrap();
            let want = r.phase(phase).unwrap();
            assert!(
                (seen.busy_ns.ns() - want.busy_ns.ns()).abs() < 1e-9,
                "{phase:?}: {} vs {}",
                seen.busy_ns,
                want.busy_ns
            );
            assert_eq!(seen.count, want.count);
        }
        // The dispatch replay bound the block to a bank.
        assert!(!agg.bank_rollup().is_empty());
        // The metrics registry carries the canonical op counters.
        assert_eq!(e.tracer().metrics().unwrap().op_summary(), r.ops);
    }

    #[test]
    fn event_driven_dispatch_events_cover_all_banks() {
        use gaasx_sim::{AggregateSink, Tracer};
        use std::sync::Arc;
        let agg = Arc::new(AggregateSink::new());
        let mut e = Engine::new(GaasXConfig {
            num_banks: 2,
            scheduler: SchedulePolicy::EventDriven,
            ..GaasXConfig::small()
        })
        .unwrap();
        e.set_tracer(Tracer::with_sink(agg.clone()));
        let g = generators::paper_fig7_graph();
        let cells = |e: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[e.weight as u32, 1]);
        for _ in 0..4 {
            let _b = e
                .load_block(g.edges(), CellLayout::PerEdge(&cells))
                .unwrap();
            let hits = e.search_dst(VertexId::new(1));
            let _ = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
        }
        let _ = e.finish("gaasx", "t", "t", 1, 8);
        let banks = agg.bank_rollup();
        assert_eq!(banks.len(), 2, "both banks saw blocks: {banks:?}");
        assert_eq!(banks.iter().map(|b| b.count).sum::<u64>(), 4);
    }

    #[test]
    fn empty_hits_cost_nothing_in_mac() {
        let mut e = engine();
        let _b = fig7_block(&mut e);
        let hits = e.search_dst(VertexId::new(0)); // vertex 1 has no in-edges
        assert_eq!(hits.count(), 0);
        let sum = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
        assert_eq!(sum, 0);
        let propagated = e.propagate_rows(&hits, &[0, 1], &[1, 5]).unwrap();
        assert!(propagated.is_empty());
        let r = e.finish("t", "t", "t", 1, 8);
        assert_eq!(r.ops.mac_ops, 0);
        // Baseline engine that only loads the block: the empty gather and
        // propagate must add no buffer traffic on top of the load (the
        // propagate used to charge an attribute-buffer read for its column
        // inputs even when the hit vector was empty).
        let mut base = engine();
        let _b = fig7_block(&mut base);
        let rb = base.finish("t", "t", "t", 1, 8);
        assert_eq!(r.ops.buffer_accesses, rb.ops.buffer_accesses);
    }

    #[test]
    fn preset_preserves_prior_mac_stats() {
        let mut e = engine();
        let _b = fig7_block(&mut e);
        let hits = e.search_dst(VertexId::new(1));
        let _ = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
        let before = e.mac.stats().clone();
        assert!(before.cells_written > 0);
        assert!(before.mac_ops > 0);
        // The preset used to probe with counted writes and then call
        // `reset_stats`, wiping every MAC counter accumulated so far.
        e.preset_mac(1).unwrap();
        assert_eq!(e.mac.stats(), &before);
    }

    #[test]
    fn sfu_add_u64_saturates_instead_of_overflowing() {
        let mut e = engine();
        // `u64::MAX + 5` panics in debug builds with a plain `+`.
        assert_eq!(e.sfu_add_u64(u64::MAX, 5), u64::MAX);
        assert_eq!(e.sfu_add_u64(7, 8), 15);
        assert_eq!(e.sfu.breakdown().0, 2, "both adds are charged");
    }

    #[test]
    fn absorb_functional_matches_local_activity() {
        // Running a workload on one engine must equal running it on a
        // worker and absorbing the worker into an idle primary.
        let run = |e: &mut Engine| {
            let _b = fig7_block(e);
            let hits = e.search_dst(VertexId::new(1));
            let _ = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
            e.attr_write(8);
        };
        let mut serial = engine();
        run(&mut serial);
        let want = serial.finish("t", "t", "t", 1, 8);

        let mut primary = engine();
        let mut worker = engine();
        run(&mut worker);
        let costs = worker.take_costs();
        primary.absorb_functional(&worker);
        primary.append_costs(costs);
        let got = primary.finish("t", "t", "t", 1, 8);

        assert_eq!(got.ops, want.ops);
        assert_eq!(got.elapsed_ns, want.elapsed_ns);
        assert_eq!(got.energy.total_nj(), want.energy.total_nj());
        assert_eq!(got.rows_per_mac, want.rows_per_mac);
    }

    use crate::config::RecoveryPolicy;
    use gaasx_xbar::FaultModel;

    fn faulty(fault: FaultModel, recovery: RecoveryPolicy) -> Engine {
        Engine::new(GaasXConfig {
            fault,
            recovery,
            ..GaasXConfig::small()
        })
        .unwrap()
    }

    /// One edge per slot with distinct src/dst keys and a weight-3 code —
    /// fills the whole block so positional stuck faults get exercised.
    fn full_block_edges(capacity: usize) -> Vec<Edge> {
        (0..capacity as u32)
            .map(|i| Edge::new(i, 1000 + i, 3.0))
            .collect()
    }

    #[test]
    fn recovery_policy_is_inert_without_faults() {
        let run = |e: &mut Engine| {
            let _b = fig7_block(e);
            let hits = e.search_dst(VertexId::new(1));
            e.gather_rows(&hits, &mut |_| 1, 0).unwrap()
        };
        let mut plain = engine();
        let mut guarded = faulty(FaultModel::none(), RecoveryPolicy::standard());
        assert_eq!(guarded.block_capacity(), plain.block_capacity());
        assert_eq!(run(&mut guarded), run(&mut plain));
        let want = plain.finish("t", "t", "t", 1, 8);
        let got = guarded.finish("t", "t", "t", 1, 8);
        assert_eq!(got.ops, want.ops);
        assert_eq!(got.elapsed_ns, want.elapsed_ns);
        assert_eq!(got.energy.total_nj(), want.energy.total_nj());
        assert!(got.faults.is_zero());
        assert_eq!(got.ops.verify_reads, 0);
    }

    #[test]
    fn write_verify_retries_recover_transient_faults() {
        let fault = FaultModel {
            write_fail_rate: 0.05,
            seed: 42,
            ..FaultModel::none()
        };
        let mut e = faulty(fault, RecoveryPolicy::standard());
        let g = generators::paper_fig7_graph();
        let cells = |edge: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[edge.weight as u32, 1]);
        for _ in 0..40 {
            let _b = e
                .load_block(g.edges(), CellLayout::PerEdge(&cells))
                .unwrap();
            let hits = e.search_dst(VertexId::new(1));
            // Every pass stays exact: 6 + 5 + 8 = 19 despite injected
            // transient programming failures.
            assert_eq!(e.gather_rows(&hits, &mut |_| 1, 0).unwrap(), 19);
        }
        let r = e.finish("t", "t", "t", 1, 8);
        // 40 blocks × 8 rows, one verify read per successful attempt.
        assert!(r.faults.verify_reads >= 320, "{:?}", r.faults);
        assert!(r.faults.faults_detected > 0, "{:?}", r.faults);
        assert!(r.faults.write_retries > 0, "{:?}", r.faults);
        assert_eq!(r.ops.verify_reads, r.faults.verify_reads);
        // Verify reads bill read-class energy to the write path.
        let e_model = &GaasXConfig::small().energy;
        let floor = (r.faults.verify_reads as f64 * e_model.verify_read_pj).to_nanojoules();
        assert!(r.energy.write_nj > floor);
    }

    #[test]
    fn stuck_rows_remap_and_translation_stays_correct() {
        let fault = FaultModel {
            cam_stuck_ber: 1e-3,
            mac_stuck_ber: 1e-3,
            seed: 7,
            ..FaultModel::none()
        };
        let mut e = faulty(fault, RecoveryPolicy::standard());
        assert_eq!(e.block_capacity(), 128 - 16);
        let edges = full_block_edges(e.block_capacity());
        let cells = |edge: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[edge.weight as u32, 1]);
        let b = e.load_block(&edges, CellLayout::PerEdge(&cells)).unwrap();
        for i in 0..edges.len() as u32 {
            // Each dst hits exactly one (possibly remapped) row, reported
            // at its logical slot with the correct stored weight.
            let hits = e.search_dst(VertexId::new(1000 + i));
            assert_eq!(hits.count(), 1, "dst {i}");
            assert_eq!(e.gather_rows(&hits, &mut |_| 1, 0).unwrap(), 3);
            let src_hits = e.search_src(VertexId::new(i));
            let res = e.propagate_rows(&src_hits, &[0], &[1]).unwrap();
            assert_eq!(res.len(), 1, "src {i}");
            assert_eq!(res[0].1, 3);
            assert_eq!(b.edge(res[0].0).src, VertexId::new(i));
        }
        let r = e.finish("t", "t", "t", 1, edges.len() as u64);
        assert!(
            r.faults.row_remaps > 0,
            "seed must exercise remapping: {:?}",
            r.faults
        );
        assert!(r.faults.verify_reads >= edges.len() as u64);
    }

    #[test]
    fn preset_audit_remaps_stuck_mac_rows() {
        let fault = FaultModel {
            mac_stuck_ber: 5e-4,
            seed: 5,
            ..FaultModel::none()
        };
        let mut e = faulty(fault, RecoveryPolicy::standard());
        e.preset_mac(1).unwrap();
        let edges = full_block_edges(e.block_capacity());
        let _b = e.load_block(&edges, CellLayout::Preset).unwrap();
        for i in 0..edges.len() as u32 {
            let hits = e.search_dst(VertexId::new(1000 + i));
            assert_eq!(hits.count(), 1, "dst {i}");
            // The preset-1 weight column survives through remapped rows.
            assert_eq!(e.gather_rows(&hits, &mut |_| 1, 0).unwrap(), 1);
        }
        let r = e.finish("t", "t", "t", 1, edges.len() as u64);
        assert!(
            r.faults.row_remaps > 0,
            "seed must exercise the audit: {:?}",
            r.faults
        );
    }

    #[test]
    fn exhausted_spares_surface_as_typed_device_fault() {
        let fault = FaultModel {
            cam_stuck_ber: 0.05,
            seed: 3,
            ..FaultModel::none()
        };
        // Detect-only: zero retries, zero spares — the first corrupted
        // row programming must fail loudly and typed, never panic.
        let mut e = faulty(fault, RecoveryPolicy::detect_only());
        assert_eq!(e.block_capacity(), 128, "no spares reserved");
        let edges = full_block_edges(e.block_capacity());
        let cells = |edge: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[edge.weight as u32, 1]);
        let err = e
            .load_block(&edges, CellLayout::PerEdge(&cells))
            .unwrap_err();
        assert!(
            matches!(err, CoreError::DeviceFault { report: None, .. }),
            "{err}"
        );
    }

    #[test]
    fn cam_double_check_masks_transient_upsets() {
        let fault = FaultModel {
            cam_upset_rate: 1.0, // every search glitches one row
            seed: 11,
            ..FaultModel::none()
        };
        let mut e = faulty(fault, RecoveryPolicy::standard());
        let b = fig7_block(&mut e);
        // Vertex 2 (1-based) has in-edges from rows storing dst=1; the
        // majority vote over three searches masks the per-search glitch.
        let hits = e.search_dst(VertexId::new(1));
        assert_eq!(hits.count(), 3);
        for row in hits.iter_ones() {
            assert_eq!(b.edge(row).dst, VertexId::new(1));
        }
        let r = e.finish("t", "t", "t", 1, 8);
        assert!(r.faults.cam_double_checks >= 1);
        // Three physical searches per logical one.
        assert_eq!(r.ops.cam_searches, 3);
    }

    #[test]
    fn timeline_conserves_phase_attribution_under_both_schedulers() {
        use gaasx_sim::TimelineSink;
        use std::sync::Arc;
        for policy in [SchedulePolicy::Waves, SchedulePolicy::EventDriven] {
            let sink = Arc::new(TimelineSink::new());
            let mut e = Engine::new(GaasXConfig {
                num_banks: 4,
                scheduler: policy,
                ..GaasXConfig::small()
            })
            .unwrap();
            e.set_tracer(Tracer::with_sink(sink.clone()));
            let g =
                generators::rmat(&generators::RmatConfig::new(1 << 7, 1200).with_seed(5)).unwrap();
            let cells =
                |edge: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[edge.weight as u32, 1]);
            let mut hits = HitVector::new(0);
            for chunk in g.edges().chunks(128) {
                let block = e.load_block(chunk, CellLayout::PerEdge(&cells)).unwrap();
                for &dst in block.distinct_dsts() {
                    e.search_dst_into(dst, &mut hits);
                    let _ = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
                }
            }
            // Some controller-side (out-of-block) work too, so the
            // synthetic bank shows.
            e.end_block();
            let _ = e.sfu_add(1.0, 2.0);
            let r = e.finish("t", "t", "t", 1, 1200);
            let util = r.utilization.as_ref().unwrap_or_else(|| {
                panic!("{policy:?}: interval-observing sink must attach a utilization report")
            });
            // Bit-exact conservation against the phase attribution.
            for p in &r.phases {
                assert_eq!(
                    util.phase_busy_ns[p.phase.index()],
                    p.busy_ns,
                    "{policy:?}: busy ns diverged for {:?}",
                    p.phase
                );
            }
            assert_eq!(util.makespan_ns, r.elapsed_ns);
            assert!(util.critical_bank.is_some());
            assert!((0.0..=1.0).contains(&util.pipeline_overlap_ratio));
            // The sink saw the same intervals, non-overlapping per track.
            let intervals = sink.take();
            assert!(!intervals.is_empty());
            let mut tracks: std::collections::BTreeMap<(u32, u32), Nanos> =
                std::collections::BTreeMap::new();
            for iv in &intervals {
                let cursor = tracks.entry((iv.bank, iv.lane)).or_insert(Nanos::ZERO);
                assert!(
                    iv.start_ns >= *cursor,
                    "{policy:?}: overlap on bank {} lane {}",
                    iv.bank,
                    iv.lane
                );
                *cursor = iv.start_ns + iv.dur_ns;
            }
            // Controller SFU work landed on the synthetic bank.
            assert!(intervals
                .iter()
                .any(|iv| iv.bank == gaasx_sim::CONTROLLER_BANK));
        }
    }

    #[test]
    fn untraced_runs_attach_no_utilization() {
        let mut e = engine();
        let _ = fig7_block(&mut e);
        let r = e.finish("t", "t", "t", 1, 8);
        assert!(r.utilization.is_none());
        // A null-sink tracer observes no intervals either.
        let mut e2 = engine();
        e2.set_tracer(Tracer::with_sink(std::sync::Arc::new(gaasx_sim::NullSink)));
        let _ = fig7_block(&mut e2);
        let r2 = e2.finish("t", "t", "t", 1, 8);
        assert!(r2.utilization.is_none());
    }

    #[test]
    fn auto_resolves_per_block_and_gates_the_memo_on_the_resolved_mode() {
        // Regression for the construction-time memo gate: with Auto (the
        // default) a single bank can mix Linear and Indexed blocks, and
        // only the Indexed ones may memoize. small() keeps the default
        // Auto mode and OnePerKey profile (resolution is kernel-invariant
        // — see `kernel_choice_never_perturbs_auto_resolution`).
        let mut e = Engine::new(GaasXConfig::small()).unwrap();
        assert_eq!(e.config().search_mode, SearchMode::Auto);

        // Dense block: 128 edges, all-distinct dsts → cost model picks
        // Indexed, which enables the memo for this block.
        let dense: Vec<Edge> = (0..128u32).map(|i| Edge::new(i, 1000 + i, 1.0)).collect();
        let b = e.load_block(&dense, CellLayout::Preset).unwrap();
        assert_eq!(e.resolved_search_mode(), SearchMode::Indexed);
        assert!(e.memo_active, "Indexed-resolved block must memoize");
        let first = e.search_dst(VertexId::new(1000));
        assert_eq!(first.count(), 1);
        // The replay path serves the repeat without touching the device's
        // index bookkeeping — same hits, device counter still advances.
        let searches_before = e.cam.stats().cam_searches;
        let again = e.search_dst(VertexId::new(1000));
        assert_eq!(again, first);
        assert_eq!(e.cam.stats().cam_searches, searches_before + 1);
        assert_eq!(b.distinct_dsts().len(), 128);

        // Degenerate block on the same bank: 100 edges, 2 distinct dsts →
        // 2 searches per visit never amortize an index build; the model
        // picks Linear and the memo must stay off.
        let skewed: Vec<Edge> = (0..100u32)
            .map(|i| Edge::new(i, 5000 + i % 2, 1.0))
            .collect();
        let _b2 = e.load_block(&skewed, CellLayout::Preset).unwrap();
        assert_eq!(e.resolved_search_mode(), SearchMode::Linear);
        assert!(!e.memo_active, "Linear-resolved block must not memoize");
        let hits = e.search_dst(VertexId::new(5000));
        assert_eq!(hits.count(), 50);
        // Repeated searches on the linear block stay correct too.
        assert_eq!(e.search_dst(VertexId::new(5000)), hits);

        // A third dense block flips back to Indexed with the memo alive.
        let dense2: Vec<Edge> = (0..128u32).map(|i| Edge::new(i, 7000 + i, 1.0)).collect();
        let _b3 = e.load_block(&dense2, CellLayout::Preset).unwrap();
        assert_eq!(e.resolved_search_mode(), SearchMode::Indexed);
        assert!(e.memo_active);
        assert_eq!(e.search_dst(VertexId::new(7003)).count(), 1);
    }

    #[test]
    fn fixed_modes_bypass_the_cost_model() {
        // A fixed config mode must never be second-guessed per block: the
        // degenerate 2-distinct-dst shape resolves Linear under Auto, but
        // an Indexed config keeps Indexed (and its memo).
        let skewed: Vec<Edge> = (0..100u32)
            .map(|i| Edge::new(i, 5000 + i % 2, 1.0))
            .collect();
        for fixed in [SearchMode::Linear, SearchMode::Indexed] {
            let mut e = Engine::new(GaasXConfig {
                search_mode: fixed,
                ..GaasXConfig::small()
            })
            .unwrap();
            let _b = e.load_block(&skewed, CellLayout::Preset).unwrap();
            assert_eq!(e.resolved_search_mode(), fixed);
            assert_eq!(e.memo_active, fixed == SearchMode::Indexed);
        }
    }

    #[test]
    fn frontier_profile_feeds_the_resolver() {
        // The same dense-dst block resolves differently by declared
        // profile: a dense sweep amortizes the index, a frontier
        // traversal (sqrt(D) expected searches) does not at paper depth.
        let scalar = || {
            Engine::new(GaasXConfig {
                kernel: Kernel::Scalar,
                ..GaasXConfig::small()
            })
            .unwrap()
        };
        let dense: Vec<Edge> = (0..128u32).map(|i| Edge::new(i, 1000 + i, 1.0)).collect();
        let mut e = scalar();
        e.set_search_profile(SearchProfile::Frontier);
        assert_eq!(e.search_profile(), SearchProfile::Frontier);
        let _b = e.load_block(&dense, CellLayout::Preset).unwrap();
        assert_eq!(e.resolved_search_mode(), SearchMode::Linear);

        let mut e2 = scalar();
        e2.set_search_profile(SearchProfile::OnePerKey);
        let _b = e2.load_block(&dense, CellLayout::Preset).unwrap();
        assert_eq!(e2.resolved_search_mode(), SearchMode::Indexed);
    }

    #[test]
    fn kernel_choice_never_perturbs_auto_resolution() {
        // BENCH_08 measured the same per-row winner under both kernels
        // (the fitted scan constant absorbs per-search overheads the
        // kernel cannot touch), so the calibration is kernel-invariant:
        // the default Packed engine must resolve exactly like a Scalar
        // one on both block shapes, memo gating included.
        let dense: Vec<Edge> = (0..128u32).map(|i| Edge::new(i, 1000 + i, 1.0)).collect();
        for kernel in [Kernel::Packed, Kernel::Scalar] {
            let mut e = Engine::new(GaasXConfig {
                kernel,
                ..GaasXConfig::small()
            })
            .unwrap();
            assert_eq!(e.config().kernel, kernel);
            let _b = e.load_block(&dense, CellLayout::Preset).unwrap();
            assert_eq!(e.resolved_search_mode(), SearchMode::Indexed, "{kernel:?}");
            assert!(e.memo_active, "{kernel:?}");
            assert_eq!(e.search_dst(VertexId::new(1000)).count(), 1);

            let mut f = Engine::new(GaasXConfig {
                kernel,
                ..GaasXConfig::small()
            })
            .unwrap();
            f.set_search_profile(SearchProfile::Frontier);
            let _b = f.load_block(&dense, CellLayout::Preset).unwrap();
            assert_eq!(f.resolved_search_mode(), SearchMode::Linear, "{kernel:?}");
            assert!(!f.memo_active, "{kernel:?}");
        }
    }

    #[test]
    fn deadline_cancels_at_the_next_block_boundary() {
        let mut e = engine();
        e.set_deadline(Some(Nanos::ZERO));
        assert_eq!(e.deadline(), Some(Nanos::ZERO));
        // The first block starts at cursor 0, which is not *past* the
        // budget — cooperative cancellation always lets the first quantum
        // run, mirroring how a deadline can only fire between blocks.
        let _b = fig7_block(&mut e);
        let g = generators::paper_fig7_graph();
        let cells = |e: &Edge, c: &mut Vec<u32>| c.extend_from_slice(&[e.weight as u32, 1]);
        let err = e
            .load_block(g.edges(), CellLayout::PerEdge(&cells))
            .unwrap_err();
        match err {
            CoreError::Cancelled { detail, report } => {
                assert!(detail.contains("deadline"), "{detail}");
                assert!(report.is_none(), "engine-level cancel carries no report");
            }
            other => panic!("expected Cancelled, got {other}"),
        }
        // Clearing the deadline resumes service on the same engine.
        e.set_deadline(None);
        assert!(e.load_block(g.edges(), CellLayout::PerEdge(&cells)).is_ok());
    }

    #[test]
    fn reset_accounting_gives_a_resident_engine_a_clean_bill() {
        let run_once = |e: &mut Engine| {
            let _b = fig7_block(e);
            let hits = e.search_dst(VertexId::new(1));
            let sum = e.gather_rows(&hits, &mut |_| 1, 0).unwrap();
            assert_eq!(sum, 19);
            e.finish("gaasx", "probe", "fig7", 1, 8)
        };
        let mut resident = engine();
        let first = run_once(&mut resident);
        resident.reset_accounting();
        let second = run_once(&mut resident);
        // The second query on the resident engine bills exactly like the
        // first: nothing from query 1 leaks into query 2's report.
        assert_eq!(first.ops, second.ops);
        assert_eq!(first.elapsed_ns, second.elapsed_ns);
        assert_eq!(first.energy, second.energy);
        assert_eq!(first.phases, second.phases);
        assert_eq!(first.faults, second.faults);
    }

    #[test]
    fn wear_snapshot_round_trips_across_engine_incarnations() {
        use gaasx_xbar::fault::FaultModel;
        let cfg = GaasXConfig {
            fault: FaultModel {
                seed: 9,
                endurance: 1_000_000,
                ..FaultModel::none()
            },
            ..GaasXConfig::small()
        };
        let mut e = Engine::new(cfg.clone()).unwrap();
        assert!(e.wear_snapshot().is_empty() || e.wear_snapshot().total_writes() == 0);
        let _b = fig7_block(&mut e);
        let snap = e.wear_snapshot();
        assert!(!snap.is_empty(), "endurance tracking is on");
        assert!(snap.total_writes() > 0, "programming pulses recorded");

        let mut replacement = Engine::new(cfg).unwrap();
        assert_eq!(replacement.wear_snapshot().total_writes(), 0);
        replacement.restore_wear(&snap);
        assert_eq!(replacement.wear_snapshot(), snap);

        // A fault-free engine has no wear to snapshot and ignores restores.
        let mut clean = engine();
        assert!(clean.wear_snapshot().is_empty());
        clean.restore_wear(&snap);
        assert!(clean.wear_snapshot().is_empty());
    }
}
