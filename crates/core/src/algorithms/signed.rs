//! Signed fixed-point encoding over dual-rail (positive/negative) columns.
//!
//! ReRAM cells hold non-negative conductances, but collaborative filtering
//! works on signed feature vectors and errors. The standard PIM remedy —
//! which GaaS-X inherits from the crossbar literature it builds on — is
//! *differential encoding*: a signed value `v` occupies a column pair, the
//! positive rail holding `max(v, 0)` and the negative rail `max(-v, 0)`.
//! A signed dot product then takes two analog passes whose difference the
//! SFU computes digitally:
//!
//! ```text
//! Σ aᵢbᵢ = (Σ a⁺b⁺ + a⁻b⁻) − (Σ a⁺b⁻ + a⁻b⁺)
//! ```

use gaasx_xbar::fixed::Quantizer;
use gaasx_xbar::XbarError;

/// Quantizer for signed values over a dual-rail code pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignedQuantizer {
    inner: Quantizer,
}

impl SignedQuantizer {
    /// Creates a signed quantizer covering `[-max_abs, max_abs]` with
    /// `bits`-bit rail codes.
    ///
    /// # Errors
    ///
    /// As [`Quantizer::for_max_value`].
    pub fn new(max_abs: f32, bits: u32) -> Result<Self, XbarError> {
        Ok(SignedQuantizer {
            inner: Quantizer::for_max_value(max_abs, bits)?,
        })
    }

    /// Quantization step.
    pub fn step(&self) -> f32 {
        self.inner.step()
    }

    /// Encodes a signed value as a `(positive, negative)` rail pair; at
    /// most one rail is nonzero.
    pub fn encode(&self, v: f32) -> (u32, u32) {
        if v >= 0.0 {
            (self.inner.encode(v), 0)
        } else {
            (0, self.inner.encode(-v))
        }
    }

    /// Decodes a rail pair back to a signed value.
    pub fn decode(&self, pos: u32, neg: u32) -> f32 {
        self.inner.decode(pos) - self.inner.decode(neg)
    }

    /// Decodes a signed product sum from the two analog passes of a
    /// dual-rail MAC: `like_sum` carries `a⁺b⁺ + a⁻b⁻`, `cross_sum` carries
    /// `a⁺b⁻ + a⁻b⁺`, and `other` is the quantizer of the second operand.
    pub fn decode_product_sum(
        &self,
        other: &SignedQuantizer,
        like_sum: u64,
        cross_sum: u64,
    ) -> f64 {
        (like_sum as f64 - cross_sum as f64) * f64::from(self.step()) * f64::from(other.step())
    }
}

/// Interleaves rail pairs into a dual-rail row layout:
/// `[p₀, n₀, p₁, n₁, ...]` — signed value `k` occupies columns `2k`
/// (positive rail) and `2k+1` (negative rail).
pub fn interleave_rails(pairs: &[(u32, u32)]) -> Vec<u32> {
    let mut out = Vec::with_capacity(pairs.len() * 2);
    for &(p, n) in pairs {
        out.push(p);
        out.push(n);
    }
    out
}

/// Encodes a signed slice directly into the dual-rail row layout.
pub fn encode_row(q: &SignedQuantizer, values: &[f32]) -> Vec<u32> {
    interleave_rails(&values.iter().map(|&v| q.encode(v)).collect::<Vec<_>>())
}

/// Builds the two input vectors for a dual-rail MAC against a signed
/// operand `b`: the *like* pass drives `(b⁺, b⁻)` onto the `(p, n)` column
/// pairs, the *cross* pass drives `(b⁻, b⁺)`.
pub fn dual_rail_inputs(q: &SignedQuantizer, b: &[f32]) -> (Vec<u32>, Vec<u32>) {
    let mut like = Vec::with_capacity(b.len() * 2);
    let mut cross = Vec::with_capacity(b.len() * 2);
    for &v in b {
        let (p, n) = q.encode(v);
        like.push(p);
        like.push(n);
        cross.push(n);
        cross.push(p);
    }
    (like, cross)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_splits_rails() {
        let q = SignedQuantizer::new(4.0, 16).unwrap();
        let (pp, pn) = q.encode(2.0);
        assert!(pp > 0 && pn == 0);
        let (np, nn) = q.encode(-2.0);
        assert!(np == 0 && nn > 0);
        // Opposite values decode to opposite magnitudes.
        assert!((q.decode(pp, pn) + q.decode(np, nn)).abs() < 1e-6);
    }

    #[test]
    fn decode_roundtrip() {
        let q = SignedQuantizer::new(8.0, 16).unwrap();
        for v in [-7.3f32, -0.001, 0.0, 0.5, 7.99] {
            let (p, n) = q.encode(v);
            assert!((q.decode(p, n) - v).abs() <= q.step() * 1.01, "{v}");
        }
    }

    #[test]
    fn product_sum_signs() {
        let qa = SignedQuantizer::new(1.0, 16).unwrap();
        let qb = SignedQuantizer::new(1.0, 16).unwrap();
        // a = [0.5, -0.5], b = [1.0 scaled.., ..]: emulate with codes.
        // like = a+b+ + a-b-, cross = a+b- + a-b+.
        let a = [0.5f32, -0.5];
        let b = [0.25f32, 0.25];
        let expect: f64 = a.iter().zip(&b).map(|(&x, &y)| f64::from(x * y)).sum();
        let (la, lb): (Vec<_>, Vec<_>) = (
            a.iter().map(|&v| qa.encode(v)).collect(),
            b.iter().map(|&v| qb.encode(v)).collect(),
        );
        let mut like = 0u64;
        let mut cross = 0u64;
        for ((ap, an), (bp, bn)) in la.iter().zip(&lb) {
            like += u64::from(ap * bp) + u64::from(an * bn);
            cross += u64::from(ap * bn) + u64::from(an * bp);
        }
        let got = qa.decode_product_sum(&qb, like, cross);
        assert!((got - expect).abs() < 1e-4, "{got} vs {expect}");
    }

    #[test]
    fn interleave_layout() {
        assert_eq!(interleave_rails(&[(1, 0), (0, 2)]), vec![1, 0, 0, 2]);
        let q = SignedQuantizer::new(1.0, 8).unwrap();
        let row = encode_row(&q, &[1.0, -1.0]);
        assert_eq!(row.len(), 4);
        assert!(row[0] > 0 && row[1] == 0 && row[2] == 0 && row[3] > 0);
    }

    #[test]
    fn dual_rail_inputs_swap_rails() {
        let q = SignedQuantizer::new(1.0, 8).unwrap();
        let (like, cross) = dual_rail_inputs(&q, &[0.5, -0.5]);
        assert_eq!(like.len(), 4);
        assert_eq!(like[0], cross[1]);
        assert_eq!(like[1], cross[0]);
        assert_eq!(like[2], cross[3]);
        assert_eq!(like[3], cross[2]);
    }
}
