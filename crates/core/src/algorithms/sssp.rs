//! Single-source shortest paths mapped to SpMV-add (paper §IV, Fig 9(b)).

use gaasx_graph::partition::TraversalOrder;
use gaasx_graph::{CooGraph, Edge, VertexId};
use gaasx_xbar::fixed::Quantizer;

use crate::algorithms::{AlgoRun, Algorithm, ShardableAlgorithm};
use crate::engine::{partition_for_streaming, CellLayout, Engine};
use crate::error::CoreError;
use crate::sharded::ShardRunner;

/// Largest distance encodable as a 16-bit MAC input code.
const MAX_ENCODABLE_DIST: f64 = 65_534.0;

/// SSSP on GaaS-X.
///
/// Per the paper's mapping: edge weights go to MAC column 0, a constant 1
/// to column 1. For each source vertex `U` with a finite distance, a CAM
/// search over the source field enables the out-edges, and the transposed
/// MAC computes `α·E_weight(U,V) + dist(U)·1` with `α = 1` per enabled row.
/// The SFU then takes `dist(V) = min(dist(V), ·)` (Equation 1). Supersteps
/// repeat (Bellman–Ford style) until no distance changes.
///
/// Weights are quantized with step 1, matching the integral-weight
/// workloads of the evaluation; distances above 65 534 cannot be encoded as
/// MAC inputs and stop propagating (a documented device precision limit).
///
/// The controller tracks which vertices changed distance in the previous
/// superstep (it already holds per-block vertex ranges as graph metadata,
/// §III-A) and skips loading blocks that contain no active source — the
/// same selective scheduling the single-machine frameworks GaaS-X adopts
/// its storage model from perform.
#[derive(Debug, Clone, PartialEq)]
pub struct Sssp {
    /// Start vertex.
    pub source: VertexId,
    /// Superstep cap; defaults to `u32::MAX` (the V−1 Bellman–Ford bound
    /// still applies).
    pub max_supersteps: u32,
}

impl Sssp {
    /// SSSP from the given source with no superstep cap.
    pub fn from_source(source: VertexId) -> Self {
        Sssp {
            source,
            max_supersteps: u32::MAX,
        }
    }
}

impl Algorithm for Sssp {
    type Input = CooGraph;
    type Output = Vec<f64>;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn input_edges(input: &CooGraph) -> u64 {
        input.num_edges() as u64
    }

    fn search_profile(&self) -> gaasx_xbar::SearchProfile {
        // Searches only active (relaxed-last-superstep) sources.
        gaasx_xbar::SearchProfile::Frontier
    }

    fn execute(
        &self,
        engine: &mut Engine,
        graph: &CooGraph,
    ) -> Result<AlgoRun<Vec<f64>>, CoreError> {
        self.execute_on(engine, graph)
    }
}

impl ShardableAlgorithm for Sssp {
    fn execute_on<R: ShardRunner>(
        &self,
        runner: &mut R,
        graph: &CooGraph,
    ) -> Result<AlgoRun<Vec<f64>>, CoreError> {
        let n = graph.num_vertices() as usize;
        if self.source.index() >= n {
            return Err(CoreError::InvalidInput(format!(
                "source {} out of range for {n} vertices",
                self.source
            )));
        }
        for e in graph.iter() {
            if e.weight < 0.0 {
                return Err(CoreError::InvalidInput(format!(
                    "negative edge weight on {e}; shortest paths require non-negative weights"
                )));
            }
        }
        let w_quant = Quantizer::new(1.0, runner.engine().weight_bits())?;
        let grid = partition_for_streaming(graph)?;
        let capacity = runner.engine().block_capacity();

        let mut dist = vec![f64::INFINITY; n];
        dist[self.source.index()] = 0.0;
        let mut active = vec![false; n];
        active[self.source.index()] = true;
        let mut supersteps = 0;
        let bound = (n as u32).saturating_sub(1).max(1);

        for _ in 0..bound.min(self.max_supersteps) {
            // Row-major shard streaming: sources of a shard are contiguous.
            // Each shard pass reads the superstep-start distances (Jacobi
            // snapshot) and emits `(dst, candidate)` relaxations; the
            // sequential reduce below takes the mins. The V−1 Bellman–Ford
            // bound holds for snapshot relaxation too.
            let dist_snapshot = &dist;
            let active_snapshot = &active;
            let candidates =
                runner.for_each_shard(&grid, TraversalOrder::RowMajor, |engine, shard| {
                    let mut cands: Vec<(u32, f64)> = Vec::new();
                    let mut hits = gaasx_xbar::HitVector::new(0);
                    let mut results: Vec<(usize, u64)> = Vec::new();
                    for chunk in shard.edges().chunks(capacity) {
                        if !chunk.iter().any(|e| active_snapshot[e.src.index()]) {
                            continue;
                        }
                        let cells = |e: &Edge, c: &mut Vec<u32>| {
                            c.extend_from_slice(&[w_quant.encode(e.weight), 1])
                        };
                        let block = engine.load_block(chunk, CellLayout::PerEdge(&cells))?;
                        for &src in block.distinct_srcs() {
                            if !active_snapshot[src.index()] {
                                continue;
                            }
                            let d = dist_snapshot[src.index()];
                            engine.attr_read(8);
                            if !d.is_finite() || d > MAX_ENCODABLE_DIST {
                                continue;
                            }
                            engine.search_src_into(src, &mut hits);
                            // α = 1 drives the weight column; dist(U) drives
                            // the ones column.
                            engine.propagate_rows_into(
                                &hits,
                                &[0, 1],
                                &[1, d.round() as u32],
                                &mut results,
                            )?;
                            for &(row, sum) in &results {
                                cands.push((block.edge(row).dst.raw(), sum as f64));
                            }
                        }
                    }
                    Ok(cands)
                })?;

            let engine = runner.engine();
            let mut next = vec![false; n];
            let mut changed = false;
            for cands in &candidates {
                for &(dst, cand) in cands {
                    let v = dst as usize;
                    if engine.sfu_less_than(cand, dist[v]) {
                        dist[v] = engine.sfu_min(cand, dist[v]);
                        engine.attr_write(8);
                        next[v] = true;
                        changed = true;
                    }
                }
            }
            supersteps += 1;
            if !changed {
                break;
            }
            active = next;
        }
        runner.engine().output_write(8 * n as u64);

        Ok(AlgoRun {
            output: dist,
            iterations: supersteps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaasXConfig;
    use gaasx_graph::generators;

    fn run(graph: &CooGraph, source: u32) -> Vec<f64> {
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        Sssp::from_source(VertexId::new(source))
            .execute(&mut engine, graph)
            .unwrap()
            .output
    }

    /// Dijkstra oracle.
    fn oracle(graph: &CooGraph, source: u32) -> Vec<f64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = graph.num_vertices() as usize;
        let csr = gaasx_graph::Csr::from_coo(graph);
        let mut dist = vec![f64::INFINITY; n];
        dist[source as usize] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, source)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d as f64 > dist[v as usize] {
                continue;
            }
            for (u, w) in csr.neighbors(VertexId::new(v)) {
                let nd = d as f64 + f64::from(w);
                if nd < dist[u.index()] {
                    dist[u.index()] = nd;
                    heap.push(Reverse((nd as u64, u.raw())));
                }
            }
        }
        dist
    }

    #[test]
    fn path_graph_distances() {
        let g = generators::path_graph(10);
        let d = run(&g, 0);
        for (i, &di) in d.iter().enumerate() {
            assert_eq!(di, i as f64);
        }
    }

    #[test]
    fn unreachable_stays_infinite() {
        let g = generators::path_graph(5);
        let d = run(&g, 3);
        assert!(d[0].is_infinite());
        assert!(d[1].is_infinite());
        assert_eq!(d[3], 0.0);
        assert_eq!(d[4], 1.0);
    }

    #[test]
    fn matches_dijkstra_on_fig7() {
        let g = generators::paper_fig7_graph();
        assert_eq!(run(&g, 0), oracle(&g, 0));
    }

    #[test]
    fn matches_dijkstra_on_weighted_rmat() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 500).with_seed(8)).unwrap();
        assert_eq!(run(&g, 1), oracle(&g, 1));
    }

    #[test]
    fn takes_shorter_of_two_routes() {
        // 0 -> 1 -> 2 costs 2+2=4; direct 0 -> 2 costs 9.
        let g = CooGraph::from_edges(
            3,
            vec![
                Edge::new(0, 1, 2.0),
                Edge::new(1, 2, 2.0),
                Edge::new(0, 2, 9.0),
            ],
        )
        .unwrap();
        assert_eq!(run(&g, 0), vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn rejects_bad_source_and_negative_weights() {
        let g = generators::path_graph(3);
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        assert!(Sssp::from_source(VertexId::new(9))
            .execute(&mut engine, &g)
            .is_err());
        let neg = CooGraph::from_edges(2, vec![Edge::new(0, 1, -1.0)]).unwrap();
        assert!(Sssp::from_source(VertexId::new(0))
            .execute(&mut engine, &neg)
            .is_err());
    }

    #[test]
    fn superstep_cap_limits_propagation() {
        let g = generators::path_graph(10);
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let r = Sssp {
            source: VertexId::new(0),
            max_supersteps: 2,
        }
        .execute(&mut engine, &g)
        .unwrap();
        assert_eq!(r.iterations, 2);
        // Within 2 Bellman-Ford sweeps at least 2 hops resolved.
        assert_eq!(r.output[2], 2.0);
    }
}
