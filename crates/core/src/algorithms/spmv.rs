//! Generic sparse matrix–vector multiplication.
//!
//! The paper's whole thesis is that graph analytics reduces to the SpMV
//! computation model (§III: GaaS-X "efficiently adapts the SpMV
//! computation model to different graph algorithms"); this exposes the
//! primitive itself as a public operation: `y = Aᵀ·x` where `A` is the
//! weighted adjacency matrix held sparsely in the crossbars, i.e.
//! `y[v] = Σ_{(u,v) ∈ E} w(u, v) · x[u]` — one CAM search per destination,
//! one selective MAC burst per ≤16 hit rows, exactly the PageRank gather
//! stripped of its damping step.

use gaasx_graph::partition::TraversalOrder;
use gaasx_graph::{CooGraph, Edge};
use gaasx_xbar::fixed::Quantizer;

use crate::algorithms::{AlgoRun, Algorithm};
use crate::engine::{partition_for_streaming, CellLayout, Engine};
use crate::error::CoreError;

/// One SpMV operation `y = Aᵀ·x` over the graph's weighted adjacency.
///
/// Crossbar cells are unsigned, so both the matrix weights and the input
/// vector must be non-negative; [`SpMV::execute`] validates this. (Signed
/// operands use the dual-rail encoding of [`super::signed`], as
/// collaborative filtering does.)
#[derive(Debug, Clone, PartialEq)]
pub struct SpMV {
    /// The input vector `x`, length `num_vertices`.
    pub x: Vec<f32>,
}

impl SpMV {
    /// Creates the operation for a given input vector.
    pub fn new(x: Vec<f32>) -> Self {
        SpMV { x }
    }
}

impl Algorithm for SpMV {
    type Input = CooGraph;
    type Output = Vec<f64>;

    fn name(&self) -> &'static str {
        "spmv"
    }

    fn input_edges(input: &CooGraph) -> u64 {
        input.num_edges() as u64
    }

    fn execute(
        &self,
        engine: &mut Engine,
        graph: &CooGraph,
    ) -> Result<AlgoRun<Vec<f64>>, CoreError> {
        let n = graph.num_vertices() as usize;
        if self.x.len() != n {
            return Err(CoreError::InvalidInput(format!(
                "input vector length {} does not match {} vertices",
                self.x.len(),
                n
            )));
        }
        if n == 0 {
            return Ok(AlgoRun {
                output: Vec::new(),
                iterations: 1,
            });
        }
        let mut max_w = 0.0f32;
        for e in graph.iter() {
            if !(e.weight.is_finite() && e.weight >= 0.0) {
                return Err(CoreError::InvalidInput(format!(
                    "weight on {e} must be non-negative and finite"
                )));
            }
            max_w = max_w.max(e.weight);
        }
        let mut max_x = 0.0f32;
        for &v in &self.x {
            if !(v.is_finite() && v >= 0.0) {
                return Err(CoreError::InvalidInput(format!(
                    "input entry {v} must be non-negative and finite"
                )));
            }
            max_x = max_x.max(v);
        }
        let w_quant = Quantizer::for_max_value(max_w.max(1e-6), engine.weight_bits())?;
        let x_quant = Quantizer::for_max_value(max_x.max(1e-6), 16)?;

        let grid = partition_for_streaming(graph)?;
        let capacity = engine.block_capacity();
        let mut y = vec![0.0f64; n];

        let mut hits = gaasx_xbar::HitVector::new(0);
        for shard in grid.stream(TraversalOrder::ColumnMajor) {
            for chunk in shard.edges().chunks(capacity) {
                let cells = |e: &Edge, c: &mut Vec<u32>| c.push(w_quant.encode(e.weight));
                let block = engine.load_block(chunk, CellLayout::PerEdge(&cells))?;
                for &dst in block.distinct_dsts() {
                    engine.search_dst_into(dst, &mut hits);
                    let code = engine.gather_rows(
                        &hits,
                        &mut |row| x_quant.encode(self.x[block.edge(row).src.index()]),
                        0,
                    )?;
                    let sum = f64::from(x_quant.decode_product_sum(&w_quant, code));
                    y[dst.index()] = engine.sfu_add(y[dst.index()], sum);
                    engine.attr_write(8);
                }
            }
        }
        engine.end_block();
        engine.output_write(8 * n as u64);

        Ok(AlgoRun {
            output: y,
            iterations: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaasXConfig;
    use gaasx_graph::generators;

    fn run(graph: &CooGraph, x: Vec<f32>) -> Vec<f64> {
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        SpMV::new(x).execute(&mut engine, graph).unwrap().output
    }

    fn oracle(graph: &CooGraph, x: &[f32]) -> Vec<f64> {
        let mut y = vec![0.0f64; graph.num_vertices() as usize];
        for e in graph.iter() {
            y[e.dst.index()] += f64::from(e.weight) * f64::from(x[e.src.index()]);
        }
        y
    }

    #[test]
    fn matches_oracle_on_fig7() {
        let g = generators::paper_fig7_graph();
        let x: Vec<f32> = (0..5).map(|i| i as f32 + 0.5).collect();
        let got = run(&g, x.clone());
        let want = oracle(&g, &x);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 0.05 * b.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn matches_oracle_on_rmat() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 900).with_seed(12)).unwrap();
        let x: Vec<f32> = (0..g.num_vertices()).map(|i| (i % 7) as f32).collect();
        let got = run(&g, x.clone());
        let want = oracle(&g, &x);
        let worst = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs() / b.max(1.0))
            .fold(0.0f64, f64::max);
        assert!(worst < 0.02, "worst relative error {worst}");
    }

    #[test]
    fn zero_vector_gives_zero_output() {
        let g = generators::paper_fig7_graph();
        assert!(run(&g, vec![0.0; 5]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn validates_inputs() {
        let g = generators::paper_fig7_graph();
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        // Wrong length.
        assert!(SpMV::new(vec![1.0; 3]).execute(&mut engine, &g).is_err());
        // Negative entries.
        assert!(SpMV::new(vec![-1.0; 5]).execute(&mut engine, &g).is_err());
        // NaN entries.
        assert!(SpMV::new(vec![f32::NAN; 5])
            .execute(&mut engine, &g)
            .is_err());
    }

    #[test]
    fn single_spmv_is_one_iteration() {
        let g = generators::paper_fig7_graph();
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let r = SpMV::new(vec![1.0; 5]).execute(&mut engine, &g).unwrap();
        assert_eq!(r.iterations, 1);
    }
}
