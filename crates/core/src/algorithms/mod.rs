//! Algorithm mappings onto the GaaS-X engine (paper §IV).
//!
//! Each algorithm decomposes into the paper's two SpMV primitives:
//!
//! * **SpMV-multiply** — parallel aggregation of attributes at a vertex
//!   (PageRank ranks, CF feature products) via CAM-search +
//!   [`Engine::gather_rows`];
//! * **SpMV-add** — parallel updates of neighbor attributes from an active
//!   vertex (SSSP, BFS) via CAM-search + [`Engine::propagate_rows`].
//!
//! [`Engine`]: crate::engine::Engine

mod bfs;
mod cf;
mod components;
mod gcn;
mod pagerank;
pub mod signed;
mod spmv;
mod sssp;

pub use bfs::Bfs;
pub use cf::{CfModel, CollaborativeFiltering};
pub use components::ConnectedComponents;
pub use gcn::{GcnInput, GcnLayer};
pub use pagerank::PageRank;
pub use spmv::SpMV;
pub use sssp::Sssp;

use crate::engine::Engine;
use crate::error::CoreError;
use crate::sharded::ShardRunner;

use gaasx_xbar::SearchProfile;

/// Result of executing an algorithm: its output plus the iteration count
/// the engine ran (supersteps / epochs).
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoRun<T> {
    /// Algorithm output (ranks, distances, model, ...).
    pub output: T,
    /// Iterations executed until convergence or the configured cap.
    pub iterations: u32,
}

/// A graph algorithm mappable onto the GaaS-X execution model.
pub trait Algorithm {
    /// Input workload type (directed graph, bipartite ratings, ...).
    type Input: ?Sized;
    /// Output type.
    type Output;

    /// Short lowercase name used in reports ("pagerank", "sssp", ...).
    fn name(&self) -> &'static str;

    /// Number of edges in the input, for throughput reporting.
    fn input_edges(input: &Self::Input) -> u64;

    /// How the algorithm queries the blocks it loads — the workload input
    /// of the [`SearchMode::Auto`](gaasx_xbar::SearchMode) cost model.
    /// Dense sweeps (the default) search every distinct key per visit;
    /// frontier traversals override this to declare their sparse access.
    fn search_profile(&self) -> SearchProfile {
        SearchProfile::OnePerKey
    }

    /// Executes the algorithm on the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on invalid inputs (e.g. an out-of-range source
    /// vertex) or internal device failures.
    fn execute(
        &self,
        engine: &mut Engine,
        input: &Self::Input,
    ) -> Result<AlgoRun<Self::Output>, CoreError>;
}

/// An algorithm whose supersteps decompose into pure per-shard passes
/// (snapshot state in, candidate updates out) plus a sequential reduce —
/// executable serially on an [`Engine`] or in parallel on a
/// [`crate::sharded::ShardedEngine`], with identical results and cost
/// accounting either way.
pub trait ShardableAlgorithm: Algorithm {
    /// Executes the algorithm on any [`ShardRunner`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on invalid inputs or device failures.
    fn execute_on<R: ShardRunner>(
        &self,
        runner: &mut R,
        input: &Self::Input,
    ) -> Result<AlgoRun<Self::Output>, CoreError>;
}
