//! Breadth-first search mapped to SpMV-add (paper §IV, Equation 2).

use gaasx_graph::partition::TraversalOrder;
use gaasx_graph::{CooGraph, VertexId};

use crate::algorithms::{AlgoRun, Algorithm, ShardableAlgorithm};
use crate::engine::{partition_for_streaming, CellLayout, Engine};
use crate::error::CoreError;
use crate::sharded::ShardRunner;

/// Distances beyond this cannot be driven as MAC inputs.
const MAX_ENCODABLE_DIST: f64 = 65_534.0;

/// BFS on GaaS-X.
///
/// Identical to SSSP with all edge weights fixed at 1: the paper notes BFS
/// runs "without the overhead of loading edge weights into MAC crossbars
/// but setting the edge weight columns to a fixed value of 1" — so data
/// loading writes only the CAM pairs ([`CellLayout::Preset`]), saving the
/// MAC programming entirely.
///
/// Unlike the paper's full-range sweep, the engine only searches sources on
/// the current frontier (their distance changed last superstep), which is
/// the natural BFS work-list; the cost difference shows up as fewer CAM
/// searches, not a different result.
#[derive(Debug, Clone, PartialEq)]
pub struct Bfs {
    /// Start vertex.
    pub source: VertexId,
}

impl Bfs {
    /// BFS from the given source.
    pub fn from_source(source: VertexId) -> Self {
        Bfs { source }
    }
}

impl Algorithm for Bfs {
    type Input = CooGraph;
    type Output = Vec<f64>;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn input_edges(input: &CooGraph) -> u64 {
        input.num_edges() as u64
    }

    fn search_profile(&self) -> gaasx_xbar::SearchProfile {
        // Searches only frontier sources per superstep, not every key.
        gaasx_xbar::SearchProfile::Frontier
    }

    fn execute(
        &self,
        engine: &mut Engine,
        graph: &CooGraph,
    ) -> Result<AlgoRun<Vec<f64>>, CoreError> {
        self.execute_on(engine, graph)
    }
}

impl ShardableAlgorithm for Bfs {
    fn execute_on<R: ShardRunner>(
        &self,
        runner: &mut R,
        graph: &CooGraph,
    ) -> Result<AlgoRun<Vec<f64>>, CoreError> {
        let n = graph.num_vertices() as usize;
        if self.source.index() >= n {
            return Err(CoreError::InvalidInput(format!(
                "source {} out of range for {n} vertices",
                self.source
            )));
        }
        // All weight cells read as 1; set once, never per edge.
        runner.preset_mac(1)?;
        let grid = partition_for_streaming(graph)?;
        let capacity = runner.engine().block_capacity();

        let mut dist = vec![f64::INFINITY; n];
        dist[self.source.index()] = 0.0;
        let mut frontier = vec![false; n];
        frontier[self.source.index()] = true;
        let mut supersteps = 0;

        loop {
            // Snapshot pass per shard (see Sssp::execute_on); the frontier
            // already enforces snapshot semantics — a vertex first reached
            // this superstep is not expanded until the next one.
            let dist_snapshot = &dist;
            let frontier_snapshot = &frontier;
            let candidates =
                runner.for_each_shard(&grid, TraversalOrder::RowMajor, |engine, shard| {
                    let mut cands: Vec<(u32, f64)> = Vec::new();
                    let mut hits = gaasx_xbar::HitVector::new(0);
                    let mut results: Vec<(usize, u64)> = Vec::new();
                    for chunk in shard.edges().chunks(capacity) {
                        if !chunk.iter().any(|e| frontier_snapshot[e.src.index()]) {
                            continue;
                        }
                        let block = engine.load_block(chunk, CellLayout::Preset)?;
                        for &src in block.distinct_srcs() {
                            if !frontier_snapshot[src.index()] {
                                continue;
                            }
                            let d = dist_snapshot[src.index()];
                            engine.attr_read(8);
                            if d > MAX_ENCODABLE_DIST {
                                continue;
                            }
                            engine.search_src_into(src, &mut hits);
                            engine.propagate_rows_into(
                                &hits,
                                &[0, 1],
                                &[1, d.round() as u32],
                                &mut results,
                            )?;
                            for &(row, sum) in &results {
                                cands.push((block.edge(row).dst.raw(), sum as f64));
                            }
                        }
                    }
                    Ok(cands)
                })?;

            let engine = runner.engine();
            let mut next = vec![false; n];
            let mut changed = false;
            for cands in &candidates {
                for &(dst, cand) in cands {
                    let v = dst as usize;
                    if engine.sfu_less_than(cand, dist[v]) {
                        dist[v] = engine.sfu_min(cand, dist[v]);
                        engine.attr_write(8);
                        next[v] = true;
                        changed = true;
                    }
                }
            }
            supersteps += 1;
            if !changed {
                break;
            }
            frontier = next;
        }
        runner.engine().output_write(8 * n as u64);

        Ok(AlgoRun {
            output: dist,
            iterations: supersteps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaasXConfig;
    use gaasx_graph::generators;

    fn run(graph: &CooGraph, source: u32) -> Vec<f64> {
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        Bfs::from_source(VertexId::new(source))
            .execute(&mut engine, graph)
            .unwrap()
            .output
    }

    /// Queue-based BFS oracle (hop counts).
    fn oracle(graph: &CooGraph, source: u32) -> Vec<f64> {
        use std::collections::VecDeque;
        let n = graph.num_vertices() as usize;
        let csr = gaasx_graph::Csr::from_coo(graph);
        let mut dist = vec![f64::INFINITY; n];
        dist[source as usize] = 0.0;
        let mut q = VecDeque::from([source]);
        while let Some(v) = q.pop_front() {
            for (u, _) in csr.neighbors(VertexId::new(v)) {
                if dist[u.index()].is_infinite() {
                    dist[u.index()] = dist[v as usize] + 1.0;
                    q.push_back(u.raw());
                }
            }
        }
        dist
    }

    #[test]
    fn hop_counts_on_path() {
        let g = generators::path_graph(6);
        assert_eq!(run(&g, 0), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn ignores_edge_weights() {
        // Heavy weights must not affect hop counts.
        let g = CooGraph::from_edges(
            3,
            vec![
                gaasx_graph::Edge::new(0, 1, 99.0),
                gaasx_graph::Edge::new(1, 2, 99.0),
            ],
        )
        .unwrap();
        assert_eq!(run(&g, 0), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn matches_oracle_on_rmat() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 500).with_seed(2)).unwrap();
        assert_eq!(run(&g, 0), oracle(&g, 0));
    }

    #[test]
    fn star_is_one_hop() {
        let g = generators::star_graph(30);
        let d = run(&g, 0);
        assert!(d[1..].iter().all(|&x| x == 1.0));
    }

    #[test]
    fn bfs_loads_no_mac_cells() {
        let g = generators::path_graph(8);
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let _ = Bfs::from_source(VertexId::new(0))
            .execute(&mut engine, &g)
            .unwrap();
        let r = engine.finish("gaasx", "bfs", "path", 1, 7);
        // Every programmed cell is a CAM cell: divisible by the 256 devices
        // per CAM row, with zero MAC-cell contribution.
        assert_eq!(r.ops.cells_written % 256, 0);
    }

    #[test]
    fn rejects_bad_source() {
        let g = generators::path_graph(3);
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        assert!(Bfs::from_source(VertexId::new(3))
            .execute(&mut engine, &g)
            .is_err());
    }
}
