//! Collaborative filtering (matrix factorization SGD) mapped to GaaS-X
//! (paper §IV, Fig 10).
//!
//! CF differs from the traversal algorithms in that the MAC operands are
//! *vertex* attributes — the latent feature vectors of users and items —
//! rather than edge weights. Ratings are loaded into the CAM crossbars as
//! `(user, item)` pairs; feature vectors live in MAC crossbars using the
//! dual-rail signed encoding of [`super::signed`]. Each epoch runs the
//! paper's two phases per loaded block:
//!
//! 1. *item update*: for each item, a CAM search over the item field finds
//!    its raters, errors `e_ui = G − Pᵤ·Pᵢ` come from dual-rail dot
//!    products, and `Σ e_ui·Pᵤ` accumulates through a selective MAC;
//! 2. *user update*: symmetric, searching the user field. (The paper
//!    maintains a "user list" side structure for this; the CAM's ternary
//!    search over the source field is the equivalent mechanism and is what
//!    we use.)

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gaasx_graph::bipartite::BipartiteGraph;
use gaasx_graph::Edge;
use gaasx_xbar::fixed::Quantizer;

use crate::algorithms::signed::{dual_rail_inputs, encode_row, SignedQuantizer};
use crate::algorithms::{AlgoRun, Algorithm};
use crate::engine::{CellLayout, Engine};
use crate::error::CoreError;

/// Collaborative filtering on GaaS-X.
#[derive(Debug, Clone, PartialEq)]
pub struct CollaborativeFiltering {
    /// Latent feature vector length (the paper evaluates 32).
    pub features: usize,
    /// Training epochs.
    pub epochs: u32,
    /// SGD learning rate γ (Equation 5).
    pub learning_rate: f64,
    /// Regularization λ (Equation 5).
    pub regularization: f64,
    /// Feature initialization seed.
    pub seed: u64,
}

impl Default for CollaborativeFiltering {
    fn default() -> Self {
        CollaborativeFiltering {
            features: 32,
            epochs: 5,
            learning_rate: 0.01,
            regularization: 0.05,
            seed: 0xcf01,
        }
    }
}

/// A trained factorization model.
#[derive(Debug, Clone, PartialEq)]
pub struct CfModel {
    user_features: Vec<Vec<f32>>,
    item_features: Vec<Vec<f32>>,
}

impl CfModel {
    /// Assembles a model from raw feature matrices — used by baseline
    /// engines (e.g. GraphR's CF) so every trainer yields the same type.
    ///
    /// # Panics
    ///
    /// Panics if the matrices have inconsistent feature lengths.
    pub fn from_parts(user_features: Vec<Vec<f32>>, item_features: Vec<Vec<f32>>) -> Self {
        let f = user_features
            .first()
            .or(item_features.first())
            .map_or(0, Vec::len);
        assert!(
            user_features
                .iter()
                .chain(&item_features)
                .all(|v| v.len() == f),
            "inconsistent feature vector lengths"
        );
        CfModel {
            user_features,
            item_features,
        }
    }

    /// Predicted rating of `item` by `user` (host-side dot product).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn predict(&self, user: u32, item: u32) -> f64 {
        dot(
            &self.user_features[user as usize],
            &self.item_features[item as usize],
        )
    }

    /// Root-mean-square error over a rating set.
    ///
    /// Returns `None` for an empty set.
    pub fn rmse(&self, ratings: &BipartiteGraph) -> Option<f64> {
        if ratings.num_ratings() == 0 {
            return None;
        }
        let se: f64 = ratings
            .iter()
            .map(|r| {
                let err = f64::from(r.value) - self.predict(r.user, r.item);
                err * err
            })
            .sum();
        Some((se / ratings.num_ratings() as f64).sqrt())
    }

    /// The user feature matrix.
    pub fn user_features(&self) -> &[Vec<f32>] {
        &self.user_features
    }

    /// The item feature matrix.
    pub fn item_features(&self) -> &[Vec<f32>] {
        &self.item_features
    }
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| f64::from(x) * f64::from(y))
        .sum()
}

/// Dual-rail signed dot product `a · b` executed on the auxiliary MAC
/// crossbar: a like/cross MAC pass pair per 8-feature segment. The operand
/// vectors were charged as loaded at shard granularity
/// ([`Engine::load_aux_rows_parallel`]); here they are re-materialized into
/// the working array cost-free.
fn device_dot(
    engine: &mut Engine,
    a: &[f32],
    b: &[f32],
    q: &SignedQuantizer,
) -> Result<f64, CoreError> {
    let cols = engine.config().mac_geometry.cols;
    let feats_per_seg = cols / 2;
    let mut total = 0.0;
    for (seg, a_seg) in a.chunks(feats_per_seg).enumerate() {
        let b_seg = &b[seg * feats_per_seg..(seg * feats_per_seg + a_seg.len())];
        engine.preload_aux_row(0, &encode_row(q, a_seg))?;
        let (like_in, cross_in) = dual_rail_inputs(q, b_seg);
        let active: Vec<usize> = (0..like_in.len()).collect();
        let like = engine.aux_mac_cols(&active, &like_in)?[0];
        let cross = engine.aux_mac_cols(&active, &cross_in)?[0];
        total = engine.sfu_add(total, q.decode_product_sum(q, like, cross));
    }
    Ok(total)
}

/// Dual-rail signed weighted sum `Σⱼ cⱼ · Vⱼ` executed on the auxiliary MAC
/// crossbar: vectors re-materialize as dual-rail rows (loading already
/// charged at shard granularity), coefficients drive the rows in a
/// like/cross pass pair per segment, per ≤16-row chunk.
fn device_weighted_sum(
    engine: &mut Engine,
    coeffs: &[f64],
    vectors: &[&Vec<f32>],
    cq: &SignedQuantizer,
    vq: &SignedQuantizer,
    features: usize,
) -> Result<Vec<f64>, CoreError> {
    debug_assert_eq!(coeffs.len(), vectors.len());
    let cols = engine.config().mac_geometry.cols;
    let feats_per_seg = cols / 2;
    let max_rows = engine.config().mac_geometry.max_active_rows;
    let mut result = vec![0.0f64; features];

    for (c_chunk, v_chunk) in coeffs.chunks(max_rows).zip(vectors.chunks(max_rows)) {
        let like_in: Vec<u32> = c_chunk.iter().map(|&c| cq.encode(c as f32).0).collect();
        let cross_in: Vec<u32> = c_chunk.iter().map(|&c| cq.encode(c as f32).1).collect();
        let rows: Vec<usize> = (0..c_chunk.len()).collect();
        for seg_base in (0..features).step_by(feats_per_seg) {
            let seg_len = feats_per_seg.min(features - seg_base);
            for (j, v) in v_chunk.iter().enumerate() {
                engine.preload_aux_row(j, &encode_row(vq, &v[seg_base..seg_base + seg_len]))?;
            }
            let s_like = engine.aux_mac_rows(&rows, &like_in)?;
            let s_cross = engine.aux_mac_rows(&rows, &cross_in)?;
            for k in 0..seg_len {
                let like = s_like[2 * k] + s_cross[2 * k + 1];
                let cross = s_like[2 * k + 1] + s_cross[2 * k];
                result[seg_base + k] += cq.decode_product_sum(vq, like, cross);
            }
        }
    }
    Ok(result)
}

impl CollaborativeFiltering {
    fn validate(&self) -> Result<(), CoreError> {
        if self.features == 0 {
            return Err(CoreError::InvalidInput("features must be positive".into()));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(CoreError::InvalidInput(
                "learning_rate must be positive".into(),
            ));
        }
        if !(self.regularization.is_finite() && self.regularization >= 0.0) {
            return Err(CoreError::InvalidInput(
                "regularization must be non-negative".into(),
            ));
        }
        Ok(())
    }

    // The SGD update takes every latent-factor coefficient separately by
    // design: bundling them into a struct would hide which of the paper's
    // Eq. 7 terms each call site supplies.
    #[allow(clippy::too_many_arguments)]
    fn apply_update(
        engine: &mut Engine,
        target: &mut [f32],
        delta: &[f64],
        count: usize,
        gamma: f64,
        lambda: f64,
        feat_max: f32,
    ) {
        // P* = P + γ (Σ e·Q − λ·cnt·P), elementwise in the SFU.
        for (p, &d) in target.iter_mut().zip(delta) {
            let reg = engine.sfu_mul(lambda * count as f64, f64::from(*p));
            let step = engine.sfu_mul(gamma, d - reg);
            let updated = engine.sfu_add(f64::from(*p), step);
            *p = (updated as f32).clamp(-feat_max, feat_max);
        }
        engine.attr_write(4 * target.len() as u64);
    }
}

impl Algorithm for CollaborativeFiltering {
    type Input = BipartiteGraph;
    type Output = CfModel;

    fn name(&self) -> &'static str {
        "cf"
    }

    fn input_edges(input: &BipartiteGraph) -> u64 {
        input.num_ratings() as u64
    }

    fn execute(
        &self,
        engine: &mut Engine,
        ratings: &BipartiteGraph,
    ) -> Result<AlgoRun<CfModel>, CoreError> {
        self.validate()?;
        let f = self.features;
        let feat_max = 2.0f32;
        let feat_q = SignedQuantizer::new(feat_max, 16)?;
        let err_q = SignedQuantizer::new(8.0, 16)?;
        let rate_q = Quantizer::new(1.0, engine.weight_bits())?;

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let scale = 0.5 / (f as f32).sqrt();
        let mut init = |n: u32| -> Vec<Vec<f32>> {
            (0..n)
                .map(|_| (0..f).map(|_| rng.gen_range(0.0..scale)).collect())
                .collect()
        };
        let mut user_f = init(ratings.num_users());
        let mut item_f = init(ratings.num_items());

        let capacity = engine.block_capacity();
        let cols = engine.config().mac_geometry.cols;
        let rows_per_vector = (2 * f).div_ceil(cols);
        let num_users = ratings.num_users() as usize;

        // Interval-partition the rating matrix like any other graph: item
        // vertices follow user vertices in the unified id space, so
        // column-major streaming groups ratings by item range (Fig 2
        // layout applied to the bipartite graph).
        let coo = ratings.to_coo();
        let grid = gaasx_graph::partition::GridPartition::with_num_intervals(&coo, 16)?;

        let total_vertices = (ratings.num_users() + ratings.num_items()) as usize;
        let mut hits = gaasx_xbar::HitVector::new(0);
        let mut rows: Vec<usize> = Vec::new();
        for _ in 0..self.epochs {
            // The attribute MAC crossbars across the banks hold the feature
            // matrix of the active vertex ranges (2048 banks × 128 rows fit
            // ≈131 K 32-feature dual-rail vectors), so each vector loads
            // once per epoch as its range first streams in.
            let mut loaded = vec![false; total_vertices];
            for shard in grid.stream(gaasx_graph::partition::TraversalOrder::ColumnMajor) {
                let mut fresh = 0usize;
                for e in shard.edges() {
                    for v in [e.src.index(), e.dst.index()] {
                        if !loaded[v] {
                            loaded[v] = true;
                            fresh += 1;
                        }
                    }
                }
                engine.load_aux_rows_parallel(fresh * rows_per_vector, cols);
                engine.attr_read(4 * (fresh * f) as u64);

                for chunk in shard.edges().chunks(capacity) {
                    let cells = |e: &Edge, c: &mut Vec<u32>| c.push(rate_q.encode(e.weight));
                    let block = engine.load_block(chunk, CellLayout::PerEdge(&cells))?;

                    // Item update phase (Fig 10(b)).
                    for &item in block.distinct_dsts() {
                        let i = item.index() - num_users;
                        engine.search_dst_into(item, &mut hits);
                        rows.clear();
                        rows.extend(hits.iter_ones());
                        let mut errs = Vec::with_capacity(rows.len());
                        let mut user_vecs: Vec<&Vec<f32>> = Vec::with_capacity(rows.len());
                        let item_vec = item_f[i].clone();
                        for &row in &rows {
                            let e = block.edge(row);
                            engine.attr_read(4);
                            let pred =
                                device_dot(engine, &user_f[e.src.index()], &item_vec, &feat_q)?;
                            errs.push(engine.sfu_add(f64::from(e.weight), -pred));
                            user_vecs.push(&user_f[e.src.index()]);
                        }
                        let delta =
                            device_weighted_sum(engine, &errs, &user_vecs, &err_q, &feat_q, f)?;
                        Self::apply_update(
                            engine,
                            &mut item_f[i],
                            &delta,
                            rows.len(),
                            self.learning_rate,
                            self.regularization,
                            feat_max,
                        );
                    }

                    // User update phase (Fig 10(c)).
                    for &user in block.distinct_srcs() {
                        engine.search_src_into(user, &mut hits);
                        rows.clear();
                        rows.extend(hits.iter_ones());
                        let mut errs = Vec::with_capacity(rows.len());
                        let mut item_vecs: Vec<&Vec<f32>> = Vec::with_capacity(rows.len());
                        let user_vec = user_f[user.index()].clone();
                        for &row in &rows {
                            let e = block.edge(row);
                            engine.attr_read(4);
                            let i = e.dst.index() - num_users;
                            let pred = device_dot(engine, &user_vec, &item_f[i], &feat_q)?;
                            errs.push(engine.sfu_add(f64::from(e.weight), -pred));
                            item_vecs.push(&item_f[i]);
                        }
                        let delta =
                            device_weighted_sum(engine, &errs, &item_vecs, &err_q, &feat_q, f)?;
                        Self::apply_update(
                            engine,
                            &mut user_f[user.index()],
                            &delta,
                            rows.len(),
                            self.learning_rate,
                            self.regularization,
                            feat_max,
                        );
                    }
                }
                engine.end_block();
            }
        }

        Ok(AlgoRun {
            output: CfModel {
                user_features: user_f,
                item_features: item_f,
            },
            iterations: self.epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaasXConfig;

    fn small_cf() -> CollaborativeFiltering {
        CollaborativeFiltering {
            features: 8,
            epochs: 4,
            learning_rate: 0.02,
            regularization: 0.02,
            seed: 7,
        }
    }

    fn train(ratings: &BipartiteGraph, cf: &CollaborativeFiltering) -> CfModel {
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        cf.execute(&mut engine, ratings).unwrap().output
    }

    #[test]
    fn training_reduces_rmse() {
        let ratings = BipartiteGraph::synthetic(30, 12, 250, 11).unwrap();
        let cf = small_cf();
        let untrained = CollaborativeFiltering {
            epochs: 0,
            ..cf.clone()
        };
        let before = train(&ratings, &untrained).rmse(&ratings).unwrap();
        let after = train(&ratings, &cf).rmse(&ratings).unwrap();
        assert!(
            after < before * 0.8,
            "rmse before {before:.3}, after {after:.3}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let ratings = BipartiteGraph::synthetic(10, 5, 60, 3).unwrap();
        let a = train(&ratings, &small_cf());
        let b = train(&ratings, &small_cf());
        assert_eq!(a, b);
    }

    #[test]
    fn predictions_track_strong_signal() {
        // Every rating is 5.0: after training, predictions should move
        // clearly above the untrained near-zero baseline.
        let ratings = BipartiteGraph::from_ratings(
            4,
            3,
            (0..4)
                .flat_map(|u| {
                    (0..3).map(move |i| gaasx_graph::bipartite::Rating {
                        user: u,
                        item: i,
                        value: 5.0,
                    })
                })
                .collect(),
        )
        .unwrap();
        let cf = CollaborativeFiltering {
            epochs: 30,
            ..small_cf()
        };
        let model = train(&ratings, &cf);
        let pred = model.predict(0, 0);
        assert!(pred > 1.0, "prediction {pred} did not move toward 5");
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let ratings = BipartiteGraph::synthetic(4, 4, 8, 1).unwrap();
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        for cf in [
            CollaborativeFiltering {
                features: 0,
                ..Default::default()
            },
            CollaborativeFiltering {
                learning_rate: 0.0,
                ..Default::default()
            },
            CollaborativeFiltering {
                regularization: -1.0,
                ..Default::default()
            },
        ] {
            assert!(cf.execute(&mut engine, &ratings).is_err());
        }
    }

    #[test]
    fn device_dot_matches_host_dot() {
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let q = SignedQuantizer::new(2.0, 16).unwrap();
        let a: Vec<f32> = vec![0.5, -0.25, 1.0, 0.0, -1.5, 0.75, 0.1, -0.1, 0.33];
        let b: Vec<f32> = vec![-0.5, 0.25, 0.5, 1.0, 1.5, -0.75, 0.2, 0.4, -0.66];
        let want = dot(&a, &b);
        let got = device_dot(&mut engine, &a, &b, &q).unwrap();
        assert!((got - want).abs() < 1e-3, "{got} vs {want}");
    }

    #[test]
    fn device_weighted_sum_matches_host() {
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let cq = SignedQuantizer::new(8.0, 16).unwrap();
        let vq = SignedQuantizer::new(2.0, 16).unwrap();
        let coeffs = vec![2.0f64, -1.0, 0.5];
        let v1 = vec![0.5f32, -0.5, 1.0, 0.0];
        let v2 = vec![1.0f32, 1.0, -1.0, 0.5];
        let v3 = vec![-0.5f32, 0.25, 0.0, 2.0];
        let vectors: Vec<&Vec<f32>> = vec![&v1, &v2, &v3];
        let got = device_weighted_sum(&mut engine, &coeffs, &vectors, &cq, &vq, 4).unwrap();
        for k in 0..4 {
            let want: f64 = coeffs
                .iter()
                .zip(&vectors)
                .map(|(&c, v)| c * f64::from(v[k]))
                .sum();
            assert!((got[k] - want).abs() < 2e-3, "k={k}: {} vs {want}", got[k]);
        }
    }
}
