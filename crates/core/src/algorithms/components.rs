//! Connected components by min-label propagation.
//!
//! The paper positions GaaS-X as covering the SpMV algorithm family
//! ("traversal, machine learning"); connected components is the canonical
//! remaining traversal kernel (it appears in GAPBS and every framework the
//! paper compares against). The mapping is the SpMV-add pattern of SSSP
//! with the distance replaced by a component label and `min` as the reduce:
//! labels start as vertex ids, and every superstep each active vertex
//! pushes its label to its out-neighbors through a CAM search plus a
//! transposed MAC over the preset unit column.

use gaasx_graph::partition::TraversalOrder;
use gaasx_graph::CooGraph;

use crate::algorithms::{AlgoRun, Algorithm, ShardableAlgorithm};
use crate::engine::{partition_for_streaming, CellLayout, Engine};
use crate::error::CoreError;
use crate::sharded::ShardRunner;

/// Labels propagate as MAC inputs, so they must fit the 16-bit input path.
const MAX_ENCODABLE_LABEL: u32 = 65_535;

/// Connected components on GaaS-X.
///
/// Propagation follows directed edges; run on
/// [`CooGraph::symmetrized`] input to obtain *weakly* connected components
/// (the usual notion, and what the tests validate against a union–find
/// oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// Creates the algorithm.
    pub fn new() -> Self {
        ConnectedComponents
    }
}

impl Algorithm for ConnectedComponents {
    type Input = CooGraph;
    type Output = Vec<u32>;

    fn name(&self) -> &'static str {
        "cc"
    }

    fn input_edges(input: &CooGraph) -> u64 {
        input.num_edges() as u64
    }

    fn search_profile(&self) -> gaasx_xbar::SearchProfile {
        // Label propagation searches only vertices whose label changed.
        gaasx_xbar::SearchProfile::Frontier
    }

    fn execute(
        &self,
        engine: &mut Engine,
        graph: &CooGraph,
    ) -> Result<AlgoRun<Vec<u32>>, CoreError> {
        self.execute_on(engine, graph)
    }
}

impl ShardableAlgorithm for ConnectedComponents {
    fn execute_on<R: ShardRunner>(
        &self,
        runner: &mut R,
        graph: &CooGraph,
    ) -> Result<AlgoRun<Vec<u32>>, CoreError> {
        let n = graph.num_vertices() as usize;
        if n == 0 {
            return Ok(AlgoRun {
                output: Vec::new(),
                iterations: 0,
            });
        }
        if n as u64 > u64::from(MAX_ENCODABLE_LABEL) + 1 {
            return Err(CoreError::InvalidInput(format!(
                "{n} vertices exceed the {}-label device input range",
                MAX_ENCODABLE_LABEL + 1
            )));
        }
        // Labels ride the preset unit column like BFS hop counts: no MAC
        // programming during data loading.
        runner.preset_mac(1)?;
        let grid = partition_for_streaming(graph)?;
        let capacity = runner.engine().block_capacity();

        let mut label: Vec<u32> = (0..n as u32).collect();
        let mut active = vec![true; n];
        let mut supersteps = 0;

        loop {
            // Snapshot pass: labels propagated this superstep are the
            // superstep-start labels; the reduce takes the min per dst.
            // Min-label propagation converges to the same fixed point
            // either way, and the `supersteps > n` guard still bounds it.
            let label_snapshot = &label;
            let active_snapshot = &active;
            let candidates =
                runner.for_each_shard(&grid, TraversalOrder::RowMajor, |engine, shard| {
                    let mut cands: Vec<(u32, u32)> = Vec::new();
                    let mut hits = gaasx_xbar::HitVector::new(0);
                    let mut results: Vec<(usize, u64)> = Vec::new();
                    for chunk in shard.edges().chunks(capacity) {
                        if !chunk.iter().any(|e| active_snapshot[e.src.index()]) {
                            continue;
                        }
                        let block = engine.load_block(chunk, CellLayout::Preset)?;
                        for &src in block.distinct_srcs() {
                            if !active_snapshot[src.index()] {
                                continue;
                            }
                            engine.attr_read(4);
                            engine.search_src_into(src, &mut hits);
                            // Single unit column: out[row] = label(src) × 1.
                            engine.propagate_rows_into(
                                &hits,
                                &[0],
                                &[label_snapshot[src.index()]],
                                &mut results,
                            )?;
                            for &(row, pushed) in &results {
                                cands.push((block.edge(row).dst.raw(), pushed as u32));
                            }
                        }
                    }
                    Ok(cands)
                })?;

            let engine = runner.engine();
            let mut next = vec![false; n];
            let mut changed = false;
            for cands in &candidates {
                for &(dst, pushed) in cands {
                    let v = dst as usize;
                    if engine.sfu_less_than(f64::from(pushed), f64::from(label[v])) {
                        label[v] = pushed;
                        engine.attr_write(4);
                        next[v] = true;
                        changed = true;
                    }
                }
            }
            supersteps += 1;
            if !changed || supersteps as usize > n {
                break;
            }
            active = next;
        }
        runner.engine().output_write(4 * n as u64);

        Ok(AlgoRun {
            output: label,
            iterations: supersteps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaasXConfig;
    use gaasx_graph::generators;

    fn run(graph: &CooGraph) -> Vec<u32> {
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        ConnectedComponents::new()
            .execute(&mut engine, graph)
            .unwrap()
            .output
    }

    /// Union–find oracle over undirected reachability.
    fn oracle(graph: &CooGraph) -> Vec<u32> {
        let n = graph.num_vertices() as usize;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for e in graph.iter() {
            let (a, b) = (
                find(&mut parent, e.src.index()),
                find(&mut parent, e.dst.index()),
            );
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
        (0..n).map(|v| find(&mut parent, v) as u32).collect()
    }

    #[test]
    fn two_islands_get_two_labels() {
        // 0-1-2 and 3-4, undirected.
        let g = gaasx_graph::GraphBuilder::new(5)
            .unweighted_edge(0, 1)
            .unweighted_edge(1, 2)
            .unweighted_edge(3, 4)
            .symmetrize(true)
            .build()
            .unwrap();
        assert_eq!(run(&g), vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn matches_union_find_on_random_graph() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 300).with_seed(6))
            .unwrap()
            .symmetrized();
        assert_eq!(run(&g), oracle(&g));
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let g = CooGraph::empty(4);
        assert_eq!(run(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_component_cycle() {
        let g = generators::cycle_graph(20);
        assert!(run(&g).iter().all(|&l| l == 0));
    }

    #[test]
    fn rejects_oversized_graphs() {
        let g = CooGraph::empty(70_000);
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        assert!(ConnectedComponents::new().execute(&mut engine, &g).is_err());
    }

    #[test]
    fn label_values_are_component_minima() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 200).with_seed(8))
            .unwrap()
            .symmetrized();
        let labels = run(&g);
        for (v, &l) in labels.iter().enumerate() {
            assert!(l as usize <= v, "label {l} above vertex id {v}");
            assert_eq!(labels[l as usize], l, "label must be its own root");
        }
    }
}
