//! A graph convolutional network layer on GaaS-X.
//!
//! The paper's closing discussion (§V-B) notes that "emerging graph
//! analytics algorithms such as graph neural networks ... comprise a
//! series of operations such as accumulation, convolution over vertex
//! attributes and edge attributes. Though these emerging algorithms can be
//! mapped to GaaS-X architecture, in this work, we refrain from this
//! analysis". This module implements that deferred mapping for one GCN
//! layer with mean aggregation:
//!
//! ```text
//! H' = ReLU( D⁻¹(A + I) · H · W )
//! ```
//!
//! *Aggregation* is the CF/PageRank gather: one CAM search per destination,
//! then one selective MAC burst per ≤16 hit rows **per input feature**,
//! with the normalization `1/(deg+1)` pre-programmed into the edge cells.
//! *Transformation* holds the (signed, dual-rail) weight matrix in the
//! attribute crossbars and performs one MAC burst per vertex per 8-output
//! segment, with the SFU applying ReLU.

use gaasx_graph::partition::TraversalOrder;
use gaasx_graph::{CooGraph, Edge};
use gaasx_xbar::fixed::Quantizer;

use crate::algorithms::signed::{encode_row, SignedQuantizer};
use crate::algorithms::{AlgoRun, Algorithm};
use crate::engine::{partition_for_streaming, CellLayout, Engine};
use crate::error::CoreError;

/// Input to a GCN layer: a graph plus non-negative vertex features
/// (`num_vertices × f_in`). Features are non-negative because they are
/// driven as single-rail MAC inputs — exactly the situation after a
/// previous layer's ReLU.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnInput {
    /// The graph.
    pub graph: CooGraph,
    /// Per-vertex input features.
    pub features: Vec<Vec<f32>>,
}

/// One GCN layer.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnLayer {
    /// Weight matrix, `f_in × f_out`, signed.
    pub weights: Vec<Vec<f32>>,
    /// Apply ReLU to the output (disable for a final linear layer).
    pub relu: bool,
}

impl GcnLayer {
    /// Creates a layer from its weight matrix.
    pub fn new(weights: Vec<Vec<f32>>) -> Self {
        GcnLayer {
            weights,
            relu: true,
        }
    }

    fn f_in(&self) -> usize {
        self.weights.len()
    }

    fn f_out(&self) -> usize {
        self.weights.first().map_or(0, Vec::len)
    }
}

impl Algorithm for GcnLayer {
    type Input = GcnInput;
    type Output = Vec<Vec<f64>>;

    fn name(&self) -> &'static str {
        "gcn"
    }

    fn input_edges(input: &GcnInput) -> u64 {
        input.graph.num_edges() as u64
    }

    fn execute(
        &self,
        engine: &mut Engine,
        input: &GcnInput,
    ) -> Result<AlgoRun<Vec<Vec<f64>>>, CoreError> {
        let graph = &input.graph;
        let h = &input.features;
        let n = graph.num_vertices() as usize;
        let f_in = self.f_in();
        let f_out = self.f_out();
        let geometry = engine.config().mac_geometry;

        if f_in == 0 || f_out == 0 {
            return Err(CoreError::InvalidInput("empty weight matrix".into()));
        }
        if f_in > geometry.max_active_rows {
            return Err(CoreError::InvalidInput(format!(
                "f_in {} exceeds the {}-row MAC burst cap; stack narrower layers",
                f_in, geometry.max_active_rows
            )));
        }
        if self.weights.iter().any(|r| r.len() != f_out) {
            return Err(CoreError::InvalidInput("ragged weight matrix".into()));
        }
        if h.len() != n {
            return Err(CoreError::InvalidInput(format!(
                "feature matrix has {} rows for {} vertices",
                h.len(),
                n
            )));
        }
        let mut max_h = 0.0f32;
        for row in h {
            if row.len() != f_in {
                return Err(CoreError::InvalidInput("ragged feature matrix".into()));
            }
            for &v in row {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(CoreError::InvalidInput(format!(
                        "feature {v} must be non-negative and finite (post-ReLU domain)"
                    )));
                }
                max_h = max_h.max(v);
            }
        }
        if n == 0 {
            return Ok(AlgoRun {
                output: Vec::new(),
                iterations: 1,
            });
        }

        let in_deg = graph.in_degrees();
        // Mean aggregation with self loop: factor 1/(in_deg + 1) < 1.
        let norm_quant = Quantizer::for_max_value(1.0, engine.weight_bits())?;
        let h_quant = Quantizer::for_max_value(max_h.max(1e-6), 16)?;
        let norm = |v: usize| 1.0 / (in_deg[v] as f32 + 1.0);

        // --- Aggregation phase: agg = D⁻¹(A + I) · H ------------------
        let mut agg = vec![vec![0.0f64; f_in]; n];
        let grid = partition_for_streaming(graph)?;
        let capacity = engine.block_capacity();
        let mut hits = gaasx_xbar::HitVector::new(0);
        for shard in grid.stream(TraversalOrder::ColumnMajor) {
            for chunk in shard.edges().chunks(capacity) {
                let cells =
                    |e: &Edge, c: &mut Vec<u32>| c.push(norm_quant.encode(norm(e.dst.index())));
                let block = engine.load_block(chunk, CellLayout::PerEdge(&cells))?;
                for &dst in block.distinct_dsts() {
                    // One CAM search; the hit-vector register drives f_in
                    // successive MAC bursts, one per input feature.
                    engine.search_dst_into(dst, &mut hits);
                    for k in 0..f_in {
                        let code = engine.gather_rows(
                            &hits,
                            &mut |row| h_quant.encode(h[block.edge(row).src.index()][k]),
                            0,
                        )?;
                        let sum = f64::from(h_quant.decode_product_sum(&norm_quant, code));
                        agg[dst.index()][k] = engine.sfu_add(agg[dst.index()][k], sum);
                    }
                    engine.attr_write(4 * f_in as u64);
                }
            }
        }
        engine.end_block();
        // Self-loop term, per vertex, in the SFU.
        for v in 0..n {
            let nv = f64::from(norm(v));
            for k in 0..f_in {
                let own = engine.sfu_mul(nv, f64::from(h[v][k]));
                agg[v][k] = engine.sfu_add(agg[v][k], own);
            }
        }

        // --- Transform phase: out = agg · W, ReLU ---------------------
        // W loads once into the attribute crossbars: dual-rail columns,
        // f_in rows, ceil(f_out / 8) segments.
        let w_max = self
            .weights
            .iter()
            .flatten()
            .fold(0.0f32, |m, &w| m.max(w.abs()));
        let w_quant = SignedQuantizer::new(w_max.max(1e-6), 16)?;
        let agg_max = agg
            .iter()
            .flatten()
            .fold(0.0f64, |m, &v| m.max(v))
            .max(1e-6);
        let agg_quant = Quantizer::for_max_value(agg_max as f32, 16)?;
        let cols = geometry.cols;
        let outs_per_seg = cols / 2;
        let segments = f_out.div_ceil(outs_per_seg);
        for seg in 0..segments {
            let lo = seg * outs_per_seg;
            let hi = (lo + outs_per_seg).min(f_out);
            for (k, row) in self.weights.iter().enumerate() {
                engine.write_aux_row(k, &encode_row(&w_quant, &row[lo..hi]))?;
            }
        }

        let rows: Vec<usize> = (0..f_in).collect();
        let mut out = vec![vec![0.0f64; f_out]; n];
        for v in 0..n {
            let inputs: Vec<u32> = (0..f_in)
                .map(|k| agg_quant.encode(agg[v][k] as f32))
                .collect();
            engine.attr_read(4 * f_in as u64);
            for seg in 0..segments {
                let lo = seg * outs_per_seg;
                let hi = (lo + outs_per_seg).min(f_out);
                // Re-materialize this segment's W (loading charged above).
                for (k, row) in self.weights.iter().enumerate() {
                    engine.preload_aux_row(k, &encode_row(&w_quant, &row[lo..hi]))?;
                }
                let sums = engine.aux_mac_rows(&rows, &inputs)?;
                for j in lo..hi {
                    let p = sums[2 * (j - lo)];
                    let m = sums[2 * (j - lo) + 1];
                    let z = (p as f64 - m as f64)
                        * f64::from(agg_quant.step())
                        * f64::from(w_quant.step());
                    out[v][j] = if self.relu {
                        // ReLU as an SFU max-with-zero.
                        -engine.sfu_min(-z, 0.0)
                    } else {
                        z
                    };
                }
            }
            engine.attr_write(8 * f_out as u64);
        }
        engine.output_write(8 * (n * f_out) as u64);

        Ok(AlgoRun {
            output: out,
            iterations: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaasXConfig;
    use gaasx_graph::generators;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn oracle(input: &GcnInput, weights: &[Vec<f32>], relu: bool) -> Vec<Vec<f64>> {
        let n = input.graph.num_vertices() as usize;
        let f_in = weights.len();
        let f_out = weights[0].len();
        let in_deg = input.graph.in_degrees();
        let mut agg = vec![vec![0.0f64; f_in]; n];
        for e in input.graph.iter() {
            let nv = 1.0 / (f64::from(in_deg[e.dst.index()]) + 1.0);
            for (k, slot) in agg[e.dst.index()].iter_mut().enumerate() {
                *slot += nv * f64::from(input.features[e.src.index()][k]);
            }
        }
        for (v, row) in agg.iter_mut().enumerate() {
            let nv = 1.0 / (f64::from(in_deg[v]) + 1.0);
            for (k, slot) in row.iter_mut().enumerate() {
                *slot += nv * f64::from(input.features[v][k]);
            }
        }
        let mut out = vec![vec![0.0f64; f_out]; n];
        for v in 0..n {
            for j in 0..f_out {
                let z: f64 = (0..f_in)
                    .map(|k| agg[v][k] * f64::from(weights[k][j]))
                    .sum();
                out[v][j] = if relu { z.max(0.0) } else { z };
            }
        }
        out
    }

    fn random_input(n_pow: u32, edges: usize, f_in: usize, seed: u64) -> GcnInput {
        let graph =
            generators::rmat(&generators::RmatConfig::new(1 << n_pow, edges).with_seed(seed))
                .unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let features = (0..graph.num_vertices())
            .map(|_| (0..f_in).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        GcnInput { graph, features }
    }

    fn random_weights(f_in: usize, f_out: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..f_in)
            .map(|_| (0..f_out).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn matches_oracle() {
        let input = random_input(6, 300, 8, 21);
        let weights = random_weights(8, 12, 22);
        let layer = GcnLayer::new(weights.clone());
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let got = layer.execute(&mut engine, &input).unwrap().output;
        let want = oracle(&input, &weights, true);
        for (a_row, b_row) in got.iter().zip(&want) {
            for (a, b) in a_row.iter().zip(b_row) {
                assert!((a - b).abs() < 0.02 * b.abs().max(0.5), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let input = random_input(5, 100, 4, 3);
        // All-negative weights force negative pre-activations.
        let weights = vec![vec![-1.0f32; 4]; 4];
        let layer = GcnLayer::new(weights);
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let got = layer.execute(&mut engine, &input).unwrap().output;
        assert!(got.iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn linear_mode_keeps_signs() {
        let input = random_input(5, 100, 4, 4);
        let mut layer = GcnLayer::new(vec![vec![-1.0f32; 2]; 4]);
        layer.relu = false;
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let got = layer.execute(&mut engine, &input).unwrap().output;
        assert!(got.iter().flatten().any(|&v| v < 0.0));
    }

    #[test]
    fn validates_shapes() {
        let input = random_input(5, 100, 4, 5);
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        // f_in exceeding the burst cap.
        assert!(GcnLayer::new(random_weights(17, 2, 1))
            .execute(&mut engine, &input)
            .is_err());
        // Ragged weights.
        let mut ragged = random_weights(4, 3, 1);
        ragged[2].pop();
        assert!(GcnLayer::new(ragged).execute(&mut engine, &input).is_err());
        // Feature/vertex mismatch.
        let mut bad = input.clone();
        bad.features.pop();
        assert!(GcnLayer::new(random_weights(4, 3, 1))
            .execute(&mut engine, &bad)
            .is_err());
        // Negative features.
        let mut neg = input.clone();
        neg.features[0][0] = -1.0;
        assert!(GcnLayer::new(random_weights(4, 3, 1))
            .execute(&mut engine, &neg)
            .is_err());
    }

    #[test]
    fn two_layers_stack() {
        let input = random_input(5, 120, 6, 9);
        let l1 = GcnLayer::new(random_weights(6, 8, 10));
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let hidden = l1.execute(&mut engine, &input).unwrap().output;
        let input2 = GcnInput {
            graph: input.graph.clone(),
            features: hidden
                .iter()
                .map(|r| r.iter().map(|&v| v as f32).collect())
                .collect(),
        };
        let l2 = GcnLayer::new(random_weights(8, 4, 11));
        let out = l2.execute(&mut engine, &input2).unwrap().output;
        assert_eq!(out.len(), input.graph.num_vertices() as usize);
        assert_eq!(out[0].len(), 4);
    }
}
