//! PageRank mapped to SpMV-multiply (paper §IV, Fig 9(c)).

use gaasx_graph::partition::TraversalOrder;
use gaasx_graph::{CooGraph, Edge};
use gaasx_xbar::fixed::Quantizer;

use crate::algorithms::{AlgoRun, Algorithm, ShardableAlgorithm};
use crate::engine::{partition_for_streaming, CellLayout, Engine};
use crate::error::CoreError;
use crate::sharded::ShardRunner;

/// PageRank on GaaS-X.
///
/// Per the paper's mapping: reciprocal out-degrees of the source vertices
/// are loaded into the MAC crossbars, `(src, dst)` pairs into the CAM
/// crossbars. For every destination vertex in the loaded range, a CAM
/// search over the destination field produces the hit vector, the MAC
/// crossbar accumulates `rank(U) × 1/OutDeg(U)` over the enabled rows, and
/// the SFU applies `rank(V) = (1 − α) + α · Σ` (Equation 3).
///
/// Iterates until the L1 rank change per vertex drops below `tolerance` or
/// `max_iterations` is reached.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRank {
    /// Damping factor α (paper Equation 3). Default 0.85.
    pub damping: f64,
    /// Iteration cap. Default 20.
    pub max_iterations: u32,
    /// Mean L1 change per vertex considered converged. Default 1e-6.
    pub tolerance: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            max_iterations: 20,
            tolerance: 1e-6,
        }
    }
}

impl PageRank {
    /// PageRank with a fixed iteration count and no early convergence exit.
    pub fn fixed_iterations(iters: u32) -> Self {
        PageRank {
            max_iterations: iters,
            tolerance: 0.0,
            ..PageRank::default()
        }
    }
}

impl Algorithm for PageRank {
    type Input = CooGraph;
    type Output = Vec<f64>;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn input_edges(input: &CooGraph) -> u64 {
        input.num_edges() as u64
    }

    fn execute(
        &self,
        engine: &mut Engine,
        graph: &CooGraph,
    ) -> Result<AlgoRun<Vec<f64>>, CoreError> {
        self.execute_on(engine, graph)
    }
}

impl ShardableAlgorithm for PageRank {
    fn execute_on<R: ShardRunner>(
        &self,
        runner: &mut R,
        graph: &CooGraph,
    ) -> Result<AlgoRun<Vec<f64>>, CoreError> {
        if !(0.0..=1.0).contains(&self.damping) {
            return Err(CoreError::InvalidInput(format!(
                "damping {} outside [0, 1]",
                self.damping
            )));
        }
        let n = graph.num_vertices() as usize;
        if n == 0 {
            return Ok(AlgoRun {
                output: Vec::new(),
                iterations: 0,
            });
        }
        let out_deg = graph.out_degrees();
        // Reciprocal out-degrees are static across iterations; 1/deg ∈ (0, 1].
        let w_quant = Quantizer::for_max_value(1.0, runner.engine().weight_bits())?;
        let inv_deg_code: Vec<u32> = out_deg
            .iter()
            .map(|&d| {
                if d == 0 {
                    0
                } else {
                    w_quant.encode(1.0 / d as f32)
                }
            })
            .collect();

        let grid = partition_for_streaming(graph)?;
        let capacity = runner.engine().block_capacity();
        let mut ranks = vec![1.0f64; n];
        let mut rank_code: Vec<u32> = Vec::with_capacity(n);
        let mut iterations = 0;

        for _ in 0..self.max_iterations {
            // Input codes must cover the current rank range.
            let max_rank = ranks.iter().cloned().fold(1.0f64, f64::max);
            let r_quant = Quantizer::for_max_value((max_rank * 1.05) as f32, 16)?;

            // The quantizer is fixed for the iteration and a MAC input
            // depends only on the edge's source, so the previous iteration's
            // ranks are encoded once per vertex here rather than once per
            // hit row inside the gather loop.
            rank_code.clear();
            rank_code.extend(ranks.iter().map(|&r| r_quant.encode(r as f32)));

            // Column-major shard streaming: destinations of a shard are
            // contiguous, so gathered updates stay in the attribute buffer.
            // The pass reads the previous iteration's ranks (the encoded
            // snapshot) and emits `(dst, Σ rank/deg)` contributions per
            // shard.
            let rank_code = &rank_code;
            let contributions =
                runner.for_each_shard(&grid, TraversalOrder::ColumnMajor, |engine, shard| {
                    let mut contribs: Vec<(u32, f64)> = Vec::new();
                    let mut hits = gaasx_xbar::HitVector::new(0);
                    for chunk in shard.edges().chunks(capacity) {
                        let cells =
                            |e: &Edge, c: &mut Vec<u32>| c.push(inv_deg_code[e.src.index()]);
                        let block = engine.load_block(chunk, CellLayout::PerEdge(&cells))?;
                        for &dst in block.distinct_dsts() {
                            engine.search_dst_into(dst, &mut hits);
                            let code = engine.gather_rows(
                                &hits,
                                &mut |row| rank_code[block.edge(row).src.index()],
                                0,
                            )?;
                            let sum = f64::from(r_quant.decode_product_sum(&w_quant, code));
                            contribs.push((dst.raw(), sum));
                        }
                    }
                    Ok(contribs)
                })?;

            // Sequential reduce in canonical shard order on the primary.
            let engine = runner.engine();
            let mut acc = vec![0.0f64; n];
            for contribs in &contributions {
                for &(dst, sum) in contribs {
                    let v = dst as usize;
                    acc[v] = engine.sfu_add(acc[v], sum);
                    engine.attr_write(8);
                }
            }

            // Apply phase: rank(V) = (1 − α) + α · Σ.
            iterations += 1;
            let mut delta = 0.0;
            for v in 0..n {
                let damped = engine.sfu_mul(self.damping, acc[v]);
                let new_rank = engine.sfu_add(1.0 - self.damping, damped);
                delta += (new_rank - ranks[v]).abs();
                ranks[v] = new_rank;
                engine.attr_write(8);
            }
            engine.output_write(8 * n as u64);
            if delta / n as f64 <= self.tolerance {
                break;
            }
        }

        Ok(AlgoRun {
            output: ranks,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaasXConfig;
    use gaasx_graph::generators;

    fn run(graph: &CooGraph, pr: &PageRank) -> AlgoRun<Vec<f64>> {
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        pr.execute(&mut engine, graph).unwrap()
    }

    /// Oracle: same recurrence in f64.
    fn oracle(graph: &CooGraph, damping: f64, iters: u32) -> Vec<f64> {
        let n = graph.num_vertices() as usize;
        let deg = graph.out_degrees();
        let mut ranks = vec![1.0f64; n];
        for _ in 0..iters {
            let mut acc = vec![0.0f64; n];
            for e in graph.iter() {
                acc[e.dst.index()] += ranks[e.src.index()] / deg[e.src.index()] as f64;
            }
            for v in 0..n {
                ranks[v] = (1.0 - damping) + damping * acc[v];
            }
        }
        ranks
    }

    #[test]
    fn matches_oracle_on_cycle() {
        // On a cycle every vertex keeps rank exactly 1.
        let g = generators::cycle_graph(8);
        let run = run(&g, &PageRank::fixed_iterations(5));
        for r in &run.output {
            assert!((r - 1.0).abs() < 1e-3, "rank {r}");
        }
    }

    #[test]
    fn matches_oracle_on_fig7() {
        let g = generators::paper_fig7_graph();
        let pr = PageRank::fixed_iterations(10);
        let got = run(&g, &pr).output;
        let want = oracle(&g, 0.85, 10);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn matches_oracle_on_rmat() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 400).with_seed(3)).unwrap();
        let pr = PageRank::fixed_iterations(8);
        let got = run(&g, &pr).output;
        let want = oracle(&g, 0.85, 8);
        let mean_err: f64 = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / want.len() as f64;
        assert!(mean_err < 1e-2, "mean error {mean_err}");
    }

    #[test]
    fn converges_early_on_stable_graph() {
        let g = generators::cycle_graph(6);
        let pr = PageRank {
            max_iterations: 50,
            tolerance: 1e-9,
            ..PageRank::default()
        };
        let r = run(&g, &pr);
        assert!(r.iterations < 10, "took {} iterations", r.iterations);
    }

    #[test]
    fn rejects_bad_damping() {
        let g = generators::cycle_graph(3);
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let pr = PageRank {
            damping: 1.5,
            ..PageRank::default()
        };
        assert!(pr.execute(&mut engine, &g).is_err());
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = CooGraph::empty(0);
        let r = run(&g, &PageRank::default());
        assert!(r.output.is_empty());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn hub_receives_high_rank() {
        // All spokes point at vertex 0.
        let g = generators::star_graph(10).transposed();
        let r = run(&g, &PageRank::fixed_iterations(10)).output;
        assert!(r[0] > r[1] * 2.0, "hub {} spoke {}", r[0], r[1]);
    }
}
