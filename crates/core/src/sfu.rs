//! Special function unit model: scalar arithmetic with op accounting.
//!
//! The SFU (paper §III-A) holds "shift and add units (SA) and scalar
//! arithmetic and logic units (sALU) to further process the MAC crossbar
//! outputs", e.g. the min-reduction of SSSP's distance update or PageRank's
//! damping step. Every arithmetic call routes through this struct so its
//! operation count feeds the energy/latency model.

use serde::{Deserialize, Serialize};

/// Scalar ALU with operation counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Sfu {
    adds: u64,
    muls: u64,
    mins: u64,
    cmps: u64,
}

impl Sfu {
    /// A fresh SFU with zeroed counters.
    pub fn new() -> Self {
        Sfu::default()
    }

    /// Scalar addition (also used for subtraction).
    pub fn add(&mut self, a: f64, b: f64) -> f64 {
        self.adds = self.adds.saturating_add(1);
        a + b
    }

    /// Unsigned accumulator addition, saturating at `u64::MAX`.
    ///
    /// The hardware accumulator has a finite width; a wide high-weight
    /// gather that overflows it clamps instead of wrapping (or panicking
    /// in a debug build). Counted — and charged by the energy model — as
    /// one add regardless of saturation: a clamped add still cycles the
    /// adder once.
    pub fn add_u64(&mut self, a: u64, b: u64) -> u64 {
        self.adds = self.adds.saturating_add(1);
        a.saturating_add(b)
    }

    /// Scalar multiplication.
    pub fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.muls = self.muls.saturating_add(1);
        a * b
    }

    /// Scalar minimum (SSSP/BFS distance reduction).
    pub fn min(&mut self, a: f64, b: f64) -> f64 {
        self.mins = self.mins.saturating_add(1);
        a.min(b)
    }

    /// Scalar comparison.
    pub fn less_than(&mut self, a: f64, b: f64) -> bool {
        self.cmps = self.cmps.saturating_add(1);
        a < b
    }

    /// Total operations issued.
    pub fn total_ops(&self) -> u64 {
        self.adds
            .saturating_add(self.muls)
            .saturating_add(self.mins)
            .saturating_add(self.cmps)
    }

    /// `(adds, muls, mins, cmps)` breakdown.
    pub fn breakdown(&self) -> (u64, u64, u64, u64) {
        (self.adds, self.muls, self.mins, self.cmps)
    }

    /// Adds another SFU's counters into this one — used when a primary
    /// engine absorbs the arithmetic issued by sibling worker engines.
    pub fn merge(&mut self, other: &Sfu) {
        self.adds = self.adds.saturating_add(other.adds);
        self.muls = self.muls.saturating_add(other.muls);
        self.mins = self.mins.saturating_add(other.mins);
        self.cmps = self.cmps.saturating_add(other.cmps);
    }

    /// Resets the counters.
    pub fn reset(&mut self) {
        *self = Sfu::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_compute_and_count() {
        let mut s = Sfu::new();
        assert_eq!(s.add(1.0, 2.0), 3.0);
        assert_eq!(s.mul(3.0, 4.0), 12.0);
        assert_eq!(s.min(5.0, 2.0), 2.0);
        assert!(s.less_than(1.0, 2.0));
        assert_eq!(s.total_ops(), 4);
        assert_eq!(s.breakdown(), (1, 1, 1, 1));
    }

    #[test]
    fn add_u64_saturates_and_counts() {
        let mut s = Sfu::new();
        assert_eq!(s.add_u64(3, 4), 7);
        assert_eq!(s.add_u64(u64::MAX, 5), u64::MAX);
        assert_eq!(s.breakdown().0, 2, "saturated add still counts once");
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Sfu::new();
        a.add(1.0, 1.0);
        a.min(1.0, 2.0);
        let mut b = Sfu::new();
        b.mul(2.0, 2.0);
        b.less_than(1.0, 2.0);
        b.add_u64(1, 2);
        a.merge(&b);
        assert_eq!(a.breakdown(), (2, 1, 1, 1));
        assert_eq!(a.total_ops(), 5);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = Sfu::new();
        s.add(1.0, 1.0);
        s.reset();
        assert_eq!(s.total_ops(), 0);
    }
}
