//! Error type for the accelerator core.

use std::fmt;

use gaasx_graph::GraphError;
use gaasx_xbar::XbarError;

/// Errors raised while configuring or running the GaaS-X accelerator.
#[derive(Debug)]
pub enum CoreError {
    /// The underlying crossbar device rejected an operation.
    Device(XbarError),
    /// The graph substrate rejected an operation.
    Graph(GraphError),
    /// An accelerator configuration parameter was invalid.
    InvalidConfig(String),
    /// An algorithm received input it cannot process.
    InvalidInput(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Device(e) => write!(f, "crossbar device error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Device(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XbarError> for CoreError {
    fn from(e: XbarError) -> Self {
        CoreError::Device(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        use std::error::Error;
        let e = CoreError::from(XbarError::InvalidParameter("x".into()));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("crossbar"));
    }
}
