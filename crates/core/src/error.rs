//! Error type for the accelerator core.

use std::fmt;

use gaasx_graph::GraphError;
use gaasx_sim::RunReport;
use gaasx_xbar::XbarError;

/// Errors raised while configuring or running the GaaS-X accelerator.
#[derive(Debug)]
pub enum CoreError {
    /// The underlying crossbar device rejected an operation.
    Device(XbarError),
    /// The graph substrate rejected an operation.
    Graph(GraphError),
    /// An accelerator configuration parameter was invalid.
    InvalidConfig(String),
    /// An algorithm received input it cannot process.
    InvalidInput(String),
    /// A device fault was detected that the configured
    /// [`RecoveryPolicy`](crate::RecoveryPolicy) could not recover from
    /// (retry budget exhausted with no spare row left). Graceful
    /// degradation: when the run was driven through
    /// [`GaasX`](crate::GaasX), `report` carries the partial [`RunReport`]
    /// accumulated up to the fault, so the cost of the aborted work is
    /// still observable.
    DeviceFault {
        /// What failed and where.
        detail: String,
        /// Partial run report up to the fault, when a driver attached one.
        report: Option<Box<RunReport>>,
    },
    /// A cooperative cancellation checkpoint found the query past its
    /// modeled-time budget (see [`Engine::set_deadline`]). Mirrors the
    /// [`CoreError::DeviceFault`] contract: when the run was driven
    /// through [`GaasX`](crate::GaasX), `report` carries the partial
    /// [`RunReport`] accumulated up to the cancellation point, so the
    /// cost of the abandoned work is still observable and billable.
    ///
    /// [`Engine::set_deadline`]: crate::engine::Engine::set_deadline
    Cancelled {
        /// Where the deadline fired and by how much it was exceeded.
        detail: String,
        /// Partial run report up to the cancellation, when a driver
        /// attached one.
        report: Option<Box<RunReport>>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Device(e) => write!(f, "crossbar device error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::DeviceFault { detail, .. } => {
                write!(f, "unrecoverable device fault: {detail}")
            }
            CoreError::Cancelled { detail, .. } => {
                write!(f, "query cancelled: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Device(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XbarError> for CoreError {
    fn from(e: XbarError) -> Self {
        CoreError::Device(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        use std::error::Error;
        let e = CoreError::from(XbarError::InvalidParameter("x".into()));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("crossbar"));
    }

    #[test]
    fn device_fault_carries_optional_partial_report() {
        use std::error::Error;
        let bare = CoreError::DeviceFault {
            detail: "row 7 unprogrammable".into(),
            report: None,
        };
        assert!(bare.to_string().contains("unrecoverable device fault"));
        assert!(bare.to_string().contains("row 7"));
        assert!(bare.source().is_none());
        let with_report = CoreError::DeviceFault {
            detail: "x".into(),
            report: Some(Box::new(RunReport::new("gaasx", "pagerank", "t"))),
        };
        match with_report {
            CoreError::DeviceFault {
                report: Some(r), ..
            } => assert_eq!(r.engine, "gaasx"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn cancelled_mirrors_the_device_fault_contract() {
        use std::error::Error;
        let bare = CoreError::Cancelled {
            detail: "deadline 100 ns exceeded at block 3".into(),
            report: None,
        };
        assert!(bare.to_string().contains("query cancelled"));
        assert!(bare.to_string().contains("deadline 100 ns"));
        assert!(bare.source().is_none());
        let with_report = CoreError::Cancelled {
            detail: "x".into(),
            report: Some(Box::new(RunReport::new("gaasx", "bfs", "t"))),
        };
        match with_report {
            CoreError::Cancelled {
                report: Some(r), ..
            } => assert_eq!(r.engine, "gaasx"),
            _ => unreachable!(),
        }
    }
}
