//! Accelerator configuration and the Table I component inventory.

use serde::{Deserialize, Serialize};

use gaasx_sim::des::SchedulePolicy;
use gaasx_sim::Nanos;
use gaasx_xbar::energy::DeviceEnergyModel;
use gaasx_xbar::geometry::{CamGeometry, MacGeometry};
use gaasx_xbar::{FaultModel, Fidelity, Kernel, SearchMode};

use crate::error::CoreError;

/// Fault-recovery policy of the engine's write path.
///
/// The default is fully off: no verify reads, no retries, no reserved
/// spares — the fault-free fast path is untouched. With faults injected
/// (see [`GaasXConfig::fault`]) and `write_verify` on, every programmed
/// row is read back; a mismatch triggers up to `retry_budget` reprograms
/// and finally a remap onto one of `spare_rows` reserved rows. A run that
/// detects a fault it cannot recover from fails with
/// [`CoreError::DeviceFault`](crate::CoreError) instead of silently
/// computing on corrupt data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Read back every programmed CAM entry / MAC row and compare.
    pub write_verify: bool,
    /// Reprogram attempts after a verify mismatch before giving up on the
    /// row. `0` means detect-only: the first unrecovered mismatch is fatal
    /// unless a spare absorbs it.
    pub retry_budget: u32,
    /// Rows per bank reserved as remap targets (reduces block capacity by
    /// the same amount while faults are active).
    pub spare_rows: usize,
    /// Issue every CAM search three times and majority-vote the hit
    /// vectors, masking transient match-line upsets.
    pub cam_double_check: bool,
}

impl RecoveryPolicy {
    /// Everything off — the fault-free fast path (this is also `default()`).
    pub fn off() -> Self {
        RecoveryPolicy::default()
    }

    /// A forgiving production policy: verify + 3 retries + 16 spares +
    /// search double-check.
    pub fn standard() -> Self {
        RecoveryPolicy {
            write_verify: true,
            retry_budget: 3,
            spare_rows: 16,
            cam_double_check: true,
        }
    }

    /// Detect faults but never recover: verify on, zero retries, zero
    /// spares. Any detected fault surfaces as a typed `DeviceFault`.
    pub fn detect_only() -> Self {
        RecoveryPolicy {
            write_verify: true,
            retry_budget: 0,
            spare_rows: 0,
            cam_double_check: false,
        }
    }
}

/// Complete configuration of a GaaS-X accelerator instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaasXConfig {
    /// MAC crossbar geometry (per bank).
    pub mac_geometry: MacGeometry,
    /// CAM crossbar geometry (per bank).
    pub cam_geometry: CamGeometry,
    /// Number of CAM+MAC bank pairs (2048 in Table I).
    pub num_banks: usize,
    /// Numerical fidelity of the analog periphery.
    pub fidelity: Fidelity,
    /// Per-operation device energy/latency model.
    pub energy: DeviceEnergyModel,
    /// Relative sigma of analog device noise (0 disables; only observable
    /// under [`Fidelity::Quantized`]).
    pub noise_sigma: f64,
    /// Seed for the noise model.
    pub noise_seed: u64,
    /// Bandwidth for streaming shards out of the storage ReRAM into the
    /// compute arrays, GB/s. GaaS-X, like GraphR, keeps graph data in
    /// on-package memory arrays, so this is internal-memory-class bandwidth.
    pub stream_bandwidth_gbps: f64,
    /// Bytes per streamed edge record (COO: two u32 ids + f32 weight).
    pub edge_record_bytes: u64,
    /// Block dispatch discipline: synchronous waves (default, a simple
    /// controller) or event-driven earliest-available-bank scheduling.
    pub scheduler: SchedulePolicy,
    /// Seeded device-fault injection ([`FaultModel::none`] disables it and
    /// costs nothing).
    #[serde(default)]
    pub fault: FaultModel,
    /// Write-verify / retry / spare-row recovery policy (off by default).
    #[serde(default)]
    pub recovery: RecoveryPolicy,
    /// Host algorithm for deriving CAM hit vectors
    /// ([`SearchMode::Auto`] by default: a per-block cost model resolves
    /// each loaded block to Linear or Indexed at program time). Purely a
    /// functional-simulator speed knob: reports are bit-identical in all
    /// modes.
    #[serde(default)]
    pub search_mode: SearchMode,
    /// Host evaluation kernel for the device hot paths
    /// ([`Kernel::Packed`] by default: word-parallel bit-plane CAM
    /// matching and bit-sliced MAC accumulation, 64 rows per word).
    /// Purely a functional-simulator speed knob: reports are
    /// bit-identical in both kernels.
    #[serde(default)]
    pub kernel: Kernel,
}

impl GaasXConfig {
    /// The paper's Table I configuration: 2048 banks of 128×16 MAC +
    /// 128×128 CAM crossbars.
    pub fn paper() -> Self {
        GaasXConfig {
            mac_geometry: MacGeometry::paper(),
            cam_geometry: CamGeometry::paper(),
            num_banks: 2048,
            fidelity: Fidelity::Exact,
            energy: DeviceEnergyModel::paper(),
            noise_sigma: 0.0,
            noise_seed: 0,
            stream_bandwidth_gbps: 128.0,
            edge_record_bytes: 12,
            scheduler: SchedulePolicy::Waves,
            fault: FaultModel::none(),
            recovery: RecoveryPolicy::off(),
            search_mode: SearchMode::default(),
            kernel: Kernel::default(),
        }
    }

    /// A small configuration (8 banks) for fast unit tests.
    pub fn small() -> Self {
        GaasXConfig {
            num_banks: 8,
            ..GaasXConfig::paper()
        }
    }

    /// A deep-bank design point: 2048-row CAM+MAC bank pairs, 16× deeper
    /// and 16× fewer than Table I, holding the same number of resident
    /// edges. Deeper banks amortize per-block load overhead over more
    /// edges and stress the search path — a search must discriminate
    /// among 16× more rows, so this is the regime where the O(rows)
    /// linear host scan falls furthest behind the O(hits) indexed path
    /// (and where a physical TCAM's constant-time search shines).
    pub fn deep_bank() -> Self {
        GaasXConfig {
            mac_geometry: MacGeometry {
                rows: 2048,
                ..MacGeometry::paper()
            },
            cam_geometry: CamGeometry {
                rows: 2048,
                ..CamGeometry::paper()
            },
            num_banks: 128,
            ..GaasXConfig::paper()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on inconsistent geometries, zero
    /// bank counts, or non-positive bandwidth.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.mac_geometry
            .validate()
            .map_err(|e| CoreError::InvalidConfig(format!("mac geometry: {e}")))?;
        self.cam_geometry
            .validate()
            .map_err(|e| CoreError::InvalidConfig(format!("cam geometry: {e}")))?;
        if self.num_banks == 0 {
            return Err(CoreError::InvalidConfig(
                "num_banks must be positive".into(),
            ));
        }
        if self.cam_geometry.rows != self.mac_geometry.rows {
            return Err(CoreError::InvalidConfig(format!(
                "cam rows {} must match mac rows {} (one edge per paired row)",
                self.cam_geometry.rows, self.mac_geometry.rows
            )));
        }
        if !(self.stream_bandwidth_gbps.is_finite() && self.stream_bandwidth_gbps > 0.0) {
            return Err(CoreError::InvalidConfig(
                "stream_bandwidth_gbps must be positive".into(),
            ));
        }
        if self.edge_record_bytes == 0 {
            return Err(CoreError::InvalidConfig(
                "edge_record_bytes must be positive".into(),
            ));
        }
        if !(self.noise_sigma.is_finite() && self.noise_sigma >= 0.0) {
            return Err(CoreError::InvalidConfig(
                "noise_sigma must be non-negative".into(),
            ));
        }
        self.fault
            .validate()
            .map_err(|e| CoreError::InvalidConfig(format!("fault model: {e}")))?;
        if !self.fault.is_none() && self.recovery.spare_rows >= self.cam_geometry.rows {
            return Err(CoreError::InvalidConfig(format!(
                "recovery: {} spare rows leave no usable rows in a {}-row bank",
                self.recovery.spare_rows, self.cam_geometry.rows
            )));
        }
        Ok(())
    }

    /// Edges resident across all banks at once (`num_banks × cam rows`).
    pub fn resident_edges(&self) -> usize {
        self.num_banks * self.cam_geometry.rows
    }

    /// Time to stream `bytes` from storage into the compute arrays.
    pub fn stream_ns(&self, bytes: u64) -> Nanos {
        Nanos::from_ns(bytes as f64 / self.stream_bandwidth_gbps)
    }
}

impl Default for GaasXConfig {
    fn default() -> Self {
        GaasXConfig::paper()
    }
}

/// One row of the paper's Table I component inventory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Component name.
    pub name: &'static str,
    /// Configuration string as printed in the table.
    pub configuration: &'static str,
    /// Area in mm² × 10⁻³ (the table's unit).
    pub area_milli_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// The Table I inventory, verbatim from the paper.
pub fn table1_components() -> Vec<ComponentSpec> {
    vec![
        ComponentSpec {
            name: "MAC crossbar",
            configuration: "128x16x8, 2-bits/cell, number: 2048",
            area_milli_mm2: 51.2,
            power_mw: 307.20,
        },
        ComponentSpec {
            name: "DAC",
            configuration: "2-bit, number: 256x2048",
            area_milli_mm2: 0.08,
            power_mw: 1.64,
        },
        ComponentSpec {
            name: "S&H",
            configuration: "number: 1152x2048",
            area_milli_mm2: 72.00,
            power_mw: 2.56,
        },
        ComponentSpec {
            name: "ADC",
            configuration: "6-bit, 1.2GSps, number: 512",
            area_milli_mm2: 300.80,
            power_mw: 328.96,
        },
        ComponentSpec {
            name: "CAM crossbar",
            configuration: "128x128, 1-bit/cell, number: 2048",
            area_milli_mm2: 80.00,
            power_mw: 614.40,
        },
        ComponentSpec {
            name: "Central controller",
            configuration: "",
            area_milli_mm2: 1650.00,
            power_mw: 50.00,
        },
        ComponentSpec {
            name: "SFU",
            configuration: "",
            area_milli_mm2: 286.72,
            power_mw: 33.87,
        },
        ComponentSpec {
            name: "Output buffer",
            configuration: "64 KB",
            area_milli_mm2: 25.60,
            power_mw: 34.88,
        },
        ComponentSpec {
            name: "Input buffer",
            configuration: "16 KB",
            area_milli_mm2: 6.40,
            power_mw: 8.72,
        },
        ComponentSpec {
            name: "Attribute buffer",
            configuration: "512 KB",
            area_milli_mm2: 204.80,
            power_mw: 279.04,
        },
    ]
}

/// Total accelerator area in mm² (paper: 2.69 mm²).
pub fn table1_total_area_mm2() -> f64 {
    table1_components()
        .iter()
        .map(|c| c.area_milli_mm2)
        .sum::<f64>()
        / 1_000.0
}

/// Total accelerator power in W (paper: 1.66 W).
pub fn table1_total_power_w() -> f64 {
    table1_components().iter().map(|c| c.power_mw).sum::<f64>() / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        GaasXConfig::paper().validate().unwrap();
        GaasXConfig::small().validate().unwrap();
    }

    #[test]
    fn deep_bank_config_matches_paper_capacity() {
        let deep = GaasXConfig::deep_bank();
        deep.validate().unwrap();
        assert_eq!(deep.resident_edges(), GaasXConfig::paper().resident_edges());
        assert_eq!(deep.cam_geometry.rows, deep.mac_geometry.rows);
    }

    #[test]
    fn paper_capacity() {
        assert_eq!(GaasXConfig::paper().resident_edges(), 2048 * 128);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = GaasXConfig::paper();
        c.num_banks = 0;
        assert!(c.validate().is_err());
        let mut c = GaasXConfig::paper();
        c.cam_geometry.rows = 64;
        assert!(c.validate().is_err());
        let mut c = GaasXConfig::paper();
        c.stream_bandwidth_gbps = 0.0;
        assert!(c.validate().is_err());
        let mut c = GaasXConfig::paper();
        c.noise_sigma = -1.0;
        assert!(c.validate().is_err());
        let mut c = GaasXConfig::paper();
        c.fault.mac_stuck_ber = 2.0;
        assert!(c.validate().is_err());
        let mut c = GaasXConfig::paper();
        c.fault.cam_stuck_ber = 1e-4;
        c.recovery.spare_rows = 128;
        assert!(c.validate().is_err(), "spares must leave usable rows");
        c.recovery.spare_rows = 16;
        c.validate().unwrap();
    }

    #[test]
    fn recovery_policy_presets() {
        assert_eq!(RecoveryPolicy::off(), RecoveryPolicy::default());
        assert!(!RecoveryPolicy::off().write_verify);
        let std = RecoveryPolicy::standard();
        assert!(std.write_verify && std.cam_double_check);
        assert!(std.retry_budget > 0 && std.spare_rows > 0);
        let detect = RecoveryPolicy::detect_only();
        assert!(detect.write_verify);
        assert_eq!(detect.retry_budget, 0);
        assert_eq!(detect.spare_rows, 0);
    }

    #[test]
    fn fault_fields_default_to_off() {
        // The fault/recovery fields are additive: a paper() config carries
        // no faults and the all-off recovery policy.
        let c = GaasXConfig::paper();
        assert!(c.fault.is_none());
        assert_eq!(c.recovery, RecoveryPolicy::off());
    }

    #[test]
    fn search_mode_defaults_to_auto() {
        // Additive field: paper() and serde-defaulted configs pick the
        // cost-modeled Auto path, which resolves per block and is
        // report-identical to both fixed modes. (Indexed-by-default was a
        // measured regression: BENCH_06 showed it slowing fault-free
        // BFS/CC/SSSP on the paper bank by up to 1.66x.)
        assert_eq!(GaasXConfig::paper().search_mode, SearchMode::Auto);
    }

    #[test]
    fn table1_totals_match_paper() {
        // Paper: 2.69 mm² and 1.66 W (the printed component areas sum to
        // 2.678 mm²; the paper's own total rounds to 2.69).
        assert!((table1_total_area_mm2() - 2.69).abs() < 0.02);
        assert!((table1_total_power_w() - 1.66).abs() < 0.01);
    }

    #[test]
    fn stream_time_scales() {
        let c = GaasXConfig::paper();
        // 128 bytes at 128 GB/s = 1 ns.
        assert!((c.stream_ns(128).ns() - 1.0).abs() < 1e-12);
    }
}
