//! The top-level GaaS-X accelerator API.

use gaasx_sim::{RunReport, Tracer};

use crate::algorithms::{Algorithm, ShardableAlgorithm};
use crate::config::GaasXConfig;
use crate::engine::Engine;
use crate::error::CoreError;
use crate::sharded::ShardedEngine;

/// A GaaS-X accelerator instance.
///
/// Owns a configuration and executes algorithms through fresh [`Engine`]
/// instances, so consecutive runs never share device state or statistics.
///
/// ```
/// use gaasx_core::{GaasX, GaasXConfig};
/// use gaasx_core::algorithms::PageRank;
/// use gaasx_graph::generators;
///
/// let mut accel = GaasX::new(GaasXConfig::small());
/// let graph = generators::paper_fig7_graph();
/// let outcome = accel.run(&PageRank::fixed_iterations(5), &graph)?;
/// assert_eq!(outcome.result.len(), 5);
/// assert!(outcome.report.elapsed_ns.ns() > 0.0);
/// # Ok::<(), gaasx_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GaasX {
    config: GaasXConfig,
    tracer: Tracer,
}

/// Result of one accelerator run: the algorithm output plus the full
/// timing/energy report.
#[derive(Debug, Clone)]
pub struct RunOutcome<T> {
    /// Algorithm output.
    pub result: T,
    /// Timing, energy, and operation-count report.
    pub report: RunReport,
}

impl GaasX {
    /// Creates an accelerator with the given configuration. The
    /// configuration is validated on the first run.
    pub fn new(config: GaasXConfig) -> Self {
        GaasX {
            config,
            tracer: Tracer::null(),
        }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &GaasXConfig {
        &self.config
    }

    /// Attaches a tracer that every subsequent run's engine inherits
    /// (builder form).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a tracer that every subsequent run's engine inherits.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Runs an algorithm, labeling the report's workload with a generic
    /// size string.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid configurations or inputs.
    pub fn run<A: Algorithm>(
        &mut self,
        algorithm: &A,
        input: &A::Input,
    ) -> Result<RunOutcome<A::Output>, CoreError> {
        let edges = A::input_edges(input);
        self.run_labeled(algorithm, input, &format!("E{edges}"))
    }

    /// Runs an algorithm with an explicit workload label (e.g. a dataset
    /// abbreviation) for the report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid configurations or inputs.
    pub fn run_labeled<A: Algorithm>(
        &mut self,
        algorithm: &A,
        input: &A::Input,
        workload: &str,
    ) -> Result<RunOutcome<A::Output>, CoreError> {
        let mut engine = Engine::new(self.config.clone())?;
        engine.set_tracer(self.tracer.clone());
        engine.set_search_profile(algorithm.search_profile());
        let run = match algorithm.execute(&mut engine, input) {
            Ok(run) => run,
            Err(e) => {
                return Err(Self::attach_partial_report(
                    e,
                    &mut engine,
                    algorithm.name(),
                    workload,
                    A::input_edges(input),
                ))
            }
        };
        let report = engine.finish(
            "gaasx",
            algorithm.name(),
            workload,
            run.iterations,
            A::input_edges(input),
        );
        Ok(RunOutcome {
            result: run.output,
            report,
        })
    }

    /// Graceful degradation: an unrecoverable [`CoreError::DeviceFault`]
    /// or deadline [`CoreError::Cancelled`] aborts the algorithm, but the
    /// work done up to the abort still cost time and energy — attach the
    /// partial report so callers can account for (and bill) it. Other
    /// errors pass through untouched.
    fn attach_partial_report(
        e: CoreError,
        engine: &mut Engine,
        algorithm: &str,
        workload: &str,
        num_edges: u64,
    ) -> CoreError {
        match e {
            CoreError::DeviceFault {
                detail,
                report: None,
            } => {
                let partial = engine.finish("gaasx", algorithm, workload, 0, num_edges);
                CoreError::DeviceFault {
                    detail,
                    report: Some(Box::new(partial)),
                }
            }
            CoreError::Cancelled {
                detail,
                report: None,
            } => {
                let partial = engine.finish("gaasx", algorithm, workload, 0, num_edges);
                CoreError::Cancelled {
                    detail,
                    report: Some(Box::new(partial)),
                }
            }
            other => other,
        }
    }

    /// Runs a shardable algorithm with its shard stream fanned out over
    /// `jobs` worker threads (see [`ShardedEngine`]). For noise-free
    /// configurations the merged report is bit-identical to [`GaasX::run`];
    /// only the host wall-clock changes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid configurations or inputs.
    pub fn run_sharded<A: ShardableAlgorithm>(
        &mut self,
        algorithm: &A,
        input: &A::Input,
        jobs: usize,
    ) -> Result<RunOutcome<A::Output>, CoreError> {
        let edges = A::input_edges(input);
        self.run_labeled_sharded(algorithm, input, &format!("E{edges}"), jobs)
    }

    /// [`GaasX::run_sharded`] with an explicit workload label.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid configurations or inputs.
    pub fn run_labeled_sharded<A: ShardableAlgorithm>(
        &mut self,
        algorithm: &A,
        input: &A::Input,
        workload: &str,
        jobs: usize,
    ) -> Result<RunOutcome<A::Output>, CoreError> {
        let mut sharded = ShardedEngine::new(self.config.clone(), jobs)?;
        sharded.set_tracer(self.tracer.clone());
        sharded.set_search_profile(algorithm.search_profile());
        let run = match algorithm.execute_on(&mut sharded, input) {
            Ok(run) => run,
            Err(CoreError::DeviceFault {
                detail,
                report: None,
            }) => {
                let partial = sharded.finish(
                    "gaasx",
                    algorithm.name(),
                    workload,
                    0,
                    A::input_edges(input),
                );
                return Err(CoreError::DeviceFault {
                    detail,
                    report: Some(Box::new(partial)),
                });
            }
            Err(CoreError::Cancelled {
                detail,
                report: None,
            }) => {
                let partial = sharded.finish(
                    "gaasx",
                    algorithm.name(),
                    workload,
                    0,
                    A::input_edges(input),
                );
                return Err(CoreError::Cancelled {
                    detail,
                    report: Some(Box::new(partial)),
                });
            }
            Err(e) => return Err(e),
        };
        let report = sharded.finish(
            "gaasx",
            algorithm.name(),
            workload,
            run.iterations,
            A::input_edges(input),
        );
        Ok(RunOutcome {
            result: run.output,
            report,
        })
    }
}

impl Default for GaasX {
    fn default() -> Self {
        GaasX::new(GaasXConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, PageRank, Sssp};
    use gaasx_graph::{generators, VertexId};

    #[test]
    fn runs_are_independent() {
        let mut accel = GaasX::new(GaasXConfig::small());
        let g = generators::paper_fig7_graph();
        let a = accel.run(&PageRank::fixed_iterations(3), &g).unwrap();
        let b = accel.run(&PageRank::fixed_iterations(3), &g).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(a.report.ops, b.report.ops);
    }

    #[test]
    fn report_carries_labels() {
        let mut accel = GaasX::new(GaasXConfig::small());
        let g = generators::paper_fig7_graph();
        let out = accel
            .run_labeled(&Sssp::from_source(VertexId::new(0)), &g, "WV")
            .unwrap();
        assert_eq!(out.report.engine, "gaasx");
        assert_eq!(out.report.algorithm, "sssp");
        assert_eq!(out.report.workload, "WV");
        assert_eq!(out.report.num_edges, 8);
        assert!(out.report.iterations >= 1);
    }

    #[test]
    fn bfs_uses_less_write_energy_than_sssp() {
        // On a unit-weight graph BFS and SSSP propagate identically, but
        // BFS skips all MAC cell programming (preset weight columns).
        let mut accel = GaasX::new(GaasXConfig::small());
        let g = generators::rmat(
            &generators::RmatConfig::new(1 << 6, 300)
                .with_max_weight(1)
                .with_seed(4),
        )
        .unwrap();
        let bfs = accel.run(&Bfs::from_source(VertexId::new(0)), &g).unwrap();
        let sssp = accel.run(&Sssp::from_source(VertexId::new(0)), &g).unwrap();
        assert_eq!(bfs.result, sssp.result);
        assert_eq!(bfs.report.iterations, sssp.report.iterations);
        assert!(bfs.report.ops.cells_written < sssp.report.ops.cells_written);
    }

    #[test]
    fn device_noise_degrades_gracefully() {
        // Failure injection: under quantized periphery with conductance
        // noise, PageRank stays usable at 5% sigma and degrades
        // monotonically in error magnitude, never panicking.
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 400).with_seed(6)).unwrap();
        let clean = GaasX::new(GaasXConfig::small())
            .run(&PageRank::fixed_iterations(5), &g)
            .unwrap()
            .result;
        let mut errs = Vec::new();
        for sigma in [0.02, 0.20] {
            let noisy = GaasX::new(GaasXConfig {
                fidelity: gaasx_xbar::Fidelity::Quantized,
                noise_sigma: sigma,
                noise_seed: 11,
                ..GaasXConfig::small()
            })
            .run(&PageRank::fixed_iterations(5), &g)
            .unwrap()
            .result;
            let err: f64 = noisy
                .iter()
                .zip(&clean)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / clean.len() as f64;
            errs.push(err);
        }
        assert!(errs[0] < 0.1, "small noise err {}", errs[0]);
        assert!(
            errs[1] >= errs[0],
            "noise should not reduce error: {errs:?}"
        );
    }

    #[test]
    fn pagerank_report_attributes_its_makespan_to_phases() {
        // The tracing-layer acceptance bar: a default (untraced) PageRank
        // run carries a non-empty per-phase breakdown whose scheduled
        // shares sum to `elapsed_ns` within 1% (here: exactly).
        let mut accel = GaasX::new(GaasXConfig::small());
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 500).with_seed(9)).unwrap();
        let out = accel.run(&PageRank::fixed_iterations(3), &g).unwrap();
        let r = &out.report;
        assert!(!r.phases.is_empty());
        let total = r.phases_total_sched_ns();
        assert!(
            (total.ns() - r.elapsed_ns.ns()).abs() <= 0.01 * r.elapsed_ns.ns(),
            "phase sum {total} vs elapsed {}",
            r.elapsed_ns
        );
        assert_eq!(total, r.elapsed_ns, "attribution is exact, not just close");
        for p in &r.phases {
            assert!(p.sched_ns >= gaasx_sim::Nanos::ZERO && p.busy_ns >= gaasx_sim::Nanos::ZERO);
        }
    }

    #[test]
    fn traced_run_streams_jsonl_events() {
        use gaasx_sim::{JsonlSink, Tracer};
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let mut accel = GaasX::new(GaasXConfig::small()).with_tracer(Tracer::with_sink(Arc::new(
            JsonlSink::to_writer(buf.clone()),
        )));
        let g = generators::paper_fig7_graph();
        accel.run(&PageRank::fixed_iterations(2), &g).unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.lines().any(|l| l.contains("\"phase\":\"load_block\"")));
        assert!(text.lines().any(|l| l.contains("\"phase\":\"dispatch\"")));
        assert!(text.lines().any(|l| l.contains("\"type\":\"counter\"")));
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn sharded_runs_match_serial_bit_for_bit() {
        let mut accel = GaasX::new(GaasXConfig::small());
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 1200).with_seed(5)).unwrap();
        let serial = accel.run(&PageRank::fixed_iterations(3), &g).unwrap();
        for jobs in [1, 2, 4] {
            let sharded = accel
                .run_sharded(&PageRank::fixed_iterations(3), &g, jobs)
                .unwrap();
            assert_eq!(sharded.result, serial.result, "jobs={jobs}");
            assert_eq!(sharded.report.ops, serial.report.ops, "jobs={jobs}");
            assert_eq!(
                sharded.report.elapsed_ns, serial.report.elapsed_ns,
                "jobs={jobs}"
            );
            assert_eq!(
                sharded.report.energy.total_nj(),
                serial.report.energy.total_nj(),
                "jobs={jobs}"
            );
        }
        let sssp_serial = accel.run(&Sssp::from_source(VertexId::new(0)), &g).unwrap();
        let sssp_sharded = accel
            .run_sharded(&Sssp::from_source(VertexId::new(0)), &g, 3)
            .unwrap();
        assert_eq!(sssp_sharded.result, sssp_serial.result);
        assert_eq!(sssp_sharded.report.ops, sssp_serial.report.ops);
        assert_eq!(
            sssp_sharded.report.elapsed_ns,
            sssp_serial.report.elapsed_ns
        );
    }

    #[test]
    fn recovered_run_matches_fault_free_results() {
        use crate::config::RecoveryPolicy;
        use gaasx_xbar::FaultModel;
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 300).with_seed(8)).unwrap();
        let clean = GaasX::new(GaasXConfig::small())
            .run(&PageRank::fixed_iterations(3), &g)
            .unwrap();
        let mut faulty = GaasX::new(GaasXConfig {
            fault: FaultModel {
                cam_stuck_ber: 3e-4,
                mac_stuck_ber: 3e-4,
                write_fail_rate: 0.02,
                seed: 5,
                ..FaultModel::none()
            },
            recovery: RecoveryPolicy::standard(),
            ..GaasXConfig::small()
        });
        let recovered = faulty.run(&PageRank::fixed_iterations(3), &g).unwrap();
        // Stuck cells and transient write failures are fully masked by
        // verify/retry/remap: the scores are exactly the clean ones.
        assert_eq!(recovered.result, clean.result);
        let f = &recovered.report.faults;
        assert!(f.verify_reads > 0, "{f:?}");
        assert!(f.faults_detected > 0, "{f:?}");
        assert!(recovered.report.ops.verify_reads > 0);
        // Recovery is visible in the cost model too: extra programming
        // attempts and verify reads make the run slower than clean.
        assert!(recovered.report.elapsed_ns > clean.report.elapsed_ns);
    }

    #[test]
    fn unrecoverable_fault_returns_partial_report() {
        use crate::config::RecoveryPolicy;
        use crate::error::CoreError;
        use gaasx_xbar::FaultModel;
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 300).with_seed(8)).unwrap();
        let config = GaasXConfig {
            fault: FaultModel {
                cam_stuck_ber: 1e-2,
                seed: 2,
                ..FaultModel::none()
            },
            recovery: RecoveryPolicy::detect_only(),
            ..GaasXConfig::small()
        };
        for sharded in [false, true] {
            let mut accel = GaasX::new(config.clone());
            let err = if sharded {
                accel
                    .run_sharded(&PageRank::fixed_iterations(3), &g, 2)
                    .unwrap_err()
            } else {
                accel.run(&PageRank::fixed_iterations(3), &g).unwrap_err()
            };
            match err {
                CoreError::DeviceFault {
                    report: Some(report),
                    ..
                } => {
                    // The partial report accounts for the aborted work.
                    assert!(report.ops.verify_reads > 0, "sharded={sharded}");
                    assert!(report.faults.faults_detected > 0, "sharded={sharded}");
                }
                other => panic!("want DeviceFault with report, got {other} (sharded={sharded})"),
            }
        }
    }

    #[test]
    fn invalid_config_fails_at_run() {
        let mut config = GaasXConfig::small();
        config.num_banks = 0;
        let mut accel = GaasX::new(config);
        let g = generators::path_graph(3);
        assert!(accel.run(&PageRank::default(), &g).is_err());
    }
}
