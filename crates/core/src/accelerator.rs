//! The top-level GaaS-X accelerator API.

use gaasx_sim::RunReport;

use crate::algorithms::Algorithm;
use crate::config::GaasXConfig;
use crate::engine::Engine;
use crate::error::CoreError;

/// A GaaS-X accelerator instance.
///
/// Owns a configuration and executes algorithms through fresh [`Engine`]
/// instances, so consecutive runs never share device state or statistics.
///
/// ```
/// use gaasx_core::{GaasX, GaasXConfig};
/// use gaasx_core::algorithms::PageRank;
/// use gaasx_graph::generators;
///
/// let mut accel = GaasX::new(GaasXConfig::small());
/// let graph = generators::paper_fig7_graph();
/// let outcome = accel.run(&PageRank::fixed_iterations(5), &graph)?;
/// assert_eq!(outcome.result.len(), 5);
/// assert!(outcome.report.elapsed_ns > 0.0);
/// # Ok::<(), gaasx_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GaasX {
    config: GaasXConfig,
}

/// Result of one accelerator run: the algorithm output plus the full
/// timing/energy report.
#[derive(Debug, Clone)]
pub struct RunOutcome<T> {
    /// Algorithm output.
    pub result: T,
    /// Timing, energy, and operation-count report.
    pub report: RunReport,
}

impl GaasX {
    /// Creates an accelerator with the given configuration. The
    /// configuration is validated on the first run.
    pub fn new(config: GaasXConfig) -> Self {
        GaasX { config }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &GaasXConfig {
        &self.config
    }

    /// Runs an algorithm, labeling the report's workload with a generic
    /// size string.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid configurations or inputs.
    pub fn run<A: Algorithm>(
        &mut self,
        algorithm: &A,
        input: &A::Input,
    ) -> Result<RunOutcome<A::Output>, CoreError> {
        let edges = A::input_edges(input);
        self.run_labeled(algorithm, input, &format!("E{edges}"))
    }

    /// Runs an algorithm with an explicit workload label (e.g. a dataset
    /// abbreviation) for the report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid configurations or inputs.
    pub fn run_labeled<A: Algorithm>(
        &mut self,
        algorithm: &A,
        input: &A::Input,
        workload: &str,
    ) -> Result<RunOutcome<A::Output>, CoreError> {
        let mut engine = Engine::new(self.config.clone())?;
        let run = algorithm.execute(&mut engine, input)?;
        let report = engine.finish(
            "gaasx",
            algorithm.name(),
            workload,
            run.iterations,
            A::input_edges(input),
        );
        Ok(RunOutcome {
            result: run.output,
            report,
        })
    }
}

impl Default for GaasX {
    fn default() -> Self {
        GaasX::new(GaasXConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, PageRank, Sssp};
    use gaasx_graph::{generators, VertexId};

    #[test]
    fn runs_are_independent() {
        let mut accel = GaasX::new(GaasXConfig::small());
        let g = generators::paper_fig7_graph();
        let a = accel.run(&PageRank::fixed_iterations(3), &g).unwrap();
        let b = accel.run(&PageRank::fixed_iterations(3), &g).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(a.report.ops, b.report.ops);
    }

    #[test]
    fn report_carries_labels() {
        let mut accel = GaasX::new(GaasXConfig::small());
        let g = generators::paper_fig7_graph();
        let out = accel
            .run_labeled(&Sssp::from_source(VertexId::new(0)), &g, "WV")
            .unwrap();
        assert_eq!(out.report.engine, "gaasx");
        assert_eq!(out.report.algorithm, "sssp");
        assert_eq!(out.report.workload, "WV");
        assert_eq!(out.report.num_edges, 8);
        assert!(out.report.iterations >= 1);
    }

    #[test]
    fn bfs_uses_less_write_energy_than_sssp() {
        // On a unit-weight graph BFS and SSSP propagate identically, but
        // BFS skips all MAC cell programming (preset weight columns).
        let mut accel = GaasX::new(GaasXConfig::small());
        let g = generators::rmat(
            &generators::RmatConfig::new(1 << 6, 300)
                .with_max_weight(1)
                .with_seed(4),
        )
        .unwrap();
        let bfs = accel.run(&Bfs::from_source(VertexId::new(0)), &g).unwrap();
        let sssp = accel.run(&Sssp::from_source(VertexId::new(0)), &g).unwrap();
        assert_eq!(bfs.result, sssp.result);
        assert_eq!(bfs.report.iterations, sssp.report.iterations);
        assert!(bfs.report.ops.cells_written < sssp.report.ops.cells_written);
    }

    #[test]
    fn device_noise_degrades_gracefully() {
        // Failure injection: under quantized periphery with conductance
        // noise, PageRank stays usable at 5% sigma and degrades
        // monotonically in error magnitude, never panicking.
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 400).with_seed(6)).unwrap();
        let clean = GaasX::new(GaasXConfig::small())
            .run(&PageRank::fixed_iterations(5), &g)
            .unwrap()
            .result;
        let mut errs = Vec::new();
        for sigma in [0.02, 0.20] {
            let noisy = GaasX::new(GaasXConfig {
                fidelity: gaasx_xbar::Fidelity::Quantized,
                noise_sigma: sigma,
                noise_seed: 11,
                ..GaasXConfig::small()
            })
            .run(&PageRank::fixed_iterations(5), &g)
            .unwrap()
            .result;
            let err: f64 = noisy
                .iter()
                .zip(&clean)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / clean.len() as f64;
            errs.push(err);
        }
        assert!(errs[0] < 0.1, "small noise err {}", errs[0]);
        assert!(errs[1] >= errs[0], "noise should not reduce error: {errs:?}");
    }

    #[test]
    fn invalid_config_fails_at_run() {
        let mut config = GaasXConfig::small();
        config.num_banks = 0;
        let mut accel = GaasX::new(config);
        let g = generators::path_graph(3);
        assert!(accel.run(&PageRank::default(), &g).is_err());
    }
}
