//! Regression test: the steady-state PageRank inner loop — CAM search plus
//! selective MAC gather on an already-loaded block — must not touch the
//! heap. The engine owns reusable hit-vector, chunk, input, and MAC-output
//! buffers that are sized on the first pass; every later pass (the common
//! case: PageRank runs tens of iterations over the same blocks) replays
//! searches from the memo and gathers into the warm buffers.
//!
//! The test installs a counting global allocator, warms the engine with two
//! full passes, then asserts a third pass performs zero allocations. It
//! lives in its own integration-test binary so no concurrently-running test
//! can disturb the counter.

#![allow(clippy::unwrap_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gaasx_core::engine::{CellLayout, Engine};
use gaasx_core::GaasXConfig;
use gaasx_graph::{generators, Edge};
use gaasx_xbar::HitVector;

/// Counts every allocation and reallocation made through the global
/// allocator; deallocations are free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_search_and_gather_allocate_nothing() {
    let graph = generators::rmat(&generators::RmatConfig::new(1 << 6, 400).with_seed(11)).unwrap();
    let mut engine = Engine::new(GaasXConfig::small()).unwrap();
    let capacity = engine.block_capacity();
    let chunk: Vec<Edge> = graph.edges().iter().take(capacity).copied().collect();

    let cells = |_e: &Edge, c: &mut Vec<u32>| c.push(1u32);
    let block = engine
        .load_block(&chunk, CellLayout::PerEdge(&cells))
        .unwrap();
    let mut hits = HitVector::new(0);

    // Two warm passes: the first physically searches and populates the memo
    // and the engine's scratch buffers; the second confirms the replay path
    // works and settles every buffer at its steady-state capacity.
    let mut warm_total = 0u64;
    for _ in 0..2 {
        for &dst in block.distinct_dsts() {
            engine.search_dst_into(dst, &mut hits);
            warm_total += engine.gather_rows(&hits, &mut |_| 1, 0).unwrap();
        }
    }
    assert!(warm_total > 0, "warm passes must do real work");

    // Measured pass: bit-for-bit the same work, zero heap traffic.
    let before = ALLOCS.load(Ordering::SeqCst);
    let mut total = 0u64;
    for &dst in block.distinct_dsts() {
        engine.search_dst_into(dst, &mut hits);
        total += engine.gather_rows(&hits, &mut |_| 1, 0).unwrap();
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - before;

    assert_eq!(
        total * 2,
        warm_total,
        "steady-state pass must match warm work"
    );
    assert_eq!(
        allocs, 0,
        "steady-state search+gather pass performed {allocs} heap allocations"
    );
}
