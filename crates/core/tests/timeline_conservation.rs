//! Property tests for the bank-occupancy timeline: for any RMAT graph, any
//! CAM [`SearchMode`], and any worker count, the [`UtilizationReport`]
//! attached to a traced run must
//!
//! * contain **non-overlapping** intervals per `(bank, lane)` track,
//! * conserve per-phase busy nanoseconds **bit-exactly** against the
//!   report's own phase attribution, and
//! * be bit-identical between the serial engine and [`run_sharded`] at
//!   every job count (the timeline is derived from merged block costs, not
//!   from worker wall clocks).
//!
//! [`run_sharded`]: gaasx_core::GaasX::run_sharded

#![allow(clippy::unwrap_used)]
use std::collections::BTreeMap;
use std::sync::Arc;

use gaasx_core::algorithms::PageRank;
use gaasx_core::{GaasX, GaasXConfig, SearchMode};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_graph::CooGraph;
use gaasx_sim::{Phase, RunReport, TimelineSink, Tracer, UtilizationReport};
use proptest::prelude::*;

fn graph_for(vertex_exp: u32, edges: usize, seed: u64) -> CooGraph {
    rmat(&RmatConfig::new(1 << vertex_exp, edges).with_seed(seed)).unwrap()
}

/// Runs three PageRank iterations with a [`TimelineSink`] attached and
/// returns the report plus the recorded intervals.
fn traced_run(
    graph: &CooGraph,
    mode: SearchMode,
    jobs: Option<usize>,
) -> (RunReport, Vec<gaasx_sim::TimelineInterval>) {
    let mut config = GaasXConfig::small();
    config.search_mode = mode;
    let sink = Arc::new(TimelineSink::new());
    let mut accel = GaasX::new(config).with_tracer(Tracer::with_sink(sink.clone()));
    let algorithm = PageRank::fixed_iterations(3);
    let report = match jobs {
        None => accel.run(&algorithm, graph).unwrap().report,
        Some(jobs) => accel.run_sharded(&algorithm, graph, jobs).unwrap().report,
    };
    (report, sink.take())
}

/// Checks the conservation invariant: the utilization attached to `report`
/// reproduces the report's own per-phase busy attribution bit-for-bit.
fn assert_conserves(report: &RunReport) {
    let util = report.utilization.as_ref().unwrap();
    for phase in Phase::ALL {
        let busy = report
            .phase(phase)
            .map_or(gaasx_sim::Nanos::ZERO, |p| p.busy_ns);
        prop_assert_eq!(
            util.phase_busy_ns[phase.index()].ns().to_bits(),
            busy.ns().to_bits(),
            "phase {} diverged: timeline {} vs report {}",
            phase.name(),
            util.phase_busy_ns[phase.index()],
            busy
        );
    }
    prop_assert_eq!(
        util.makespan_ns.ns().to_bits(),
        report.elapsed_ns.ns().to_bits()
    );
}

/// Checks that no two intervals on the same `(bank, lane)` track overlap.
fn assert_non_overlapping(intervals: &[gaasx_sim::TimelineInterval]) {
    let mut cursors: BTreeMap<(u32, u32), gaasx_sim::Nanos> = BTreeMap::new();
    for iv in intervals {
        let cursor = cursors
            .entry((iv.bank, iv.lane))
            .or_insert(gaasx_sim::Nanos::ZERO);
        prop_assert!(
            iv.start_ns >= *cursor,
            "overlap on bank {} lane {}: starts {} before {}",
            iv.bank,
            iv.lane,
            iv.start_ns,
            *cursor
        );
        prop_assert!(
            iv.dur_ns > gaasx_sim::Nanos::ZERO,
            "zero-length interval survived"
        );
        *cursor = iv.start_ns + iv.dur_ns;
    }
}

fn assert_same_utilization(a: &UtilizationReport, b: &UtilizationReport) {
    prop_assert_eq!(a, b, "utilization reports diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn timelines_conserve_and_are_job_count_invariant(
        vertex_exp in 5u32..8,
        edges in 60usize..500,
        seed in 0u64..1_000,
        mode_indexed in any::<bool>(),
    ) {
        let mode = if mode_indexed { SearchMode::Indexed } else { SearchMode::Linear };
        let graph = graph_for(vertex_exp, edges, seed);

        let (serial_report, serial_intervals) = traced_run(&graph, mode, None);
        prop_assert!(serial_report.utilization.is_some());
        assert_conserves(&serial_report);
        assert_non_overlapping(&serial_intervals);

        for jobs in [1usize, 2, 4] {
            let (report, intervals) = traced_run(&graph, mode, Some(jobs));
            assert_conserves(&report);
            assert_non_overlapping(&intervals);
            assert_same_utilization(
                report.utilization.as_ref().unwrap(),
                serial_report.utilization.as_ref().unwrap(),
            );
            prop_assert_eq!(
                &intervals,
                &serial_intervals,
                "interval streams diverged at jobs={}",
                jobs
            );
        }
    }
}
