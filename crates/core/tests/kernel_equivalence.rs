//! Packed-kernel identity gate at the engine level: a run under
//! `Kernel::Packed` (the default) must be **bit-identical** — same
//! outputs, same full [`RunReport`](gaasx_sim::RunReport) — to the same
//! run under `Kernel::Scalar`, across algorithms, bank geometries, job
//! counts, search modes, and fault injection (whose recovery path
//! exercises spare-row remapping). The kernel only changes how the host
//! evaluates device semantics, never what it bills or returns.

#![allow(clippy::unwrap_used)]
use gaasx_core::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use gaasx_core::{GaasX, GaasXConfig, RecoveryPolicy, SearchMode, ShardableAlgorithm};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_graph::{CooGraph, VertexId};
use gaasx_xbar::{FaultModel, Kernel};
use proptest::prelude::*;

/// The two benchmarked design points, shrunk to 8 banks for test speed.
fn bank_config(bank: &str, fault: bool) -> GaasXConfig {
    let mut c = match bank {
        "paper" => GaasXConfig::small(),
        "deep" => GaasXConfig {
            num_banks: 8,
            ..GaasXConfig::deep_bank()
        },
        other => panic!("unknown bank {other}"),
    };
    if fault {
        // Recoverable stuck cells and write failures under the standard
        // write-verify policy — write retries consume spare rows, so the
        // packed planes must track remapped physical rows too.
        c.fault = FaultModel {
            seed: 0xBE05,
            cam_stuck_ber: 1e-4,
            mac_stuck_ber: 1e-4,
            write_fail_rate: 1e-3,
            ..FaultModel::none()
        };
        c.recovery = RecoveryPolicy::standard();
    }
    c
}

/// Runs `algorithm` under both kernels (same geometry, jobs, fault
/// setting) and checks output and full-report identity.
fn assert_kernel_invariant<A>(algorithm: &A, input: &A::Input, cfg: &GaasXConfig, jobs: usize)
where
    A: ShardableAlgorithm,
    A::Output: PartialEq + std::fmt::Debug,
{
    let run = |kernel: Kernel| {
        let mut accel = GaasX::new(GaasXConfig {
            kernel,
            ..cfg.clone()
        });
        if jobs == 1 {
            accel.run(algorithm, input).unwrap()
        } else {
            accel.run_sharded(algorithm, input, jobs).unwrap()
        }
    };
    let packed = run(Kernel::Packed);
    let scalar = run(Kernel::Scalar);
    assert_eq!(
        packed.result,
        scalar.result,
        "{}: packed output diverged from scalar",
        algorithm.name()
    );
    assert_eq!(
        packed.report,
        scalar.report,
        "{}: packed report diverged from scalar",
        algorithm.name()
    );
    assert_eq!(
        packed.report.elapsed_ns.ns().to_bits(),
        scalar.report.elapsed_ns.ns().to_bits(),
        "{}: elapsed bits diverged",
        algorithm.name()
    );
}

fn test_graph(edges: usize, seed: u64) -> CooGraph {
    rmat(&RmatConfig::new(128, edges).with_seed(seed)).unwrap()
}

/// The full identity matrix from the ISSUE-10 gate: paper/deep banks ×
/// PR/SSSP/BFS/CC × jobs {1,2,4} × fault on/off. The fault rows run with
/// spare-row recovery, and the fixed search modes pin both the packed
/// linear scan and the packed index-probe path.
#[test]
fn packed_matches_scalar_across_the_matrix() {
    let graph = test_graph(600, 7);
    let sym = graph.symmetrized();
    for bank in ["paper", "deep"] {
        for fault in [false, true] {
            let cfg = bank_config(bank, fault);
            for jobs in [1usize, 2, 4] {
                assert_kernel_invariant(&PageRank::fixed_iterations(3), &graph, &cfg, jobs);
                assert_kernel_invariant(&Sssp::from_source(VertexId::new(0)), &graph, &cfg, jobs);
                assert_kernel_invariant(&Bfs::from_source(VertexId::new(0)), &graph, &cfg, jobs);
                assert_kernel_invariant(&ConnectedComponents::new(), &sym, &cfg, jobs);
            }
        }
    }
}

/// Both fixed search modes stay kernel-invariant too (Auto may resolve
/// differently per kernel — that is allowed precisely because billing is
/// resolution-independent, which the matrix test above pins via the
/// default Auto mode).
#[test]
fn packed_matches_scalar_under_fixed_search_modes() {
    let graph = test_graph(400, 11);
    for mode in [SearchMode::Linear, SearchMode::Indexed] {
        for fault in [false, true] {
            let cfg = GaasXConfig {
                search_mode: mode,
                ..bank_config("paper", fault)
            };
            assert_kernel_invariant(&PageRank::fixed_iterations(2), &graph, &cfg, 1);
            assert_kernel_invariant(&Bfs::from_source(VertexId::new(0)), &graph, &cfg, 2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random graphs, job counts, and fault settings: packed stays
    /// bit-identical to scalar on every algorithm.
    #[test]
    fn packed_is_bit_identical_on_random_graphs(
        edges in 60usize..400,
        seed in 0u64..1_000,
        jobs in 1usize..5,
        fault in any::<bool>(),
        deep in any::<bool>(),
    ) {
        let cfg = bank_config(if deep { "deep" } else { "paper" }, fault);
        let graph = test_graph(edges, seed);
        assert_kernel_invariant(&PageRank::fixed_iterations(2), &graph, &cfg, jobs);
        assert_kernel_invariant(&Bfs::from_source(VertexId::new(0)), &graph, &cfg, jobs);
        assert_kernel_invariant(&ConnectedComponents::new(), &graph.symmetrized(), &cfg, jobs);
    }
}
