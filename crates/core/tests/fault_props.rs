//! Property tests for the fault-injection layer.
//!
//! Two invariants:
//!
//! 1. **Zero-rate = zero-cost.** A [`FaultModel`] with every rate at zero,
//!    combined with *any* recovery policy, must leave both serial and
//!    sharded runs bit-identical to a config that never mentions faults —
//!    same outputs, same op counts, same energy, same makespan, zero
//!    verify reads. The fault layer may not perturb the model when off.
//! 2. **Recoverable faults are invisible in the results.** With stuck-cell
//!    and transient-write rates the standard policy can absorb, algorithm
//!    outputs exactly match the fault-free run — recovery costs time and
//!    energy, never correctness.

#![allow(clippy::unwrap_used)]
use gaasx_core::algorithms::{PageRank, Sssp};
use gaasx_core::{GaasX, GaasXConfig, RecoveryPolicy, ShardableAlgorithm};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_graph::{CooGraph, VertexId};
use gaasx_xbar::FaultModel;
use proptest::prelude::*;

fn graph_for(vertex_exp: u32, edges: usize, seed: u64) -> CooGraph {
    rmat(&RmatConfig::new(1 << vertex_exp, edges).with_seed(seed)).unwrap()
}

fn any_policy() -> impl Strategy<Value = RecoveryPolicy> {
    (0u8..6, any::<bool>(), 0u32..4, 0usize..32, any::<bool>()).prop_map(
        |(pick, write_verify, retry_budget, spare_rows, cam_double_check)| match pick {
            0 => RecoveryPolicy::off(),
            1 => RecoveryPolicy::standard(),
            2 => RecoveryPolicy::detect_only(),
            _ => RecoveryPolicy {
                write_verify,
                retry_budget,
                spare_rows,
                cam_double_check,
            },
        },
    )
}

/// Zero-rate fault model + arbitrary policy vs. the plain config: reports
/// must agree bit for bit, serially and sharded.
fn assert_zero_rate_identity<A>(
    algorithm: &A,
    graph: &A::Input,
    policy: RecoveryPolicy,
    jobs: usize,
) where
    A: ShardableAlgorithm,
    A::Output: PartialEq + std::fmt::Debug,
{
    let plain = GaasX::new(GaasXConfig::small())
        .run(algorithm, graph)
        .unwrap();
    let gated = GaasXConfig {
        fault: FaultModel::none(),
        recovery: policy,
        ..GaasXConfig::small()
    };
    let serial = GaasX::new(gated.clone()).run(algorithm, graph).unwrap();
    let sharded = GaasX::new(gated)
        .run_sharded(algorithm, graph, jobs)
        .unwrap();

    prop_assert_eq!(&serial.result, &plain.result, "serial outputs diverged");
    prop_assert_eq!(&sharded.result, &plain.result, "sharded outputs diverged");
    prop_assert_eq!(serial.report.ops.verify_reads, 0);
    prop_assert!(serial.report.faults.is_zero());
    prop_assert_eq!(&serial.report, &plain.report);
    prop_assert_eq!(&sharded.report, &plain.report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn zero_rate_fault_model_is_bit_identical_to_fault_free(
        vertex_exp in 5u32..7,
        edges in 50usize..400,
        seed in 0u64..1_000,
        jobs in 2usize..4,
        policy in any_policy(),
    ) {
        let graph = graph_for(vertex_exp, edges, seed);
        assert_zero_rate_identity(&PageRank::fixed_iterations(3), &graph, policy, jobs);
        assert_zero_rate_identity(&Sssp::from_source(VertexId::new(0)), &graph, policy, jobs);
    }

    #[test]
    fn recovered_runs_reproduce_fault_free_outputs(
        vertex_exp in 5u32..7,
        edges in 50usize..300,
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        cam_ber in 0.0..3e-4f64,
        mac_ber in 0.0..3e-4f64,
        write_fail in 0.0..0.05f64,
    ) {
        let graph = graph_for(vertex_exp, edges, seed);
        let clean = GaasX::new(GaasXConfig::small())
            .run(&PageRank::fixed_iterations(3), &graph)
            .unwrap();
        let recovered = GaasX::new(GaasXConfig {
            fault: FaultModel {
                seed: fault_seed,
                cam_stuck_ber: cam_ber,
                mac_stuck_ber: mac_ber,
                write_fail_rate: write_fail,
                ..FaultModel::none()
            },
            recovery: RecoveryPolicy::standard(),
            ..GaasXConfig::small()
        })
        .run(&PageRank::fixed_iterations(3), &graph)
        .unwrap();
        prop_assert_eq!(&recovered.result, &clean.result, "recovery leaked into results");
        // Unless every drawn rate was exactly zero (fault layer inert),
        // write-verify ran over every programmed row.
        let inert = cam_ber == 0.0 && mac_ber == 0.0 && write_fail == 0.0;
        prop_assert_eq!(recovered.report.ops.verify_reads > 0, !inert);
    }
}
