//! `SearchMode::Auto` equivalence gate: a run under the cost-modeled
//! default must be **bit-identical** — same outputs, same full
//! [`RunReport`](gaasx_sim::RunReport) — to the same run under both fixed
//! modes, across bank geometries, algorithms, job counts, and fault
//! injection. The search mode is a pure host-speed knob; any observable
//! divergence is a bug.

#![allow(clippy::unwrap_used)]
use gaasx_core::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use gaasx_core::engine::{CellLayout, Engine};
use gaasx_core::{
    GaasX, GaasXConfig, RecoveryPolicy, SearchMode, SearchProfile, ShardableAlgorithm,
};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_graph::{CooGraph, Edge, VertexId};
use gaasx_xbar::{FaultModel, Kernel};
use proptest::prelude::*;

/// The two benchmarked design points, shrunk to 8 banks for test speed
/// (bank count only scales the schedule, not the per-block search shape).
fn bank_config(bank: &str, fault: bool) -> GaasXConfig {
    let mut c = match bank {
        "paper" => GaasXConfig::small(),
        "deep" => GaasXConfig {
            num_banks: 8,
            ..GaasXConfig::deep_bank()
        },
        other => panic!("unknown bank {other}"),
    };
    if fault {
        // The bench_snapshot fault regime: recoverable stuck cells and
        // write failures under the standard write-verify policy.
        c.fault = FaultModel {
            seed: 0xBE05,
            cam_stuck_ber: 1e-4,
            mac_stuck_ber: 1e-4,
            write_fail_rate: 1e-3,
            ..FaultModel::none()
        };
        c.recovery = RecoveryPolicy::standard();
    }
    c
}

/// Runs `algorithm` under all three search modes (same geometry, jobs,
/// fault setting) and checks output and full-report identity.
fn assert_mode_invariant<A>(algorithm: &A, input: &A::Input, cfg: &GaasXConfig, jobs: usize)
where
    A: ShardableAlgorithm,
    A::Output: PartialEq + std::fmt::Debug,
{
    let run = |mode: SearchMode| {
        let mut accel = GaasX::new(GaasXConfig {
            search_mode: mode,
            ..cfg.clone()
        });
        if jobs == 1 {
            accel.run(algorithm, input).unwrap()
        } else {
            accel.run_sharded(algorithm, input, jobs).unwrap()
        }
    };
    let auto = run(SearchMode::Auto);
    for fixed in [SearchMode::Linear, SearchMode::Indexed] {
        let want = run(fixed);
        assert_eq!(
            auto.result,
            want.result,
            "{}: auto output diverged from {fixed}",
            algorithm.name()
        );
        assert_eq!(
            auto.report,
            want.report,
            "{}: auto report diverged from {fixed}",
            algorithm.name()
        );
        assert_eq!(
            auto.report.elapsed_ns.ns().to_bits(),
            want.report.elapsed_ns.ns().to_bits(),
            "{}: elapsed bits diverged from {fixed}",
            algorithm.name()
        );
    }
}

fn test_graph(edges: usize, seed: u64) -> CooGraph {
    rmat(&RmatConfig::new(128, edges).with_seed(seed)).unwrap()
}

/// The full ISSUE-7 identity matrix: paper/deep banks × PR/SSSP/BFS/CC ×
/// jobs {1,4} × fault on/off.
#[test]
fn auto_matches_both_fixed_modes_across_the_matrix() {
    let graph = test_graph(600, 7);
    let sym = graph.symmetrized();
    for bank in ["paper", "deep"] {
        for fault in [false, true] {
            let cfg = bank_config(bank, fault);
            for jobs in [1usize, 4] {
                assert_mode_invariant(&PageRank::fixed_iterations(3), &graph, &cfg, jobs);
                assert_mode_invariant(&Sssp::from_source(VertexId::new(0)), &graph, &cfg, jobs);
                assert_mode_invariant(&Bfs::from_source(VertexId::new(0)), &graph, &cfg, jobs);
                assert_mode_invariant(&ConnectedComponents::new(), &sym, &cfg, jobs);
            }
        }
    }
}

/// Pins the cost model's decision on the measured BENCH_06/BENCH_08
/// design points through the real engine path, under **both** host
/// kernels: a representative full paper-bank block resolves Linear for
/// the frontier traversals (the rows Indexed was regressing), dense
/// sweeps resolve Indexed at both depths (the rows Indexed was winning,
/// up to 2.6–3.9x on deep banks). BENCH_08 measured the same winners
/// under the packed kernel, so resolution must be kernel-invariant.
#[test]
fn resolver_pins_the_bench_winners_under_both_kernels() {
    for kernel in [Kernel::Packed, Kernel::Scalar] {
        let with = |base: GaasXConfig| GaasXConfig { kernel, ..base };
        // Paper bank, frontier profile (BFS/CC/SSSP): Linear.
        let mut paper = Engine::new(with(GaasXConfig::small())).unwrap();
        paper.set_search_profile(SearchProfile::Frontier);
        let block: Vec<Edge> = (0..128u32).map(|i| Edge::new(i, 200 + i, 1.0)).collect();
        paper.load_block(&block, CellLayout::Preset).unwrap();
        assert_eq!(
            paper.resolved_search_mode(),
            SearchMode::Linear,
            "{kernel:?}"
        );

        // Paper bank, dense profile (PageRank): Indexed.
        let mut paper_pr = Engine::new(with(GaasXConfig::small())).unwrap();
        paper_pr.set_search_profile(SearchProfile::OnePerKey);
        paper_pr.load_block(&block, CellLayout::Preset).unwrap();
        assert_eq!(
            paper_pr.resolved_search_mode(),
            SearchMode::Indexed,
            "{kernel:?}"
        );

        // Deep bank, dense profile (PageRank): Indexed by a wide margin.
        let mut deep = Engine::new(with(GaasXConfig {
            num_banks: 8,
            ..GaasXConfig::deep_bank()
        }))
        .unwrap();
        deep.set_search_profile(SearchProfile::OnePerKey);
        let deep_block: Vec<Edge> = (0..2048u32).map(|i| Edge::new(i, 4000 + i, 1.0)).collect();
        deep.load_block(&deep_block, CellLayout::Preset).unwrap();
        assert_eq!(
            deep.resolved_search_mode(),
            SearchMode::Indexed,
            "{kernel:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random graphs, job counts, and fault settings: Auto stays
    /// bit-identical to both fixed modes on every algorithm.
    #[test]
    fn auto_is_bit_identical_on_random_graphs(
        edges in 60usize..400,
        seed in 0u64..1_000,
        jobs in 1usize..5,
        fault in any::<bool>(),
        deep in any::<bool>(),
    ) {
        let cfg = bank_config(if deep { "deep" } else { "paper" }, fault);
        let graph = test_graph(edges, seed);
        assert_mode_invariant(&PageRank::fixed_iterations(2), &graph, &cfg, jobs);
        assert_mode_invariant(&Bfs::from_source(VertexId::new(0)), &graph, &cfg, jobs);
        assert_mode_invariant(&Sssp::from_source(VertexId::new(0)), &graph, &cfg, jobs);
        assert_mode_invariant(&ConnectedComponents::new(), &graph.symmetrized(), &cfg, jobs);
    }
}
