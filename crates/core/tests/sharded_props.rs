//! Property tests for the sharded execution layer: for any RMAT graph and
//! any worker count, the merged [`gaasx_core::ShardedEngine`] report must
//! be **bit-identical** to the serial engine's — same op counts, same
//! energy, same per-phase attribution — and the algorithm outputs must
//! match exactly.

#![allow(clippy::unwrap_used)]
use gaasx_core::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use gaasx_core::{GaasX, GaasXConfig, ShardableAlgorithm};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_graph::{CooGraph, VertexId};
use gaasx_sim::Phase;
use proptest::prelude::*;

fn graph_for(vertex_exp: u32, edges: usize, seed: u64) -> CooGraph {
    rmat(&RmatConfig::new(1 << vertex_exp, edges).with_seed(seed)).unwrap()
}

/// Runs `algorithm` serially and with `jobs` shard workers, then checks
/// output and full-report identity.
fn assert_identical<A>(algorithm: &A, graph: &A::Input, jobs: usize)
where
    A: ShardableAlgorithm,
    A::Output: PartialEq + std::fmt::Debug,
{
    let serial = GaasX::new(GaasXConfig::small())
        .run(algorithm, graph)
        .unwrap();
    let sharded = GaasX::new(GaasXConfig::small())
        .run_sharded(algorithm, graph, jobs)
        .unwrap();

    prop_assert_eq!(&sharded.result, &serial.result, "outputs diverged");
    prop_assert_eq!(sharded.report.ops, serial.report.ops);
    prop_assert_eq!(
        sharded.report.elapsed_ns.ns().to_bits(),
        serial.report.elapsed_ns.ns().to_bits(),
        "elapsed {} vs {}",
        sharded.report.elapsed_ns,
        serial.report.elapsed_ns
    );
    prop_assert_eq!(sharded.report.energy, serial.report.energy);
    for phase in Phase::ALL {
        prop_assert_eq!(
            sharded.report.phase(phase),
            serial.report.phase(phase),
            "phase {} diverged",
            phase.name()
        );
    }
    // Everything else (histograms, labels, iteration counts) too.
    prop_assert_eq!(&sharded.report, &serial.report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pagerank_and_sssp_are_job_count_invariant(
        vertex_exp in 5u32..8,
        edges in 50usize..500,
        seed in 0u64..1_000,
        jobs in 2usize..5,
    ) {
        let graph = graph_for(vertex_exp, edges, seed);
        assert_identical(&PageRank::fixed_iterations(3), &graph, jobs);
        assert_identical(&Sssp::from_source(VertexId::new(0)), &graph, jobs);
    }

    #[test]
    fn bfs_and_components_are_job_count_invariant(
        vertex_exp in 5u32..7,
        edges in 50usize..400,
        seed in 0u64..1_000,
        jobs in 2usize..5,
    ) {
        let graph = graph_for(vertex_exp, edges, seed);
        assert_identical(&Bfs::from_source(VertexId::new(0)), &graph, jobs);
        assert_identical(&ConnectedComponents::new(), &graph.symmetrized(), jobs);
    }
}
