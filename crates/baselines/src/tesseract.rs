//! Tesseract: the DRAM-based PIM baseline (Ahn et al., ISCA 2015), modeled
//! through the ratios the paper itself chains together.
//!
//! §V-B: "Overall GaaS-X achieves 7.7x speedup and 22x energy savings over
//! GraphR which in turn shows up to 4x performance and 4x-10x energy
//! efficiency gains over Tesseract." Like the GRAM comparison, the paper
//! never re-simulates Tesseract; it composes previously reported ratios —
//! so this model derives a Tesseract report by scaling a GraphR report the
//! same way.

use gaasx_sim::RunReport;
use serde::{Deserialize, Serialize};

/// GraphR-vs-Tesseract improvement ratios (GraphR is the faster one).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TesseractModel {
    /// GraphR's speedup over Tesseract (paper: "up to 4x").
    pub graphr_speedup_over: f64,
    /// GraphR's energy-efficiency gain over Tesseract (paper: "4x-10x").
    pub graphr_energy_over: f64,
}

impl TesseractModel {
    /// Mid-range ratios from the GraphR paper as cited by GaaS-X: the "up
    /// to 4×" performance claim de-rated to a typical 2.5×, energy at the
    /// 4–10× band's geometric middle.
    pub fn typical() -> Self {
        TesseractModel {
            graphr_speedup_over: 2.5,
            graphr_energy_over: 6.3,
        }
    }

    /// The most favourable published point for GraphR.
    pub fn best_case_for_graphr() -> Self {
        TesseractModel {
            graphr_speedup_over: 4.0,
            graphr_energy_over: 10.0,
        }
    }

    /// Derives a Tesseract report from a GraphR report of the same run:
    /// slower and less efficient by the configured ratios.
    pub fn report_from_graphr(&self, graphr: &RunReport) -> RunReport {
        let mut report = graphr.clone();
        report.engine = "tesseract".into();
        report.elapsed_ns *= self.graphr_speedup_over;
        let scale = self.graphr_energy_over;
        report.energy.mac_nj *= scale;
        report.energy.cam_nj *= scale;
        report.energy.write_nj *= scale;
        report.energy.sfu_nj *= scale;
        report.energy.buffer_nj *= scale;
        report.energy.static_nj *= scale;
        // DRAM-PIM op mixes are not comparable to crossbar ops.
        report.ops.mac_ops = 0;
        report.ops.cam_searches = 0;
        report.ops.cells_written = 0;
        report.rows_per_mac = gaasx_sim::Histogram::new(1);
        report
    }
}

impl Default for TesseractModel {
    fn default() -> Self {
        TesseractModel::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaasx_sim::{Nanojoules, Nanos};

    fn graphr_report() -> RunReport {
        let mut r = RunReport::new("graphr", "pagerank", "LJ");
        r.elapsed_ns = Nanos::from_ns(1e6);
        r.energy.mac_nj = Nanojoules::from_nj(1e6);
        r.iterations = 5;
        r.num_edges = 100;
        r
    }

    #[test]
    fn tesseract_is_slower_than_graphr() {
        let g = graphr_report();
        let t = TesseractModel::typical().report_from_graphr(&g);
        assert_eq!(t.engine, "tesseract");
        assert!(t.elapsed_ns > g.elapsed_ns);
        assert!(t.energy.total_nj() > g.energy.total_nj());
        assert_eq!(t.workload, "LJ");
    }

    #[test]
    fn chained_ratio_reaches_the_papers_composition() {
        // GaaS-X 7.7× over GraphR composed with GraphR "up to 4×" over
        // Tesseract puts GaaS-X up to ≈31× over Tesseract.
        let g = graphr_report();
        let t = TesseractModel::best_case_for_graphr().report_from_graphr(&g);
        let mut gaasx = RunReport::new("gaasx", "pagerank", "LJ");
        gaasx.elapsed_ns = g.elapsed_ns / 7.7;
        gaasx.energy.mac_nj = g.energy.total_nj() / 22.0;
        assert!((gaasx.speedup_over(&t) - 7.7 * 4.0).abs() < 0.5);
        assert!((gaasx.energy_savings_over(&t) - 220.0).abs() < 1.0);
    }
}
