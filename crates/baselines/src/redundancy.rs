//! Dense-vs-sparse mapping redundancy analysis (paper Fig 5).
//!
//! GraphR's dense mapping converts every non-empty `T×T` tile of the
//! adjacency matrix into a dense crossbar image: all `T²` values are
//! written (including zeros) and all `T²` cells participate in MAC
//! operations. GaaS-X's sparse mapping writes and computes one value per
//! actual edge. Fig 5 plots the resulting redundancy ratios per dataset —
//! on average 34× more writes and 23× more computations at `T = 16` — and
//! the abstract's headline "30× reduction in write operations and 20×
//! reduction in computations" is the same analysis.

use gaasx_graph::partition::GridPartition;
use gaasx_graph::{CooGraph, Csr, GraphError, VertexId};
use serde::{Deserialize, Serialize};

/// Redundancy ratios of dense mapping relative to sparse mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedundancyReport {
    /// Tile side length used for the dense mapping.
    pub tile_size: u32,
    /// Values written per graph load pass under dense mapping
    /// (`T²` per non-empty tile).
    pub dense_writes: u64,
    /// Values written per load pass under sparse mapping (one per edge).
    pub sparse_writes: u64,
    /// Cell computations per PageRank iteration under dense mapping
    /// (full-tile MVMs).
    pub pr_dense_computations: u64,
    /// Cell computations per PageRank iteration under sparse mapping.
    pub pr_sparse_computations: u64,
    /// Cell computations over a full SSSP run under dense mapping
    /// (row-serial processing of tiles whose row-source is active).
    pub sssp_dense_computations: u64,
    /// Cell computations over the same SSSP run under sparse mapping
    /// (only the actual out-edges of active vertices).
    pub sssp_sparse_computations: u64,
}

impl RedundancyReport {
    /// Dense-to-sparse write ratio (Fig 5, left group).
    pub fn write_ratio(&self) -> f64 {
        ratio(self.dense_writes, self.sparse_writes)
    }

    /// Dense-to-sparse PageRank computation ratio (Fig 5, middle group).
    pub fn pr_compute_ratio(&self) -> f64 {
        ratio(self.pr_dense_computations, self.pr_sparse_computations)
    }

    /// Dense-to-sparse SSSP computation ratio (Fig 5, right group).
    pub fn sssp_compute_ratio(&self) -> f64 {
        ratio(self.sssp_dense_computations, self.sssp_sparse_computations)
    }
}

fn ratio(dense: u64, sparse: u64) -> f64 {
    if sparse == 0 {
        return 0.0;
    }
    dense as f64 / sparse as f64
}

/// Computes the Fig 5 redundancy analysis for one graph.
///
/// The SSSP leg runs a Bellman–Ford style propagation from `source`,
/// charging the dense mapping `T` cells for every (active-source row ×
/// tile) pair it must process and the sparse mapping only the active
/// vertices' actual out-edges.
///
/// # Errors
///
/// Returns a graph error for an empty graph, an invalid tile size, or an
/// out-of-range source.
pub fn analyze(
    graph: &CooGraph,
    tile_size: u32,
    source: VertexId,
) -> Result<RedundancyReport, GraphError> {
    if source.raw() >= graph.num_vertices() {
        return Err(GraphError::VertexOutOfRange {
            vertex: source.raw(),
            num_vertices: graph.num_vertices(),
        });
    }
    let grid = GridPartition::new(graph, tile_size)?;
    let t2 = u64::from(tile_size) * u64::from(tile_size);
    let nonzero_tiles = grid.num_nonempty_shards() as u64;
    let edges = graph.num_edges() as u64;

    let dense_writes = nonzero_tiles * t2;
    let pr_dense = nonzero_tiles * t2;

    // Per-vertex distinct destination-tile count: how many tile rows a
    // vertex's out-edges span. A dense engine touches T cells per such row.
    let csr = Csr::from_coo(graph);
    let n = graph.num_vertices() as usize;
    let mut tile_cols: Vec<u32> = vec![0; n];
    {
        let mut seen: Vec<u32> = Vec::new();
        for (v, slot) in tile_cols.iter_mut().enumerate() {
            seen.clear();
            for &u in csr.neighbor_slice(VertexId::new(v as u32)) {
                let col = u / tile_size;
                if !seen.contains(&col) {
                    seen.push(col);
                }
            }
            *slot = seen.len() as u32;
        }
    }

    // Bellman–Ford propagation tracking active sets per superstep.
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;
    let mut active = vec![source.raw()];
    let mut sssp_dense = 0u64;
    let mut sssp_sparse = 0u64;
    while !active.is_empty() {
        let mut next: Vec<u32> = Vec::new();
        let mut queued = vec![false; n];
        for &v in &active {
            sssp_dense += u64::from(tile_cols[v as usize]) * u64::from(tile_size);
            sssp_sparse += csr.degree(VertexId::new(v)) as u64;
            let dv = dist[v as usize];
            for (u, w) in csr.neighbors(VertexId::new(v)) {
                let nd = dv + f64::from(w);
                if nd < dist[u.index()] {
                    dist[u.index()] = nd;
                    if !queued[u.index()] {
                        queued[u.index()] = true;
                        next.push(u.raw());
                    }
                }
            }
        }
        active = next;
    }

    Ok(RedundancyReport {
        tile_size,
        dense_writes,
        sparse_writes: edges,
        pr_dense_computations: pr_dense,
        pr_sparse_computations: edges,
        sssp_dense_computations: sssp_dense,
        sssp_sparse_computations: sssp_sparse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaasx_graph::generators;

    #[test]
    fn complete_graph_has_no_redundancy_to_speak_of() {
        let g = generators::complete_graph(32);
        let r = analyze(&g, 16, VertexId::new(0)).unwrap();
        // Only the missing diagonal is redundant: ratio barely above 1.
        assert!(r.write_ratio() < 1.1, "{}", r.write_ratio());
        assert!(r.pr_compute_ratio() < 1.1);
    }

    #[test]
    fn scale_free_graph_is_heavily_redundant() {
        let g =
            generators::rmat(&generators::RmatConfig::new(1 << 12, 40_000).with_seed(9)).unwrap();
        let r = analyze(&g, 16, VertexId::new(0)).unwrap();
        assert!(
            r.write_ratio() > 5.0,
            "write ratio {} should be well above 1 for R-MAT",
            r.write_ratio()
        );
        assert_eq!(r.write_ratio(), r.pr_compute_ratio());
        assert!(r.sssp_compute_ratio() > 2.0, "{}", r.sssp_compute_ratio());
    }

    #[test]
    fn path_graph_redundancy_is_tile_width() {
        // Each active path vertex has one out-edge into exactly one tile:
        // dense charges 16 cells, sparse charges 1.
        let g = generators::path_graph(64);
        let r = analyze(&g, 16, VertexId::new(0)).unwrap();
        assert!((r.sssp_compute_ratio() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::path_graph(4);
        assert!(analyze(&g, 0, VertexId::new(0)).is_err());
        assert!(analyze(&g, 16, VertexId::new(99)).is_err());
    }

    #[test]
    fn ratios_handle_zero_sparse_work() {
        let g = gaasx_graph::CooGraph::empty(4);
        let r = analyze(&g, 2, VertexId::new(0)).unwrap();
        assert_eq!(r.write_ratio(), 0.0);
    }
}
