//! Analytical GPU baseline: Gunrock (graph kernels) and cuMF (CF) on a
//! Titan-V-class part.
//!
//! No GPU exists in this environment, so Table III's GPU column is
//! reproduced with a roofline model (see DESIGN.md §5). Graph kernels on
//! GPUs are memory-bandwidth-bound with poor access efficiency — random
//! vertex gathers waste most of each 64-byte transaction — so time is
//! modeled as frontier bytes over effective bandwidth plus a per-kernel
//! launch overhead, and energy as dynamic (idle-subtracted) board power ×
//! time, matching the paper's nvidia-smi methodology.

use gaasx_core::RunOutcome;
use gaasx_graph::bipartite::BipartiteGraph;
use gaasx_graph::{CooGraph, GraphError, VertexId};
use gaasx_sim::{Nanojoules, Nanos, RunReport};
use serde::{Deserialize, Serialize};

use crate::reference;

/// Roofline parameters of the modeled GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Peak HBM2 bandwidth, GB/s.
    pub mem_bw_gbps: f64,
    /// Idle-subtracted board power under memory-bound graph load, W.
    /// (The paper subtracts idle power from its nvidia-smi readings; a
    /// memory-bound kernel on a 250 W part draws ≈35 W above idle.)
    pub dynamic_power_w: f64,
    /// Per-kernel-launch overhead, ns (one launch per frontier/iteration).
    pub kernel_overhead_ns: f64,
    /// Effective-bandwidth derating for irregular gathers: random 4–8-byte
    /// vertex accesses ride 64-byte transactions, wasting ≈ 8×.
    pub access_inefficiency: f64,
    /// Bytes moved per processed edge (edge record + both endpoint values).
    pub bytes_per_edge: f64,
    /// Peak FP32 throughput for the dense CF kernels, GFLOP/s.
    pub fp32_gflops: f64,
    /// Efficiency derating of the SGD matrix-factorization kernels: cuMF's
    /// Hogwild-style updates contend on atomics and stride feature rows, so
    /// achieved bandwidth sits well under the streaming roofline.
    pub cf_inefficiency: f64,
}

impl GpuModel {
    /// The Titan V of Table III (Volta, 12 GB HBM2 at 652 GB/s, 5120 CUDA
    /// cores ≈ 13.8 TFLOP/s FP32).
    pub fn titan_v() -> Self {
        GpuModel {
            mem_bw_gbps: 652.0,
            dynamic_power_w: 35.0,
            kernel_overhead_ns: 8_000.0,
            access_inefficiency: 8.0,
            bytes_per_edge: 16.0,
            fp32_gflops: 13_800.0,
            cf_inefficiency: 4.0,
        }
    }

    /// Time to stream `edges` edge-computations through the memory system.
    fn edge_sweep_ns(&self, edges: f64) -> f64 {
        edges * self.bytes_per_edge * self.access_inefficiency / self.mem_bw_gbps
    }

    fn report(
        &self,
        engine: &str,
        algorithm: &str,
        elapsed_ns: f64,
        iterations: u32,
        num_edges: u64,
    ) -> RunReport {
        let mut r = RunReport::new(engine, algorithm, "unlabeled");
        // The roofline math above is dimensionless ratios of model
        // parameters; the result enters the typed accounting here.
        r.elapsed_ns = Nanos::from_ns(elapsed_ns);
        r.iterations = iterations;
        r.num_edges = num_edges;
        r.energy.static_nj = Nanojoules::from_nj(self.dynamic_power_w * elapsed_ns);
        r
    }

    /// Gunrock PageRank: one full edge sweep per iteration.
    pub fn pagerank(&self, graph: &CooGraph, iterations: u32) -> RunReport {
        let per_iter = self.kernel_overhead_ns + self.edge_sweep_ns(graph.num_edges() as f64);
        self.report(
            "gpu-gunrock",
            "pagerank",
            f64::from(iterations) * per_iter,
            iterations,
            graph.num_edges() as u64,
        )
    }

    /// Gunrock BFS: frontier-centric — each level sweeps only the
    /// frontier's out-edges.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an out-of-range source.
    pub fn bfs(&self, graph: &CooGraph, source: VertexId) -> Result<RunReport, GraphError> {
        if source.raw() >= graph.num_vertices() {
            return Err(GraphError::VertexOutOfRange {
                vertex: source.raw(),
                num_vertices: graph.num_vertices(),
            });
        }
        let (_, frontiers) = reference::bfs_with_frontiers(graph, source);
        let elapsed: f64 = frontiers
            .iter()
            .map(|&e| self.kernel_overhead_ns + self.edge_sweep_ns(e as f64))
            .sum();
        Ok(self.report(
            "gpu-gunrock",
            "bfs",
            elapsed,
            frontiers.len() as u32,
            graph.num_edges() as u64,
        ))
    }

    /// Gunrock SSSP: per-round relaxation sweeps over the active sets.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an out-of-range source.
    pub fn sssp(&self, graph: &CooGraph, source: VertexId) -> Result<RunReport, GraphError> {
        if source.raw() >= graph.num_vertices() {
            return Err(GraphError::VertexOutOfRange {
                vertex: source.raw(),
                num_vertices: graph.num_vertices(),
            });
        }
        let (_, rounds) = reference::sssp_with_rounds(graph, source);
        let elapsed: f64 = rounds
            .iter()
            .map(|&e| self.kernel_overhead_ns + self.edge_sweep_ns(e as f64))
            .sum();
        Ok(self.report(
            "gpu-gunrock",
            "sssp",
            elapsed,
            rounds.len() as u32,
            graph.num_edges() as u64,
        ))
    }

    /// cuMF SGD matrix factorization: per epoch, every rating moves both
    /// feature vectors (coalesced much better than graph gathers — the CF
    /// kernels are dense-friendly, inefficiency ≈ 2) and performs `8f`
    /// flops.
    pub fn cf(&self, ratings: &BipartiteGraph, features: usize, epochs: u32) -> RunReport {
        let r = ratings.num_ratings() as f64;
        let bytes = r * (2.0 * features as f64 * 4.0) * 2.0;
        let mem_ns = bytes * self.cf_inefficiency / self.mem_bw_gbps;
        let flop_ns = r * 8.0 * features as f64 / self.fp32_gflops;
        let per_epoch = self.kernel_overhead_ns + mem_ns.max(flop_ns);
        self.report(
            "gpu-cumf",
            "cf",
            f64::from(epochs) * per_epoch,
            epochs,
            ratings.num_ratings() as u64,
        )
    }

    /// Convenience wrapper producing a [`RunOutcome`] whose functional
    /// result comes from the oracle (the GPU model is timing-only).
    ///
    /// # Errors
    ///
    /// Returns a graph error for an out-of-range source.
    pub fn bfs_outcome(
        &self,
        graph: &CooGraph,
        source: VertexId,
    ) -> Result<RunOutcome<Vec<f64>>, GraphError> {
        let report = self.bfs(graph, source)?;
        Ok(RunOutcome {
            result: reference::bfs(graph, source),
            report,
        })
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::titan_v()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaasx_graph::generators;

    #[test]
    fn pagerank_time_scales_with_edges_and_iterations() {
        let gpu = GpuModel::titan_v();
        // Sizes chosen so the edge sweep dominates the 8 µs launch overhead.
        let small =
            generators::rmat(&generators::RmatConfig::new(1 << 10, 100_000).with_seed(1)).unwrap();
        let big = generators::rmat(&generators::RmatConfig::new(1 << 10, 1_000_000).with_seed(1))
            .unwrap();
        let t_small = gpu.pagerank(&small, 10).elapsed_ns;
        let t_big = gpu.pagerank(&big, 10).elapsed_ns;
        assert!(t_big > 5.0 * t_small);
        assert!((gpu.pagerank(&small, 20).elapsed_ns / t_small - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bfs_work_is_frontier_proportional() {
        let gpu = GpuModel::titan_v();
        // From the tail of a path, BFS touches 2 vertices; from the head,
        // all of them — the latter must cost more.
        let g = generators::path_graph(500);
        let from_head = gpu.bfs(&g, VertexId::new(0)).unwrap().elapsed_ns;
        let from_tail = gpu.bfs(&g, VertexId::new(498)).unwrap().elapsed_ns;
        assert!(from_head > from_tail);
    }

    #[test]
    fn energy_is_power_times_time() {
        let gpu = GpuModel::titan_v();
        let g = generators::paper_fig7_graph();
        let r = gpu.pagerank(&g, 5);
        assert!((r.energy.total_nj().nj() - gpu.dynamic_power_w * r.elapsed_ns.ns()).abs() < 1e-9);
    }

    #[test]
    fn cf_time_scales_with_ratings() {
        let gpu = GpuModel::titan_v();
        let small = BipartiteGraph::synthetic(100, 20, 10_000, 1).unwrap();
        let big = BipartiteGraph::synthetic(100, 20, 1_000_000, 1).unwrap();
        assert!(gpu.cf(&big, 32, 1).elapsed_ns > 10.0 * gpu.cf(&small, 32, 1).elapsed_ns);
    }

    #[test]
    fn rejects_bad_source() {
        let gpu = GpuModel::titan_v();
        let g = generators::path_graph(3);
        assert!(gpu.bfs(&g, VertexId::new(9)).is_err());
        assert!(gpu.sssp(&g, VertexId::new(9)).is_err());
    }
}
